//! One simulated machine: DVFS governor, calibrated ground-truth power.

use crate::platform::{PState, Platform, PlatformSpec};
use crate::power;
use crate::state::{CoreState, MachineState, ResourceDemand};
use crate::variation::MachineVariation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Utilization headroom the governor keeps before stepping frequency up
/// (ondemand-style).
const GOVERNOR_HEADROOM: f64 = 0.12;
/// Below this per-core demand a core counts as idle.
const IDLE_UTIL: f64 = 0.02;

/// A calibrated machine instance within a cluster.
///
/// Construction computes an affine calibration `(a, b)` such that the raw
/// component power model lands exactly on this machine's (variation-
/// adjusted) Table I idle/max wall power. The nonlinear *shape* of the
/// component model is preserved; only the end points are pinned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    id: usize,
    spec: PlatformSpec,
    variation: MachineVariation,
    calib_scale: f64,
    calib_offset: f64,
    idle_power_w: f64,
    max_power_w: f64,
}

impl Machine {
    /// Builds a machine with the given per-machine variation.
    pub fn new(spec: PlatformSpec, id: usize, variation: MachineVariation) -> Self {
        let raw_idle = power::raw_wall_power(&spec, &Self::idle_state_for(&spec));
        let raw_max = power::raw_wall_power(&spec, &Self::full_state_for(&spec));
        let (nominal_idle, nominal_max) = spec.power_range_w;
        let idle_power_w = nominal_idle * variation.idle_scale;
        // Keep max strictly above idle even under adversarial variation.
        let max_power_w = (nominal_max * variation.max_scale).max(idle_power_w * 1.05);
        let calib_scale = (max_power_w - idle_power_w) / (raw_max - raw_idle);
        let calib_offset = idle_power_w - calib_scale * raw_idle;
        Machine {
            id,
            spec,
            variation,
            calib_scale,
            calib_offset,
            idle_power_w,
            max_power_w,
        }
    }

    /// Builds the nominal (no-variation) machine for a platform.
    pub fn nominal(platform: Platform, id: usize) -> Self {
        Machine::new(platform.spec(), id, MachineVariation::nominal())
    }

    /// Machine identifier within its cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The platform specification.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// This machine's sampled variation.
    pub fn variation(&self) -> &MachineVariation {
        &self.variation
    }

    /// Calibrated wall power when completely idle, in watts.
    pub fn idle_power(&self) -> f64 {
        self.idle_power_w
    }

    /// Calibrated wall power with every component saturated, in watts.
    pub fn max_power(&self) -> f64 {
        self.max_power_w
    }

    /// The machine's dynamic power range in watts.
    pub fn dynamic_range(&self) -> f64 {
        self.max_power_w - self.idle_power_w
    }

    /// Ground-truth wall power for a hidden state, in watts.
    ///
    /// Component biases shift how the total splits between CPU, disk, and
    /// NIC before the affine calibration is applied, so two machines of
    /// the same platform respond differently to the same workload.
    pub fn true_power(&self, state: &MachineState) -> f64 {
        let v = &self.variation;
        let dc = power::cpu_power(&self.spec, state) * v.cpu_bias
            + power::memory_power(&self.spec, state)
            + power::disk_power(&self.spec, state) * v.disk_bias
            + power::nic_power(&self.spec, state) * v.net_bias
            + power::glue_power(&self.spec);
        let eff = power::psu_efficiency(dc / power::psu_capacity(&self.spec));
        let raw = dc / eff;
        (self.calib_scale * raw + self.calib_offset).max(0.0)
    }

    /// Converts a workload's [`ResourceDemand`] to hidden hardware state:
    /// the DVFS governor picks P-states, C1 parks fully idle servers, and
    /// device activity is clamped to hardware limits. `rng` supplies the
    /// small utilization jitter real systems exhibit.
    pub fn apply_demand<R: Rng + ?Sized>(
        &self,
        demand: &ResourceDemand,
        rng: &mut R,
    ) -> MachineState {
        let spec = &self.spec;
        let n = spec.cores;
        let fmax = spec.max_pstate().freq_mhz;

        // Distribute total core demand over cores. Coordinated platforms
        // spread work nearly evenly; the independent-DVFS future variant
        // sees strongly skewed per-core load (exponential weights), which
        // is what decorrelates its per-core frequencies.
        let total = demand.cpu_cores.clamp(0.0, n as f64);
        let mut shares: Vec<f64> = (0..n)
            .map(|_| {
                if spec.independent_dvfs {
                    -rng.gen_range(1e-6..1.0_f64).ln()
                } else {
                    1.0 + rng.gen_range(-0.15..0.15_f64)
                }
            })
            .collect();
        let sum: f64 = shares.iter().sum();
        for s in &mut shares {
            *s = (*s / sum * total).min(1.0);
        }
        // Redistribute clamp overflow onto remaining cores.
        let mut overflow = total - shares.iter().sum::<f64>();
        let mut guard = 0;
        while overflow > 1e-9 && guard < 8 {
            let open: Vec<usize> = (0..n).filter(|&i| shares[i] < 1.0).collect();
            if open.is_empty() {
                break;
            }
            let add = overflow / open.len() as f64;
            for i in open {
                let inc = add.min(1.0 - shares[i]);
                shares[i] += inc;
            }
            overflow = total - shares.iter().sum::<f64>();
            guard += 1;
        }

        let all_idle = shares.iter().all(|&u| u < IDLE_UTIL)
            && demand.disk_read_bytes + demand.disk_write_bytes < 1.0;
        let park_all = spec.supports_c1 && all_idle;

        // Chip-wide frequency for mobile/desktop parts: chosen by the
        // busiest core.
        let chip_pstate = self.pick_pstate(shares.iter().copied().fold(0.0, f64::max));

        let cores: Vec<CoreState> = shares
            .iter()
            .map(|&u| {
                if park_all {
                    return CoreState {
                        utilization: 0.0,
                        freq_mhz: 0.0,
                        voltage: spec.min_pstate().voltage,
                        c1_residency: 0.97,
                    };
                }
                let pstate = if spec.independent_dvfs {
                    // Future-system variant: every core's governor follows
                    // its own demand — frequencies decorrelate across
                    // cores, as the paper's Discussion predicts.
                    self.pick_pstate(u)
                } else if spec.per_core_pstates {
                    // Servers: cores usually follow the chip maximum, but
                    // drift to their own best P-state some of the time —
                    // the paper's 12–20% per-core divergence.
                    let drift_prob = match spec.platform {
                        Platform::Opteron => 0.12,
                        _ => 0.20,
                    };
                    if spec.has_dvfs() && rng.gen_bool(drift_prob) {
                        // Transient governor lag: the drifting core sits one
                        // P-state below the chip's. Dips are small, so the
                        // per-core frequency series stay highly correlated —
                        // the paper's justification for using core 0 as a
                        // proxy for the whole system.
                        let chip_idx = spec
                            .p_states
                            .iter()
                            .position(|p| p.freq_mhz >= chip_pstate.freq_mhz)
                            .unwrap_or(spec.p_states.len() - 1);
                        spec.p_states[chip_idx.saturating_sub(1)]
                    } else {
                        chip_pstate
                    }
                } else {
                    chip_pstate
                };
                // Demand is expressed at fmax; at a lower frequency the
                // same work occupies more of the second.
                let scaled = (u * fmax / pstate.freq_mhz).min(1.0);
                let jitter = 1.0 + rng.gen_range(-0.02..0.02_f64);
                let utilization = (scaled * jitter).clamp(0.0, 1.0);
                let c1 = if spec.supports_c1 && utilization < IDLE_UTIL {
                    0.6
                } else {
                    0.0
                };
                CoreState {
                    utilization,
                    freq_mhz: pstate.freq_mhz,
                    voltage: pstate.voltage,
                    c1_residency: c1,
                }
            })
            .collect();

        let disk_bw = spec.total_disk_bandwidth();
        let want_disk = demand.disk_read_bytes + demand.disk_write_bytes;
        let disk_scale = if want_disk > disk_bw && want_disk > 0.0 {
            disk_bw / want_disk
        } else {
            1.0
        };
        let disk_read_bytes = demand.disk_read_bytes * disk_scale;
        let disk_write_bytes = demand.disk_write_bytes * disk_scale;
        let disk_util_frac = if disk_bw > 0.0 {
            ((disk_read_bytes + disk_write_bytes) / disk_bw).min(1.0)
        } else {
            0.0
        };

        let nic_bw = spec.nic_max_bytes_per_sec;
        let net_rx_bytes = demand.net_rx_bytes.min(nic_bw);
        let net_tx_bytes = demand.net_tx_bytes.min(nic_bw);

        // Real memory traffic is bursty relative to CPU demand (prefetch,
        // TLB pressure, allocator behavior): jitter decorrelates it from
        // utilization enough that they remain distinct counters.
        let mem_jitter = 1.0 + rng.gen_range(-0.12..0.12_f64);
        MachineState {
            cores,
            mem_bandwidth_frac: (demand.mem_bandwidth_frac * mem_jitter).clamp(0.0, 1.0),
            mem_committed_frac: demand.mem_committed_frac.clamp(0.0, 1.0),
            disk_read_bytes,
            disk_write_bytes,
            disk_util_frac,
            net_rx_bytes,
            net_tx_bytes,
            runnable_tasks: demand.runnable_tasks.max(0.0),
        }
    }

    /// Ondemand-style P-state choice: the lowest frequency whose capacity
    /// covers the demanded utilization plus headroom.
    fn pick_pstate(&self, demand_at_fmax: f64) -> PState {
        let fmax = self.spec.max_pstate().freq_mhz;
        let need = (demand_at_fmax + GOVERNOR_HEADROOM).min(1.0);
        for p in &self.spec.p_states {
            if p.freq_mhz / fmax >= need {
                return *p;
            }
        }
        self.spec.max_pstate()
    }

    /// The hidden state of a fully idle second (used for calibration).
    pub fn idle_state(&self) -> MachineState {
        Self::idle_state_for(&self.spec)
    }

    /// The hidden state of a fully saturated second (used for calibration).
    pub fn full_state(&self) -> MachineState {
        Self::full_state_for(&self.spec)
    }

    fn idle_state_for(spec: &PlatformSpec) -> MachineState {
        let p = spec.min_pstate();
        MachineState {
            cores: vec![
                CoreState {
                    utilization: 0.0,
                    freq_mhz: if spec.supports_c1 { 0.0 } else { p.freq_mhz },
                    voltage: p.voltage,
                    c1_residency: if spec.supports_c1 { 0.97 } else { 0.0 },
                };
                spec.cores
            ],
            mem_bandwidth_frac: 0.0,
            mem_committed_frac: 0.05,
            disk_read_bytes: 0.0,
            disk_write_bytes: 0.0,
            disk_util_frac: 0.0,
            net_rx_bytes: 0.0,
            net_tx_bytes: 0.0,
            runnable_tasks: 0.0,
        }
    }

    fn full_state_for(spec: &PlatformSpec) -> MachineState {
        let p = spec.max_pstate();
        MachineState {
            cores: vec![
                CoreState {
                    utilization: 1.0,
                    freq_mhz: p.freq_mhz,
                    voltage: p.voltage,
                    c1_residency: 0.0,
                };
                spec.cores
            ],
            mem_bandwidth_frac: 1.0,
            mem_committed_frac: 0.9,
            disk_read_bytes: spec.total_disk_bandwidth() / 2.0,
            disk_write_bytes: spec.total_disk_bandwidth() / 2.0,
            disk_util_frac: 1.0,
            net_rx_bytes: spec.nic_max_bytes_per_sec,
            net_tx_bytes: spec.nic_max_bytes_per_sec,
            runnable_tasks: 2.0 * spec.cores as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn calibration_hits_table_i_endpoints() {
        for platform in Platform::ALL {
            let m = Machine::nominal(platform, 0);
            let (lo, hi) = platform.spec().power_range_w;
            assert!(
                (m.true_power(&m.idle_state()) - lo).abs() < 1e-6,
                "{platform}"
            );
            assert!(
                (m.true_power(&m.full_state()) - hi).abs() < 1e-6,
                "{platform}"
            );
            assert!((m.idle_power() - lo).abs() < 1e-9);
            assert!((m.max_power() - hi).abs() < 1e-9);
        }
    }

    #[test]
    fn power_monotone_in_cpu_demand() {
        let m = Machine::nominal(Platform::Athlon, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut prev = 0.0;
        for cores in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let s = m.apply_demand(&ResourceDemand::cpu_only(cores), &mut rng);
            let p = m.true_power(&s);
            assert!(p > prev - 0.5, "cores={cores}: {p} vs {prev}");
            prev = p;
        }
    }

    #[test]
    fn power_stays_within_calibrated_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for platform in Platform::ALL {
            let m = Machine::nominal(platform, 0);
            for i in 0..50 {
                let d = ResourceDemand {
                    cpu_cores: (i as f64 / 49.0) * m.spec().cores as f64,
                    disk_read_bytes: rng.gen_range(0.0..m.spec().total_disk_bandwidth()),
                    net_rx_bytes: rng.gen_range(0.0..m.spec().nic_max_bytes_per_sec),
                    mem_bandwidth_frac: rng.gen_range(0.0..1.0),
                    ..ResourceDemand::idle()
                };
                let s = m.apply_demand(&d, &mut rng);
                let p = m.true_power(&s);
                assert!(
                    p >= m.idle_power() - 1.0 && p <= m.max_power() + 1.0,
                    "{platform}: {p} outside [{}, {}]",
                    m.idle_power(),
                    m.max_power()
                );
            }
        }
    }

    #[test]
    fn atom_frequency_never_changes() {
        let m = Machine::nominal(Platform::Atom, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for cores in [0.1, 1.0, 2.0] {
            let s = m.apply_demand(&ResourceDemand::cpu_only(cores), &mut rng);
            for c in &s.cores {
                assert_eq!(c.freq_mhz, 1600.0);
            }
        }
    }

    #[test]
    fn mobile_cores_share_frequency() {
        let m = Machine::nominal(Platform::Core2, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 0..100 {
            let d = ResourceDemand::cpu_only((i % 21) as f64 / 10.0);
            let s = m.apply_demand(&d, &mut rng);
            assert!(!s.has_frequency_divergence(), "tick {i}");
        }
    }

    #[test]
    fn servers_diverge_sometimes_but_not_always() {
        let m = Machine::nominal(Platform::XeonSata, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut diverged = 0;
        let ticks = 400;
        for _ in 0..ticks {
            // High (but not saturating) load keeps the chip above its
            // lowest P-state so drift dips are observable.
            let s = m.apply_demand(&ResourceDemand::cpu_only(6.5), &mut rng);
            if s.has_frequency_divergence() {
                diverged += 1;
            }
        }
        let frac = diverged as f64 / ticks as f64;
        assert!(frac > 0.05, "divergence fraction {frac}");
        assert!(frac < 0.95, "divergence fraction {frac}");
    }

    #[test]
    fn fully_idle_server_parks_in_c1() {
        let m = Machine::nominal(Platform::Opteron, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = m.apply_demand(&ResourceDemand::idle(), &mut rng);
        assert!(s.cores.iter().all(|c| c.freq_mhz == 0.0));
        assert!(s.cores.iter().all(|c| c.c1_residency > 0.9));
    }

    #[test]
    fn governor_scales_frequency_with_load() {
        let m = Machine::nominal(Platform::Athlon, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let low = m.apply_demand(&ResourceDemand::cpu_only(0.2), &mut rng);
        let high = m.apply_demand(&ResourceDemand::cpu_only(2.0), &mut rng);
        assert!(low.core0_freq_mhz() < high.core0_freq_mhz());
        assert_eq!(high.core0_freq_mhz(), 2800.0);
    }

    #[test]
    fn disk_demand_clamped_to_bandwidth() {
        let m = Machine::nominal(Platform::Core2, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d = ResourceDemand {
            disk_read_bytes: 1e12,
            disk_write_bytes: 1e12,
            ..ResourceDemand::idle()
        };
        let s = m.apply_demand(&d, &mut rng);
        let bw = m.spec().total_disk_bandwidth();
        assert!(s.disk_total_bytes() <= bw * 1.0001);
        assert_eq!(s.disk_util_frac, 1.0);
    }

    #[test]
    fn cpu_demand_beyond_capacity_is_clamped() {
        let m = Machine::nominal(Platform::Core2, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let s = m.apply_demand(&ResourceDemand::cpu_only(64.0), &mut rng);
        for c in &s.cores {
            assert!(c.utilization <= 1.0);
            assert!(c.utilization > 0.9);
        }
    }

    #[test]
    fn variation_changes_power_between_machines() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let v1 = MachineVariation::sample(&mut rng);
        let v2 = MachineVariation::sample(&mut rng);
        let m1 = Machine::new(Platform::Opteron.spec(), 0, v1);
        let m2 = Machine::new(Platform::Opteron.spec(), 1, v2);
        assert_ne!(m1.idle_power(), m2.idle_power());
        assert_ne!(m1.max_power(), m2.max_power());
    }

    #[test]
    fn dynamic_range_positive_for_all_platforms() {
        for p in Platform::ALL {
            assert!(Machine::nominal(p, 0).dynamic_range() > 3.0, "{p}");
        }
    }
}
