//! The WattsUp?-class power meter model.
//!
//! The paper instruments every machine with a WattsUp? Pro meter sampling
//! wall power once per second with a stated error of 1.5%, and verified
//! calibration across meters. The simulated meter reproduces that error
//! structure: a fixed per-meter calibration gain (drawn at construction),
//! per-sample Gaussian-ish noise within the 1.5% class, and the device's
//! 0.1 W display resolution.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative error class of the meter (1.5%).
const ERROR_CLASS: f64 = 0.015;

/// A per-machine wall-power meter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    gain: f64,
    offset_w: f64,
}

impl PowerMeter {
    /// A perfectly calibrated meter (useful in tests).
    pub fn ideal() -> Self {
        PowerMeter {
            gain: 1.0,
            offset_w: 0.0,
        }
    }

    /// Samples a meter with a calibration gain within ±0.5% and an offset
    /// within ±0.3 W, the residual spread the paper saw after verifying
    /// meter calibration.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        PowerMeter {
            gain: rng.gen_range(0.995..1.005),
            offset_w: rng.gen_range(-0.3..0.3),
        }
    }

    /// Takes one 1 Hz reading of `true_watts`, applying calibration error,
    /// per-sample noise, and the 0.1 W display resolution.
    pub fn read<R: Rng + ?Sized>(&self, true_watts: f64, rng: &mut R) -> f64 {
        // Sum of three uniforms approximates a truncated Gaussian with
        // bounded support — the meter never exceeds its error class.
        let u: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0_f64)).sum::<f64>() / 3.0;
        let noisy = true_watts * (self.gain + ERROR_CLASS * 0.6 * u) + self.offset_w;
        (noisy.max(0.0) * 10.0).round() / 10.0
    }

    /// The meter's fixed calibration gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The meter's fixed offset in watts.
    pub fn offset_w(&self) -> f64 {
        self.offset_w
    }
}

impl Default for PowerMeter {
    fn default() -> Self {
        PowerMeter::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_meter_is_nearly_exact() {
        let m = PowerMeter::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut worst: f64 = 0.0;
        for _ in 0..1000 {
            let r = m.read(100.0, &mut rng);
            worst = worst.max((r - 100.0).abs());
        }
        // Error class 1.5% of 100 W = 1.5 W; noise term uses 0.6 of that.
        assert!(worst <= 1.0, "worst error {worst}");
        assert!(worst > 0.05, "meter should not be noiseless");
    }

    #[test]
    fn readings_have_tenth_watt_resolution() {
        let m = PowerMeter::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let r = m.read(55.5, &mut rng);
            assert!((r * 10.0 - (r * 10.0).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn calibration_spread_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let m = PowerMeter::sample(&mut rng);
            assert!((0.995..1.005).contains(&m.gain()));
            assert!(m.offset_w().abs() <= 0.3);
        }
    }

    #[test]
    fn never_reads_negative() {
        let m = PowerMeter::sample(&mut ChaCha8Rng::seed_from_u64(3));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(m.read(0.05, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn mean_reading_tracks_truth() {
        let m = PowerMeter::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mean: f64 = (0..2000).map(|_| m.read(200.0, &mut rng)).sum::<f64>() / 2000.0;
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
    }
}
