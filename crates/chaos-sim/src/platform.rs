//! The six platforms of the paper's Table I, as parametric specifications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// System class, as in the first column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemClass {
    /// Embedded-class (Atom).
    Embedded,
    /// Mobile-class (Core 2 Duo).
    Mobile,
    /// Desktop-class (Athlon).
    Desktop,
    /// Server-class (Opteron / Xeon).
    Server,
}

/// The six evaluation platforms of the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Intel Atom N330, 2 cores @ 1.6 GHz, 8 W TDP, 22–26 W, 1 SSD. No DVFS.
    Atom,
    /// Intel Core 2 Duo, 2 cores @ 2.26 GHz, 25 W TDP, 25–46 W, 1 SSD.
    Core2,
    /// AMD Athlon, 2 cores @ 2.8 GHz, 65 W TDP, 54–104 W, 1 SSD.
    Athlon,
    /// AMD Opteron, dual-socket 4-core @ 2.0 GHz, 135–190 W, 2× 10K SATA.
    Opteron,
    /// Intel Xeon, dual-socket 4-core @ 2.33 GHz, 250–375 W, 4× 7.2K SATA.
    XeonSata,
    /// Intel Xeon, dual-socket 4-core @ 2.67 GHz, 260–380 W, 6× 15K SAS.
    XeonSas,
}

impl Platform {
    /// All six platforms, in Table I order.
    pub const ALL: [Platform; 6] = [
        Platform::Atom,
        Platform::Core2,
        Platform::Athlon,
        Platform::Opteron,
        Platform::XeonSata,
        Platform::XeonSas,
    ];

    /// The platform's full specification.
    pub fn spec(self) -> PlatformSpec {
        PlatformSpec::builtin(self)
    }

    /// Short stable name used in tables and output files.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Atom => "Atom",
            Platform::Core2 => "Core2",
            Platform::Athlon => "Athlon",
            Platform::Opteron => "Opteron",
            Platform::XeonSata => "XeonSATA",
            Platform::XeonSas => "XeonSAS",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a platform name that matches none of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlatformError {
    /// The name that matched no platform.
    pub input: String,
}

impl fmt::Display for ParsePlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown platform {:?} (expected one of: Atom, Core2, Athlon, Opteron, XeonSATA, XeonSAS)",
            self.input
        )
    }
}

impl std::error::Error for ParsePlatformError {}

impl std::str::FromStr for Platform {
    type Err = ParsePlatformError;

    /// Parses a platform from its [`Platform::name`], case-insensitively
    /// (`"core2"`, `"Core2"` and `"CORE2"` all parse) — the form CLI
    /// flags like `chaos-serve --platform` take.
    ///
    /// ```
    /// use chaos_sim::Platform;
    ///
    /// assert_eq!("xeonsas".parse::<Platform>(), Ok(Platform::XeonSas));
    /// assert!("q6600".parse::<Platform>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let key = s.trim().to_ascii_lowercase();
        Platform::ALL
            .iter()
            .find(|p| p.name().to_ascii_lowercase() == key)
            .copied()
            .ok_or_else(|| ParsePlatformError {
                input: s.to_string(),
            })
    }
}

/// A CPU performance state: operating frequency and core voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core frequency in MHz.
    pub freq_mhz: f64,
    /// Core voltage in volts.
    pub voltage: f64,
}

/// Storage device classes used across the six platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Micron solid-state disk (Atom/Core2/Athlon).
    Ssd,
    /// 10K RPM SATA (Opteron).
    Sata10k,
    /// 7.2K RPM SATA (Xeon SATA).
    Sata7200,
    /// 15K RPM SAS (Xeon SAS).
    Sas15k,
}

/// Power and throughput parameters of one disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Device class.
    pub kind: DiskKind,
    /// Idle (spindle / controller) power in watts.
    pub idle_w: f64,
    /// Additional power at 100% utilization in watts.
    pub active_w: f64,
    /// Sustained throughput in bytes per second.
    pub max_bytes_per_sec: f64,
}

impl DiskKind {
    /// The canonical spec for this device class.
    pub fn spec(self) -> DiskSpec {
        match self {
            DiskKind::Ssd => DiskSpec {
                kind: self,
                idle_w: 0.6,
                active_w: 2.2,
                max_bytes_per_sec: 250e6,
            },
            DiskKind::Sata10k => DiskSpec {
                kind: self,
                idle_w: 5.5,
                active_w: 4.5,
                max_bytes_per_sec: 90e6,
            },
            DiskKind::Sata7200 => DiskSpec {
                kind: self,
                idle_w: 5.0,
                active_w: 4.0,
                max_bytes_per_sec: 75e6,
            },
            DiskKind::Sas15k => DiskSpec {
                kind: self,
                idle_w: 8.0,
                active_w: 6.5,
                max_bytes_per_sec: 130e6,
            },
        }
    }
}

/// Full specification of one platform: everything the power model and the
/// DVFS governor need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Which of the six platforms this is.
    pub platform: Platform,
    /// System class (Table I column 1).
    pub class: SystemClass,
    /// Total core count (both sockets for the servers).
    pub cores: usize,
    /// P-states in ascending frequency order. A single entry means no DVFS.
    pub p_states: Vec<PState>,
    /// Whether idle cores can enter the C1 sleep state (servers only).
    pub supports_c1: bool,
    /// Whether cores can occupy different P-states simultaneously
    /// (servers); mobile/desktop parts share one chip-wide frequency.
    pub per_core_pstates: bool,
    /// Fully independent per-core DVFS: every core's governor follows its
    /// own demand with no chip-wide coordination. None of the paper's
    /// 2012 platforms do this; the paper's Discussion predicts such
    /// "future systems... will have less-correlated core frequencies and
    /// will require individual core frequencies as features". Off for all
    /// builtin specs; enable via [`PlatformSpec::with_independent_dvfs`].
    #[serde(default)]
    pub independent_dvfs: bool,
    /// Thermal design power of one socket, watts (Table I).
    pub tdp_w: f64,
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Installed memory in GB.
    pub memory_gb: f64,
    /// Peak memory bandwidth in bytes/second (drives memory dynamic power).
    pub mem_max_bytes_per_sec: f64,
    /// Attached disks.
    pub disks: Vec<DiskSpec>,
    /// NIC line rate in bytes per second (1 GbE for every platform).
    pub nic_max_bytes_per_sec: f64,
    /// Paper-reported wall power range (idle, max) in watts, used to
    /// calibrate the simulated machine (Table I "Power Range").
    pub power_range_w: (f64, f64),
}

impl PlatformSpec {
    /// Builds the canonical Table I specification for `platform`.
    pub fn builtin(platform: Platform) -> PlatformSpec {
        // Voltage ramps roughly linearly with frequency between Vmin/Vmax.
        fn pstates(freqs_mhz: &[f64], vmin: f64, vmax: f64) -> Vec<PState> {
            // chaos-lint: allow(R4) — every builtin Table I platform
            // lists at least one frequency; the slices are literals in
            // this function's callers.
            let fmin = freqs_mhz[0];
            // chaos-lint: allow(R4) — same non-empty literal invariant.
            let fmax = *freqs_mhz.last().expect("at least one p-state");
            freqs_mhz
                .iter()
                .map(|&f| PState {
                    freq_mhz: f,
                    voltage: if fmax > fmin {
                        vmin + (vmax - vmin) * (f - fmin) / (fmax - fmin)
                    } else {
                        vmax
                    },
                })
                .collect()
        }
        match platform {
            Platform::Atom => PlatformSpec {
                platform,
                class: SystemClass::Embedded,
                cores: 2,
                p_states: pstates(&[1600.0], 1.0, 1.0),
                supports_c1: false,
                per_core_pstates: false,
                independent_dvfs: false,
                tdp_w: 8.0,
                sockets: 1,
                memory_gb: 4.0,
                mem_max_bytes_per_sec: 6.4e9,
                disks: vec![DiskKind::Ssd.spec()],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (22.0, 26.0),
            },
            Platform::Core2 => PlatformSpec {
                platform,
                class: SystemClass::Mobile,
                cores: 2,
                p_states: pstates(&[800.0, 1330.0, 1860.0, 2260.0], 0.85, 1.15),
                supports_c1: false,
                per_core_pstates: false,
                independent_dvfs: false,
                tdp_w: 25.0,
                sockets: 1,
                memory_gb: 4.0,
                mem_max_bytes_per_sec: 8.5e9,
                disks: vec![DiskKind::Ssd.spec()],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (25.0, 46.0),
            },
            Platform::Athlon => PlatformSpec {
                platform,
                class: SystemClass::Desktop,
                cores: 2,
                p_states: pstates(&[800.0, 1800.0, 2300.0, 2800.0], 0.9, 1.3),
                supports_c1: false,
                per_core_pstates: false,
                independent_dvfs: false,
                tdp_w: 65.0,
                sockets: 1,
                memory_gb: 8.0,
                mem_max_bytes_per_sec: 6.4e9,
                disks: vec![DiskKind::Ssd.spec()],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (54.0, 104.0),
            },
            Platform::Opteron => PlatformSpec {
                platform,
                class: SystemClass::Server,
                cores: 8,
                p_states: pstates(&[800.0, 1200.0, 1600.0, 2000.0], 0.95, 1.25),
                supports_c1: true,
                per_core_pstates: true,
                independent_dvfs: false,
                tdp_w: 50.0,
                sockets: 2,
                memory_gb: 32.0,
                mem_max_bytes_per_sec: 12.8e9,
                disks: vec![DiskKind::Sata10k.spec(); 2],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (135.0, 190.0),
            },
            Platform::XeonSata => PlatformSpec {
                platform,
                class: SystemClass::Server,
                cores: 8,
                p_states: pstates(&[1600.0, 2000.0, 2330.0], 1.0, 1.25),
                supports_c1: true,
                per_core_pstates: true,
                independent_dvfs: false,
                tdp_w: 80.0,
                sockets: 2,
                memory_gb: 16.0,
                mem_max_bytes_per_sec: 10.6e9,
                disks: vec![DiskKind::Sata7200.spec(); 4],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (250.0, 375.0),
            },
            Platform::XeonSas => PlatformSpec {
                platform,
                class: SystemClass::Server,
                cores: 8,
                p_states: pstates(&[1600.0, 2000.0, 2670.0], 1.0, 1.3),
                supports_c1: true,
                per_core_pstates: true,
                independent_dvfs: false,
                tdp_w: 80.0,
                sockets: 2,
                memory_gb: 16.0,
                mem_max_bytes_per_sec: 10.6e9,
                disks: vec![DiskKind::Sas15k.spec(); 6],
                nic_max_bytes_per_sec: 125e6,
                power_range_w: (260.0, 380.0),
            },
        }
    }

    /// Highest-frequency P-state.
    pub fn max_pstate(&self) -> PState {
        // chaos-lint: allow(R4) — builtin specs always carry at least
        // one P-state (see the Table I literals above).
        *self.p_states.last().expect("spec has at least one p-state")
    }

    /// Lowest-frequency P-state.
    pub fn min_pstate(&self) -> PState {
        // chaos-lint: allow(R4) — same non-empty P-state invariant.
        self.p_states[0]
    }

    /// Whether this platform has more than one P-state (DVFS capable).
    pub fn has_dvfs(&self) -> bool {
        self.p_states.len() > 1
    }

    /// Returns a "future system" variant with fully independent per-core
    /// DVFS (the paper's Discussion: less-correlated core frequencies
    /// that demand individual per-core frequency features).
    pub fn with_independent_dvfs(mut self) -> PlatformSpec {
        self.per_core_pstates = true;
        self.independent_dvfs = true;
        self
    }

    /// Returns an energy-proportional variant: same peak power, idle at
    /// the given fraction of peak. The paper's Conclusion: "as future
    /// systems become more energy-proportional with larger dynamic power
    /// ranges and less static power, accurately capturing the dynamic
    /// range will be increasingly important."
    ///
    /// # Panics
    ///
    /// Panics unless `0 < idle_fraction < 1`.
    pub fn energy_proportional(mut self, idle_fraction: f64) -> PlatformSpec {
        assert!(
            idle_fraction > 0.0 && idle_fraction < 1.0,
            "idle fraction must be in (0, 1)"
        );
        let (_, max) = self.power_range_w;
        self.power_range_w = (idle_fraction * max, max);
        self
    }

    /// Aggregate disk throughput in bytes per second.
    pub fn total_disk_bandwidth(&self) -> f64 {
        self.disks.iter().map(|d| d.max_bytes_per_sec).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_have_valid_specs() {
        for p in Platform::ALL {
            let s = p.spec();
            assert!(s.cores >= 2, "{p}");
            assert!(!s.p_states.is_empty(), "{p}");
            assert!(s.power_range_w.1 > s.power_range_w.0, "{p}");
            assert!(!s.disks.is_empty(), "{p}");
            // P-states ascend in frequency and voltage.
            for w in s.p_states.windows(2) {
                assert!(w[1].freq_mhz > w[0].freq_mhz, "{p}");
                assert!(w[1].voltage >= w[0].voltage, "{p}");
            }
        }
    }

    #[test]
    fn atom_has_no_dvfs() {
        let s = Platform::Atom.spec();
        assert!(!s.has_dvfs());
        assert!(!s.supports_c1);
        assert_eq!(s.max_pstate().freq_mhz, 1600.0);
    }

    #[test]
    fn servers_have_per_core_pstates_and_c1() {
        for p in [Platform::Opteron, Platform::XeonSata, Platform::XeonSas] {
            let s = p.spec();
            assert!(s.supports_c1, "{p}");
            assert!(s.per_core_pstates, "{p}");
            assert_eq!(s.cores, 8, "{p}");
            assert_eq!(s.sockets, 2, "{p}");
        }
    }

    #[test]
    fn mobile_and_desktop_share_chip_frequency() {
        for p in [Platform::Core2, Platform::Athlon] {
            let s = p.spec();
            assert!(!s.per_core_pstates, "{p}");
            assert!(s.has_dvfs(), "{p}");
        }
    }

    #[test]
    fn table_i_power_ranges() {
        assert_eq!(Platform::Atom.spec().power_range_w, (22.0, 26.0));
        assert_eq!(Platform::Core2.spec().power_range_w, (25.0, 46.0));
        assert_eq!(Platform::Athlon.spec().power_range_w, (54.0, 104.0));
        assert_eq!(Platform::Opteron.spec().power_range_w, (135.0, 190.0));
        assert_eq!(Platform::XeonSata.spec().power_range_w, (250.0, 375.0));
        assert_eq!(Platform::XeonSas.spec().power_range_w, (260.0, 380.0));
    }

    #[test]
    fn disk_fleets_match_table_i() {
        assert_eq!(Platform::Opteron.spec().disks.len(), 2);
        assert_eq!(Platform::XeonSata.spec().disks.len(), 4);
        assert_eq!(Platform::XeonSas.spec().disks.len(), 6);
        assert_eq!(Platform::Core2.spec().disks[0].kind, DiskKind::Ssd);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Platform::XeonSas.to_string(), "XeonSAS");
        assert_eq!(Platform::Atom.to_string(), "Atom");
    }

    #[test]
    fn total_disk_bandwidth_sums() {
        let s = Platform::XeonSas.spec();
        assert_eq!(s.total_disk_bandwidth(), 6.0 * 130e6);
    }
}
