//! Component-level power model and power-supply efficiency curve.
//!
//! Computes the machine's *raw* DC power from hidden state, then converts
//! to wall (AC) power through a nonlinear PSU efficiency curve. The raw
//! numbers only need to be *shaped* correctly (which component dominates,
//! how power bends with utilization and frequency); [`crate::Machine`]
//! affinely calibrates the result onto the paper's Table I wall-power
//! ranges.

use crate::platform::{PlatformSpec, SystemClass};
use crate::state::MachineState;

/// Fraction of a core's power budget attributed to leakage at top voltage.
const LEAKAGE_FRAC: f64 = 0.25;
/// Fraction of socket TDP attributed to the uncore (caches, memory
/// controller, interconnect), always on while the socket is out of C1.
const UNCORE_FRAC: f64 = 0.15;

/// CPU package power (all sockets) in watts for the given state.
///
/// Per-core dynamic power follows the classic `C·V²·f·u` law; leakage
/// scales with `V²` and is gated by C1 residency. The uncore draws a fixed
/// fraction of TDP whenever any core is awake.
pub fn cpu_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    let total_tdp = spec.tdp_w * spec.sockets as f64;
    let per_core_budget = total_tdp * (1.0 - UNCORE_FRAC) / spec.cores as f64;
    let vmax = spec.max_pstate().voltage;
    let fmax = spec.max_pstate().freq_mhz;

    let mut power = 0.0;
    let mut any_awake = false;
    for core in &state.cores {
        if core.freq_mhz <= 0.0 {
            // Fully parked in C1: only residual leakage.
            power += per_core_budget * LEAKAGE_FRAC * 0.08;
            continue;
        }
        any_awake = true;
        let v_ratio = (core.voltage / vmax).powi(2);
        let f_ratio = core.freq_mhz / fmax;
        let leakage = per_core_budget * LEAKAGE_FRAC * v_ratio * (1.0 - 0.9 * core.c1_residency);
        let dynamic = per_core_budget * (1.0 - LEAKAGE_FRAC) * v_ratio * f_ratio * core.utilization;
        power += leakage + dynamic;
    }
    if any_awake {
        power += total_tdp * UNCORE_FRAC;
    } else {
        power += total_tdp * UNCORE_FRAC * 0.3;
    }
    power
}

/// DRAM power in watts: a static term per GB plus a bandwidth-proportional
/// dynamic term per socket's memory channels.
pub fn memory_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    let static_w = 0.35 * spec.memory_gb;
    let dyn_max = 9.0 * spec.sockets as f64;
    static_w + dyn_max * state.mem_bandwidth_frac
}

/// Aggregate disk power in watts: spindle/controller idle power plus an
/// activity term driven by achieved throughput and seek-heavy utilization.
pub fn disk_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    let total_bw = spec.total_disk_bandwidth();
    let throughput_frac = if total_bw > 0.0 {
        (state.disk_total_bytes() / total_bw).min(1.0)
    } else {
        0.0
    };
    // Seek activity burns power even at modest throughput.
    let activity = (0.6 * throughput_frac + 0.4 * state.disk_util_frac).min(1.0);
    spec.disks
        .iter()
        .map(|d| d.idle_w + d.active_w * activity)
        .sum()
}

/// NIC power in watts: PHY static power plus a traffic-proportional term.
pub fn nic_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    let util = (state.net_total_bytes() / spec.nic_max_bytes_per_sec).min(1.0);
    0.5 + 3.2 * util
}

/// Motherboard "glue" (regulators, chipset, fans, BMC) static DC power.
pub fn glue_power(spec: &PlatformSpec) -> f64 {
    match spec.class {
        SystemClass::Embedded => 6.0,
        SystemClass::Mobile => 8.0,
        SystemClass::Desktop => 18.0,
        SystemClass::Server => 55.0,
    }
}

/// PSU nameplate capacity in watts, by class.
pub fn psu_capacity(spec: &PlatformSpec) -> f64 {
    match spec.class {
        SystemClass::Embedded => 60.0,
        SystemClass::Mobile => 90.0,
        SystemClass::Desktop => 250.0,
        SystemClass::Server => 670.0,
    }
}

/// PSU efficiency at a given load fraction: a downward parabola peaking
/// near 55% load, clamped to a realistic 0.65–0.88 band. This is the main
/// source of wall-power nonlinearity beyond DVFS.
pub fn psu_efficiency(load_frac: f64) -> f64 {
    let l = load_frac.clamp(0.0, 1.2);
    (0.87 - 0.30 * (l - 0.55).powi(2)).clamp(0.65, 0.88)
}

/// Total DC power in watts for the given state (before the PSU).
pub fn dc_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    cpu_power(spec, state)
        + memory_power(spec, state)
        + disk_power(spec, state)
        + nic_power(spec, state)
        + glue_power(spec)
}

/// Raw (uncalibrated) wall power in watts: DC power divided by the PSU
/// efficiency at the implied load.
pub fn raw_wall_power(spec: &PlatformSpec, state: &MachineState) -> f64 {
    let dc = dc_power(spec, state);
    let eff = psu_efficiency(dc / psu_capacity(spec));
    dc / eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::state::CoreState;

    fn state_with_util(spec: &PlatformSpec, util: f64) -> MachineState {
        let p = spec.max_pstate();
        MachineState {
            cores: vec![
                CoreState {
                    utilization: util,
                    freq_mhz: p.freq_mhz,
                    voltage: p.voltage,
                    c1_residency: 0.0,
                };
                spec.cores
            ],
            mem_bandwidth_frac: util * 0.5,
            mem_committed_frac: 0.3,
            disk_read_bytes: 0.0,
            disk_write_bytes: 0.0,
            disk_util_frac: 0.0,
            net_rx_bytes: 0.0,
            net_tx_bytes: 0.0,
            runnable_tasks: util * spec.cores as f64,
        }
    }

    #[test]
    fn cpu_power_monotone_in_utilization() {
        for platform in Platform::ALL {
            let spec = platform.spec();
            let mut prev = -1.0;
            for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let p = cpu_power(&spec, &state_with_util(&spec, u));
                assert!(p > prev, "{platform} at {u}");
                prev = p;
            }
        }
    }

    #[test]
    fn cpu_power_lower_at_low_frequency() {
        let spec = Platform::Core2.spec();
        let mut low = state_with_util(&spec, 0.8);
        let pmin = spec.min_pstate();
        for c in &mut low.cores {
            c.freq_mhz = pmin.freq_mhz;
            c.voltage = pmin.voltage;
        }
        let high = state_with_util(&spec, 0.8);
        assert!(cpu_power(&spec, &low) < cpu_power(&spec, &high));
    }

    #[test]
    fn c1_park_saves_power() {
        let spec = Platform::Opteron.spec();
        let idle = state_with_util(&spec, 0.0);
        let mut parked = idle.clone();
        for c in &mut parked.cores {
            c.freq_mhz = 0.0;
            c.c1_residency = 1.0;
        }
        assert!(cpu_power(&spec, &parked) < cpu_power(&spec, &idle) * 0.7);
    }

    #[test]
    fn disk_power_rises_with_traffic() {
        let spec = Platform::XeonSas.spec();
        let mut s = state_with_util(&spec, 0.2);
        let idle_disk = disk_power(&spec, &s);
        s.disk_read_bytes = spec.total_disk_bandwidth();
        s.disk_util_frac = 1.0;
        let busy_disk = disk_power(&spec, &s);
        assert!(busy_disk > idle_disk + 10.0, "{idle_disk} -> {busy_disk}");
    }

    #[test]
    fn ssd_disk_power_is_small() {
        let spec = Platform::Core2.spec();
        let mut s = state_with_util(&spec, 0.2);
        s.disk_read_bytes = spec.total_disk_bandwidth();
        s.disk_util_frac = 1.0;
        assert!(disk_power(&spec, &s) < 3.5);
    }

    #[test]
    fn nic_power_saturates() {
        let spec = Platform::Atom.spec();
        let mut s = state_with_util(&spec, 0.0);
        s.net_rx_bytes = 10.0 * spec.nic_max_bytes_per_sec;
        assert_eq!(nic_power(&spec, &s), 0.5 + 3.2);
    }

    #[test]
    fn psu_efficiency_shape() {
        assert!(psu_efficiency(0.05) < psu_efficiency(0.55));
        assert!(psu_efficiency(1.0) < psu_efficiency(0.55));
        for l in [0.0, 0.2, 0.5, 0.8, 1.0, 1.5] {
            let e = psu_efficiency(l);
            assert!((0.65..=0.88).contains(&e), "eff({l}) = {e}");
        }
    }

    #[test]
    fn wall_power_exceeds_dc_power() {
        for platform in Platform::ALL {
            let spec = platform.spec();
            for u in [0.0, 0.5, 1.0] {
                let s = state_with_util(&spec, u);
                assert!(
                    raw_wall_power(&spec, &s) > dc_power(&spec, &s),
                    "{platform}"
                );
            }
        }
    }

    #[test]
    fn wall_power_is_nonlinear_in_utilization() {
        // With DVFS in play (the governor drops frequency and voltage at
        // half load), wall power at 50% demand must deviate clearly from
        // the linear midpoint of idle and full power — otherwise a linear
        // model would suffice and the paper's central claim would have no
        // substrate.
        use crate::machine::Machine;
        use crate::state::ResourceDemand;
        use rand::SeedableRng;
        let m = Machine::nominal(Platform::Athlon, 0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let avg_power = |cores: f64, rng: &mut rand_chacha::ChaCha8Rng| {
            (0..200)
                .map(|_| m.true_power(&m.apply_demand(&ResourceDemand::cpu_only(cores), rng)))
                .sum::<f64>()
                / 200.0
        };
        let p0 = avg_power(0.0, &mut rng);
        let p5 = avg_power(1.0, &mut rng);
        let p1 = avg_power(2.0, &mut rng);
        let linear_mid = (p0 + p1) / 2.0;
        assert!(
            (p5 - linear_mid).abs() > 2.0,
            "p0={p0:.1} p5={p5:.1} p1={p1:.1}"
        );
    }
}
