//! Resource demands (what a workload asks for) and hidden machine state
//! (what the hardware actually did in one one-second tick).

use serde::{Deserialize, Serialize};

/// What a workload demands from one machine over one second.
///
/// This is the interface between the workload generators and the machine
/// simulator: workloads speak in resource quantities; the machine turns
/// them into hardware state (frequencies, utilizations, device activity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Total CPU demand in cores (0.0 ..= machine core count). A value of
    /// 3.5 means "3.5 cores' worth of work at maximum frequency".
    pub cpu_cores: f64,
    /// Bytes read from disk this second.
    pub disk_read_bytes: f64,
    /// Bytes written to disk this second.
    pub disk_write_bytes: f64,
    /// Bytes received from the network this second.
    pub net_rx_bytes: f64,
    /// Bytes sent to the network this second.
    pub net_tx_bytes: f64,
    /// Memory bandwidth demand as a fraction of peak (0..=1).
    pub mem_bandwidth_frac: f64,
    /// Fraction of physical memory committed (0..=1).
    pub mem_committed_frac: f64,
    /// Number of runnable tasks (drives process/job-object counters).
    pub runnable_tasks: f64,
}

impl ResourceDemand {
    /// A fully idle second.
    pub fn idle() -> Self {
        ResourceDemand {
            cpu_cores: 0.0,
            disk_read_bytes: 0.0,
            disk_write_bytes: 0.0,
            net_rx_bytes: 0.0,
            net_tx_bytes: 0.0,
            mem_bandwidth_frac: 0.0,
            mem_committed_frac: 0.05,
            runnable_tasks: 0.0,
        }
    }

    /// A pure-CPU demand of `cores` cores (e.g. the Prime workload).
    pub fn cpu_only(cores: f64) -> Self {
        ResourceDemand {
            cpu_cores: cores,
            mem_bandwidth_frac: 0.1 * cores,
            mem_committed_frac: 0.2,
            runnable_tasks: cores.ceil(),
            ..ResourceDemand::idle()
        }
    }

    /// Component-wise sum of two demands (used when several tasks share a
    /// machine).
    pub fn combined(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            cpu_cores: self.cpu_cores + other.cpu_cores,
            disk_read_bytes: self.disk_read_bytes + other.disk_read_bytes,
            disk_write_bytes: self.disk_write_bytes + other.disk_write_bytes,
            net_rx_bytes: self.net_rx_bytes + other.net_rx_bytes,
            net_tx_bytes: self.net_tx_bytes + other.net_tx_bytes,
            mem_bandwidth_frac: (self.mem_bandwidth_frac + other.mem_bandwidth_frac).min(1.0),
            mem_committed_frac: (self.mem_committed_frac + other.mem_committed_frac).min(1.0),
            runnable_tasks: self.runnable_tasks + other.runnable_tasks,
        }
    }

    /// Scales every component by `factor` (used for partial-second task
    /// starts and finishes).
    pub fn scaled(&self, factor: f64) -> ResourceDemand {
        ResourceDemand {
            cpu_cores: self.cpu_cores * factor,
            disk_read_bytes: self.disk_read_bytes * factor,
            disk_write_bytes: self.disk_write_bytes * factor,
            net_rx_bytes: self.net_rx_bytes * factor,
            net_tx_bytes: self.net_tx_bytes * factor,
            mem_bandwidth_frac: self.mem_bandwidth_frac * factor,
            mem_committed_frac: self.mem_committed_frac,
            runnable_tasks: self.runnable_tasks * factor,
        }
    }

    /// True when every activity component is (near) zero.
    pub fn is_idle(&self) -> bool {
        self.cpu_cores < 1e-9
            && self.disk_read_bytes + self.disk_write_bytes < 1.0
            && self.net_rx_bytes + self.net_tx_bytes < 1.0
    }
}

impl Default for ResourceDemand {
    fn default() -> Self {
        ResourceDemand::idle()
    }
}

/// Hidden per-core hardware state for one second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreState {
    /// Busy fraction at the operating frequency (0..=1).
    pub utilization: f64,
    /// Operating frequency in MHz (0 when parked in C1 the whole second).
    pub freq_mhz: f64,
    /// Core voltage at the operating point.
    pub voltage: f64,
    /// Fraction of the second spent in C1 sleep.
    pub c1_residency: f64,
}

/// The machine's complete hidden state for one second — the ground truth
/// the power model integrates and the counter synthesizer observes
/// (noisily).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineState {
    /// Per-core states.
    pub cores: Vec<CoreState>,
    /// Achieved memory bandwidth as a fraction of peak (0..=1).
    pub mem_bandwidth_frac: f64,
    /// Fraction of physical memory committed (0..=1).
    pub mem_committed_frac: f64,
    /// Bytes actually read from disk (after bandwidth clamping).
    pub disk_read_bytes: f64,
    /// Bytes actually written to disk.
    pub disk_write_bytes: f64,
    /// Aggregate disk busy fraction (0..=1).
    pub disk_util_frac: f64,
    /// Bytes received on the NIC.
    pub net_rx_bytes: f64,
    /// Bytes sent on the NIC.
    pub net_tx_bytes: f64,
    /// Runnable task count seen by the scheduler this second.
    pub runnable_tasks: f64,
}

impl MachineState {
    /// Mean utilization across all cores (the classic "% Processor Time").
    pub fn cpu_utilization(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
    }

    /// Frequency of core 0 in MHz — the paper uses one core's frequency as
    /// a proxy for the whole system.
    pub fn core0_freq_mhz(&self) -> f64 {
        self.cores.first().map_or(0.0, |c| c.freq_mhz)
    }

    /// Whether at least two cores sit at different frequencies (the
    /// "hidden frequency state" effect on servers).
    pub fn has_frequency_divergence(&self) -> bool {
        self.cores
            .windows(2)
            // chaos-lint: allow(R4) — windows(2) yields exactly two
            // elements per window.
            .any(|w| (w[0].freq_mhz - w[1].freq_mhz).abs() > 1.0)
    }

    /// Total disk traffic in bytes.
    pub fn disk_total_bytes(&self) -> f64 {
        self.disk_read_bytes + self.disk_write_bytes
    }

    /// Total network traffic in bytes.
    pub fn net_total_bytes(&self) -> f64 {
        self.net_rx_bytes + self.net_tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_idle() {
        assert!(ResourceDemand::idle().is_idle());
        assert!(!ResourceDemand::cpu_only(1.0).is_idle());
    }

    #[test]
    fn combined_sums_and_clamps() {
        let a = ResourceDemand {
            cpu_cores: 1.0,
            mem_bandwidth_frac: 0.7,
            ..ResourceDemand::idle()
        };
        let b = ResourceDemand {
            cpu_cores: 2.0,
            mem_bandwidth_frac: 0.6,
            disk_read_bytes: 100.0,
            ..ResourceDemand::idle()
        };
        let c = a.combined(&b);
        assert_eq!(c.cpu_cores, 3.0);
        assert_eq!(c.mem_bandwidth_frac, 1.0, "clamped at 1");
        assert_eq!(c.disk_read_bytes, 100.0);
    }

    #[test]
    fn scaled_scales_rates_not_occupancy() {
        let d = ResourceDemand {
            cpu_cores: 2.0,
            disk_read_bytes: 10.0,
            mem_committed_frac: 0.5,
            ..ResourceDemand::idle()
        };
        let h = d.scaled(0.5);
        assert_eq!(h.cpu_cores, 1.0);
        assert_eq!(h.disk_read_bytes, 5.0);
        assert_eq!(h.mem_committed_frac, 0.5, "occupancy is not a rate");
    }

    #[test]
    fn machine_state_aggregates() {
        let s = MachineState {
            cores: vec![
                CoreState {
                    utilization: 1.0,
                    freq_mhz: 2000.0,
                    voltage: 1.2,
                    c1_residency: 0.0,
                },
                CoreState {
                    utilization: 0.0,
                    freq_mhz: 800.0,
                    voltage: 0.9,
                    c1_residency: 0.8,
                },
            ],
            mem_bandwidth_frac: 0.5,
            mem_committed_frac: 0.4,
            disk_read_bytes: 10.0,
            disk_write_bytes: 5.0,
            disk_util_frac: 0.1,
            net_rx_bytes: 3.0,
            net_tx_bytes: 4.0,
            runnable_tasks: 2.0,
        };
        assert_eq!(s.cpu_utilization(), 0.5);
        assert_eq!(s.core0_freq_mhz(), 2000.0);
        assert!(s.has_frequency_divergence());
        assert_eq!(s.disk_total_bytes(), 15.0);
        assert_eq!(s.net_total_bytes(), 7.0);
    }

    #[test]
    fn empty_core_list_is_harmless() {
        let s = MachineState {
            cores: vec![],
            mem_bandwidth_frac: 0.0,
            mem_committed_frac: 0.0,
            disk_read_bytes: 0.0,
            disk_write_bytes: 0.0,
            disk_util_frac: 0.0,
            net_rx_bytes: 0.0,
            net_tx_bytes: 0.0,
            runnable_tasks: 0.0,
        };
        assert_eq!(s.cpu_utilization(), 0.0);
        assert_eq!(s.core0_freq_mhz(), 0.0);
        assert!(!s.has_frequency_divergence());
    }
}
