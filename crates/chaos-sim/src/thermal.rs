//! Hidden thermal drift: the component of wall power no OS counter can
//! explain.
//!
//! Real machines draw more power when hot — leakage rises with silicon
//! temperature and fans spin up — and temperature integrates the load
//! *history*, not the instantaneous counters. This bounded
//! Ornstein–Uhlenbeck-style process is what keeps the paper's best models
//! at a few percent DRE instead of zero: an irreducible, slowly varying
//! error floor.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fraction of a machine's dynamic range that thermal state can swing.
const SWING_FRAC: f64 = 0.15;
/// Mean-reversion rate per second (time constant ≈ 1 / RATE seconds).
const RATE: f64 = 0.02;
/// Per-second random perturbation of the thermal level.
const JITTER: f64 = 0.09;

/// A machine's hidden thermal state, advanced once per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    level: f64,
}

impl ThermalModel {
    /// A machine that has been idling: cool.
    pub fn new() -> Self {
        ThermalModel { level: 0.3 }
    }

    /// Advances one second toward the load-dependent equilibrium and
    /// returns the extra wall power as a *fraction of the machine's
    /// dynamic range*, centered so a machine at its cool baseline adds
    /// nothing.
    pub fn step<R: Rng + ?Sized>(&mut self, utilization: f64, rng: &mut R) -> f64 {
        let target = 0.25 + 0.6 * utilization.clamp(0.0, 1.0);
        self.level += RATE * (target - self.level) + rng.gen_range(-JITTER..JITTER);
        self.level = self.level.clamp(0.0, 1.0);
        SWING_FRAC * (self.level - 0.3)
    }

    /// Current thermal level in `[0, 1]`.
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn warms_up_under_load_and_cools_at_idle() {
        let mut t = ThermalModel::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..600 {
            t.step(1.0, &mut rng);
        }
        let hot = t.level();
        assert!(hot > 0.6, "should warm up: {hot}");
        for _ in 0..600 {
            t.step(0.0, &mut rng);
        }
        assert!(t.level() < 0.45, "should cool down: {}", t.level());
    }

    #[test]
    fn swing_is_bounded() {
        let mut t = ThermalModel::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 0..2000 {
            let u = if i % 100 < 50 { 1.0 } else { 0.0 };
            let extra = t.step(u, &mut rng);
            assert!(extra.abs() <= SWING_FRAC, "swing {extra}");
            assert!((0.0..=1.0).contains(&t.level()));
        }
    }

    #[test]
    fn drift_is_slow() {
        // One second changes the level by at most RATE + JITTER.
        let mut t = ThermalModel::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before = t.level();
        t.step(1.0, &mut rng);
        assert!((t.level() - before).abs() < RATE + JITTER + 1e-12);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = ThermalModel::new();
        let mut b = ThermalModel::new();
        let mut ra = ChaCha8Rng::seed_from_u64(5);
        let mut rb = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.step(0.7, &mut ra), b.step(0.7, &mut rb));
        }
    }
}
