//! Machine-to-machine power variation.
//!
//! The paper (and its reference \[3\], Davis et al., EXERT 2011) reports
//! that nominally identical machines differ in power by as much as 10% at
//! idle and under load — the reason Algorithm 1 pools features and data
//! across the whole cluster instead of modeling one representative
//! machine. Every simulated machine draws a [`MachineVariation`] from a
//! seeded RNG: scale factors on its idle/max calibration targets plus
//! mild biases in how power splits across components.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-machine deviations from the platform's nominal power behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineVariation {
    /// Multiplier on the platform's nominal idle wall power (≈0.95–1.05).
    pub idle_scale: f64,
    /// Multiplier on the platform's nominal maximum wall power.
    pub max_scale: f64,
    /// Bias on CPU component power (affects which counters matter most on
    /// this machine).
    pub cpu_bias: f64,
    /// Bias on disk component power.
    pub disk_bias: f64,
    /// Bias on NIC component power.
    pub net_bias: f64,
    /// Extra measurement-chain offset in watts (meter calibration drift).
    pub meter_offset_w: f64,
}

impl MachineVariation {
    /// The nominal machine: no deviation at all.
    pub fn nominal() -> Self {
        MachineVariation {
            idle_scale: 1.0,
            max_scale: 1.0,
            cpu_bias: 1.0,
            disk_bias: 1.0,
            net_bias: 1.0,
            meter_offset_w: 0.0,
        }
    }

    /// Samples a machine's variation. Scales stay within ±5% each, so two
    /// machines can differ by up to ~10% — the paper's observed bound.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        MachineVariation {
            idle_scale: rng.gen_range(0.95..1.05),
            max_scale: rng.gen_range(0.95..1.05),
            cpu_bias: rng.gen_range(0.92..1.08),
            disk_bias: rng.gen_range(0.90..1.10),
            net_bias: rng.gen_range(0.90..1.10),
            meter_offset_w: rng.gen_range(-0.3..0.3),
        }
    }
}

impl Default for MachineVariation {
    fn default() -> Self {
        MachineVariation::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn nominal_is_identity() {
        let v = MachineVariation::nominal();
        assert_eq!(v.idle_scale, 1.0);
        assert_eq!(v.meter_offset_w, 0.0);
        assert_eq!(MachineVariation::default(), v);
    }

    #[test]
    fn sample_is_deterministic_by_seed() {
        let a = MachineVariation::sample(&mut ChaCha8Rng::seed_from_u64(9));
        let b = MachineVariation::sample(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = MachineVariation::sample(&mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn sample_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = MachineVariation::sample(&mut rng);
            assert!((0.95..1.05).contains(&v.idle_scale));
            assert!((0.95..1.05).contains(&v.max_scale));
            assert!((0.92..1.08).contains(&v.cpu_bias));
            assert!((0.90..1.10).contains(&v.disk_bias));
            assert!((0.90..1.10).contains(&v.net_bias));
            assert!(v.meter_offset_w.abs() <= 0.3);
        }
    }

    #[test]
    fn pairwise_variation_can_reach_near_ten_percent() {
        // Two machines at opposite extremes differ by ~10% in idle target.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..500 {
            let v = MachineVariation::sample(&mut rng);
            lo = lo.min(v.idle_scale);
            hi = hi.max(v.idle_scale);
        }
        assert!(hi / lo > 1.07, "spread {}", hi / lo);
    }
}
