//! Property-based tests for the machine/cluster simulator.

use chaos_sim::{Cluster, Machine, MachineVariation, Platform, PowerMeter, ResourceDemand};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_platform() -> impl Strategy<Value = Platform> {
    prop_oneof![
        Just(Platform::Atom),
        Just(Platform::Core2),
        Just(Platform::Athlon),
        Just(Platform::Opteron),
        Just(Platform::XeonSata),
        Just(Platform::XeonSas),
    ]
}

fn any_demand() -> impl Strategy<Value = ResourceDemand> {
    (
        0.0..8.0f64,
        0.0..1e9f64,
        0.0..1e9f64,
        0.0..2e8f64,
        0.0..2e8f64,
        0.0..1.0f64,
        0.0..1.0f64,
        0.0..16.0f64,
    )
        .prop_map(|(cpu, dr, dw, nr, nt, mb, mc, tasks)| ResourceDemand {
            cpu_cores: cpu,
            disk_read_bytes: dr,
            disk_write_bytes: dw,
            net_rx_bytes: nr,
            net_tx_bytes: nt,
            mem_bandwidth_frac: mb,
            mem_committed_frac: mc,
            runnable_tasks: tasks,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// True power always stays within the machine's calibrated envelope
    /// (with a whisper of tolerance for clamped jitter).
    #[test]
    fn power_within_envelope(platform in any_platform(), demand in any_demand(), seed in 0u64..500) {
        let m = Machine::nominal(platform, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let state = m.apply_demand(&demand, &mut rng);
        let p = m.true_power(&state);
        prop_assert!(p >= m.idle_power() - 1.0, "{platform}: {p} < idle {}", m.idle_power());
        prop_assert!(p <= m.max_power() + 1.0, "{platform}: {p} > max {}", m.max_power());
    }

    /// State invariants hold for every demand: utilizations in [0, 1],
    /// device traffic within hardware limits, non-negative everything.
    #[test]
    fn state_invariants(platform in any_platform(), demand in any_demand(), seed in 0u64..500) {
        let m = Machine::nominal(platform, 1);
        let spec = m.spec();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = m.apply_demand(&demand, &mut rng);
        prop_assert_eq!(s.cores.len(), spec.cores);
        for c in &s.cores {
            prop_assert!((0.0..=1.0).contains(&c.utilization));
            prop_assert!(c.freq_mhz >= 0.0);
            prop_assert!((0.0..=1.0).contains(&c.c1_residency));
        }
        prop_assert!(s.disk_total_bytes() <= spec.total_disk_bandwidth() * 1.0001);
        prop_assert!(s.net_rx_bytes <= spec.nic_max_bytes_per_sec * 1.0001);
        prop_assert!(s.net_tx_bytes <= spec.nic_max_bytes_per_sec * 1.0001);
        prop_assert!((0.0..=1.0).contains(&s.mem_bandwidth_frac));
        prop_assert!((0.0..=1.0).contains(&s.disk_util_frac));
    }

    /// Governor frequencies always come from the platform's P-state table
    /// (or 0 for a parked core).
    #[test]
    fn frequencies_are_legal_pstates(platform in any_platform(), demand in any_demand(), seed in 0u64..200) {
        let m = Machine::nominal(platform, 2);
        let spec = m.spec().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = m.apply_demand(&demand, &mut rng);
        for c in &s.cores {
            let legal = c.freq_mhz == 0.0
                || spec.p_states.iter().any(|p| (p.freq_mhz - c.freq_mhz).abs() < 1e-9);
            prop_assert!(legal, "illegal frequency {}", c.freq_mhz);
        }
    }

    /// Cluster power is exactly the sum of member powers, for any size.
    #[test]
    fn cluster_power_is_additive(platform in any_platform(), n in 1usize..8, seed in 0u64..100) {
        let cluster = Cluster::homogeneous(platform, n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let states: Vec<_> = cluster
            .machines()
            .iter()
            .map(|m| m.apply_demand(&ResourceDemand::cpu_only(1.0), &mut rng))
            .collect();
        let total = cluster.true_power(&states);
        let sum: f64 = cluster
            .machines()
            .iter()
            .zip(&states)
            .map(|(m, s)| m.true_power(s))
            .sum();
        prop_assert!((total - sum).abs() < 1e-9);
    }

    /// Machine variation sampling keeps the max above the idle power.
    #[test]
    fn variation_preserves_range_order(platform in any_platform(), seed in 0u64..2000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v = MachineVariation::sample(&mut rng);
        let m = Machine::new(platform.spec(), 0, v);
        prop_assert!(m.max_power() > m.idle_power());
        prop_assert!(m.dynamic_range() > 0.0);
    }

    /// Meter readings stay within the 1.5% error class plus offset.
    #[test]
    fn meter_error_bounded(truth in 5.0..500.0f64, seed in 0u64..500) {
        let mut srng = ChaCha8Rng::seed_from_u64(seed);
        let meter = PowerMeter::sample(&mut srng);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..20 {
            let r = meter.read(truth, &mut rng);
            // gain 0.5% + noise 0.9% + offset 0.3 W + rounding 0.05 W.
            let bound = truth * 0.015 + 0.36;
            prop_assert!((r - truth).abs() <= bound, "reading {r} vs {truth}");
        }
    }
}
