//! Structure-of-arrays batch prediction across machines.
//!
//! The streaming engine's steady state scores every fleet machine with
//! the same *shape* of model: a dot product between a per-machine
//! coefficient vector and a per-machine feature row. Doing that one
//! machine at a time walks `m` short, pointer-chased slices per tick.
//! [`CoefBlock`] packs the same numbers column-major — entry `(f, j)`
//! of machine `j`'s vector lives at `data[f * m + j]` — so one
//! feature-outer / machine-inner loop streams through memory
//! sequentially and scores the whole fleet per cache line.
//!
//! # Bit-identity contract
//!
//! [`CoefBlock::predict_into`] is *bit-identical* to the scalar
//! per-machine idiom
//! `row.iter().zip(coefs).map(|(a, b)| a * b).sum::<f64>()`
//! (the kernel inside [`OlsFit::predict_row`](crate::ols::OlsFit) and
//! the engine's linear adapted models): each output slot starts at
//! `0.0` and accumulates its machine's products in feature order
//! `0..k`, which is exactly the fold `std::iter::Sum<f64>` performs.
//! Only the *machine* loop is interchanged — never the feature loop —
//! so the floating-point operation sequence per machine is unchanged,
//! including for NaN, infinite, and subnormal coefficients. For the
//! same reason ragged fleets must not be zero-padded into a block:
//! `0.0 × NaN = NaN` and `-0.0 + 0.0 = +0.0` would both change bits,
//! so machines whose model does not span the full feature set take the
//! scalar path instead (see `chaos-stream`'s engine).
//!
//! The parallel variant [`CoefBlock::predict_into_exec`] splits the
//! machine range into contiguous chunks, one per worker; per-machine
//! accumulation order is untouched, so results are bit-identical
//! across 1, 2, 4, 8, … threads — the same ordered-merge discipline
//! as [`ExecPolicy::par_map_indices`](crate::exec::ExecPolicy).

use crate::exec::ExecPolicy;
use crate::StatsError;

/// A column-major `k × m` block of per-machine vectors (`k` entries
/// per machine, `m` machines): entry `(f, j)` is stored at
/// `data[f * m + j]`.
///
/// Rows are staged row-major via [`push`](CoefBlock::push) and
/// transposed once by [`seal`](CoefBlock::seal); both buffers are
/// retained across [`clear`](CoefBlock::clear), so a block that is
/// rebuilt every tick allocates only until the fleet's high-water
/// mark, then never again. The same type carries the coefficient
/// block *and* the gathered feature-row block — the batched kernel is
/// symmetric in the two operands.
///
/// Values are deliberately **not** validated for finiteness: the
/// block must reproduce whatever the scalar path would have computed,
/// NaNs included.
///
/// # Example
///
/// ```
/// use chaos_stats::batch::CoefBlock;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let mut coefs = CoefBlock::new(2);
/// coefs.push(&[1.0, 2.0])?; // machine 0: y = 1·x0 + 2·x1
/// coefs.push(&[3.0, 4.0])?; // machine 1: y = 3·x0 + 4·x1
/// coefs.seal();
/// let mut rows = CoefBlock::new(2);
/// rows.push(&[10.0, 100.0])?;
/// rows.push(&[10.0, 100.0])?;
/// rows.seal();
/// let mut out = [0.0; 2];
/// coefs.predict_into(&rows, &mut out)?;
/// assert_eq!(out, [210.0, 430.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoefBlock {
    /// Entries per machine.
    k: usize,
    /// Machines staged so far.
    m: usize,
    /// Row-major staging area, `m * k`.
    stage: Vec<f64>,
    /// Column-major payload, `k * m`; valid only when `sealed`.
    cols: Vec<f64>,
    sealed: bool,
}

impl CoefBlock {
    /// An empty block for vectors of `k` entries per machine.
    pub fn new(k: usize) -> Self {
        CoefBlock {
            k,
            m: 0,
            stage: Vec::new(),
            cols: Vec::new(),
            sealed: false,
        }
    }

    /// Entries per machine.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Machines currently staged.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether no machines are staged.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Drops all staged machines but keeps both buffers' capacity.
    pub fn clear(&mut self) {
        self.m = 0;
        self.stage.clear();
        self.sealed = false;
    }

    /// Stages one machine's vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `v.len()` differs
    /// from the block width.
    pub fn push(&mut self, v: &[f64]) -> Result<(), StatsError> {
        if v.len() != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "coef block: vector has {} entries, block width is {}",
                    v.len(),
                    self.k
                ),
            });
        }
        self.stage.extend_from_slice(v);
        self.m += 1;
        self.sealed = false;
        Ok(())
    }

    /// Transposes the staged rows into the column-major payload.
    /// Idempotent; cheap to call after every rebuild.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let (k, m) = (self.k, self.m);
        self.cols.clear();
        // chaos-lint: allow(R6) — reached only on reseal after a staging rebuild; a sealed block returns at the guard above
        self.cols.resize(k * m, 0.0);
        for j in 0..m {
            let row = &self.stage[j * k..(j + 1) * k];
            for (f, &v) in row.iter().enumerate() {
                self.cols[f * m + j] = v;
            }
        }
        self.sealed = true;
    }

    /// Entry `(f, j)`: component `f` of machine `j`'s staged vector.
    ///
    /// # Panics
    ///
    /// Panics if `f >= width()` or `j >= len()`.
    pub fn get(&self, f: usize, j: usize) -> f64 {
        assert!(f < self.k && j < self.m, "coef block index out of range");
        self.stage[j * self.k + f]
    }

    /// The sealed column-major payload (`k * m`, entry `(f, j)` at
    /// `f * m + j`), or `None` before [`seal`](CoefBlock::seal).
    pub fn columns(&self) -> Option<&[f64]> {
        if self.sealed {
            Some(&self.cols)
        } else {
            None
        }
    }

    /// Scores every machine: `out[j] = Σ_f self(f, j) · rows(f, j)`,
    /// accumulated in feature order from `0.0` — bit-identical to the
    /// scalar zip-dot per machine (see the module docs).
    ///
    /// Both blocks must be sealed.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the blocks differ
    /// in width or machine count, if `out.len()` differs from the
    /// machine count, or if either block is unsealed.
    // chaos-lint: hot — SoA batch prediction kernel; the per-tick fleet scoring path
    pub fn predict_into(&self, rows: &CoefBlock, out: &mut [f64]) -> Result<(), StatsError> {
        self.check_operands(rows, out.len())?;
        let m = self.m;
        out.fill(0.0);
        for f in 0..self.k {
            let c = &self.cols[f * m..(f + 1) * m];
            let x = &rows.cols[f * m..(f + 1) * m];
            for j in 0..m {
                out[j] += c[j] * x[j];
            }
        }
        Ok(())
    }

    /// [`predict_into`](CoefBlock::predict_into) with the machine
    /// range split into contiguous per-worker chunks under `policy`.
    /// Per-machine accumulation order is unchanged, so the output is
    /// bit-identical to the serial kernel at every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_into`](CoefBlock::predict_into).
    // chaos-lint: hot — parallel variant of the batch prediction kernel
    pub fn predict_into_exec(
        &self,
        rows: &CoefBlock,
        out: &mut [f64],
        policy: &ExecPolicy,
    ) -> Result<(), StatsError> {
        self.check_operands(rows, out.len())?;
        let m = self.m;
        let workers = policy.threads().min(m);
        if workers <= 1 {
            return self.predict_into(rows, out);
        }
        let chunk = m.div_ceil(workers);
        let k = self.k;
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let lo = ci * chunk;
                let cols = &self.cols;
                let xcols = &rows.cols;
                scope.spawn(move || {
                    out_chunk.fill(0.0);
                    for f in 0..k {
                        let c = &cols[f * m + lo..f * m + lo + out_chunk.len()];
                        let x = &xcols[f * m + lo..f * m + lo + out_chunk.len()];
                        for (o, (cv, xv)) in out_chunk.iter_mut().zip(c.iter().zip(x)) {
                            *o += cv * xv;
                        }
                    }
                });
            }
        });
        Ok(())
    }

    fn check_operands(&self, rows: &CoefBlock, out_len: usize) -> Result<(), StatsError> {
        if rows.k != self.k || rows.m != self.m || out_len != self.m {
            return Err(StatsError::DimensionMismatch {
                // chaos-lint: allow(R6) — constructs the dimension-mismatch error; the success path is branch-free
                context: format!(
                    "coef block predict: coefs {}x{}, rows {}x{}, out {}",
                    self.k, self.m, rows.k, rows.m, out_len
                ),
            });
        }
        if !self.sealed || !rows.sealed {
            return Err(StatsError::DimensionMismatch {
                // chaos-lint: allow(R6) — error-branch message only
                context: "coef block predict: operand not sealed".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    fn filled(k: usize, m: usize, salt: usize) -> CoefBlock {
        let mut b = CoefBlock::new(k);
        for j in 0..m {
            let v: Vec<f64> = (0..k).map(|f| det(salt + j * k + f) * 8.0).collect();
            b.push(&v).unwrap();
        }
        b.seal();
        b
    }

    fn scalar(coefs: &[f64], row: &[f64]) -> f64 {
        row.iter().zip(coefs).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn matches_scalar_dot_bitwise() {
        for &(k, m) in &[(1, 1), (3, 7), (6, 33)] {
            let c = filled(k, m, 11);
            let x = filled(k, m, 5000);
            let mut out = vec![0.0; m];
            c.predict_into(&x, &mut out).unwrap();
            for j in 0..m {
                let cj: Vec<f64> = (0..k).map(|f| c.get(f, j)).collect();
                let xj: Vec<f64> = (0..k).map(|f| x.get(f, j)).collect();
                assert_eq!(out[j].to_bits(), scalar(&cj, &xj).to_bits());
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (k, m) = (5, 41);
        let c = filled(k, m, 77);
        let x = filled(k, m, 9000);
        let mut serial = vec![0.0; m];
        c.predict_into(&x, &mut serial).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let policy = ExecPolicy::Parallel { threads };
            let mut out = vec![0.0; m];
            c.predict_into_exec(&x, &mut out, &policy).unwrap();
            for j in 0..m {
                assert_eq!(
                    out[j].to_bits(),
                    serial[j].to_bits(),
                    "thread count {threads}"
                );
            }
        }
    }

    #[test]
    fn nan_coefficients_propagate_like_scalar() {
        let mut c = CoefBlock::new(2);
        c.push(&[f64::NAN, 1.0]).unwrap();
        c.push(&[2.0, 3.0]).unwrap();
        c.seal();
        let mut x = CoefBlock::new(2);
        x.push(&[1.0, 1.0]).unwrap();
        x.push(&[1.0, 1.0]).unwrap();
        x.seal();
        let mut out = [0.0; 2];
        c.predict_into(&x, &mut out).unwrap();
        assert!(out[0].is_nan());
        assert_eq!(out[1].to_bits(), 5.0f64.to_bits());
    }

    #[test]
    fn clear_retains_capacity_and_reuse_is_alloc_free_shape() {
        let mut b = filled(4, 10, 3);
        let cap = b.stage.capacity();
        b.clear();
        assert!(b.is_empty());
        for j in 0..10 {
            b.push(&[j as f64; 4]).unwrap();
        }
        b.seal();
        assert_eq!(b.stage.capacity(), cap);
        assert_eq!(b.get(2, 3), 3.0);
    }

    #[test]
    fn rejects_mismatches() {
        let mut c = CoefBlock::new(2);
        assert!(c.push(&[1.0]).is_err());
        c.push(&[1.0, 2.0]).unwrap();
        c.seal();
        let x = filled(2, 2, 1);
        let mut out = [0.0; 1];
        assert!(c.predict_into(&x, &mut out).is_err());
        let x1 = filled(2, 1, 1);
        let mut unsealed = CoefBlock::new(2);
        unsealed.push(&[1.0, 2.0]).unwrap();
        assert!(unsealed.predict_into(&x1, &mut out).is_err());
        assert!(c.predict_into(&x1, &mut out).is_ok());
    }
}
