//! Pearson correlation matrices and correlated-feature pruning.
//!
//! Algorithm 1, step 1: compute the features' pairwise correlation matrix
//! across all workloads and reduce groups of features with pairwise
//! correlation above `|0.95|`, because correlated counters artificially
//! inflate regression coefficients. The paper reports this step removed
//! about 80 of their 250 candidate counters.

use crate::describe;
use crate::matrix::Matrix;
use crate::StatsError;

/// Pearson correlation between two equally long slices.
///
/// Returns `0.0` if either slice has zero variance (a constant counter is
/// uncorrelated with everything for pruning purposes).
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] if the slices differ in length
/// and [`StatsError::InsufficientData`] if they have fewer than two samples.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch {
            context: format!("pearson: {} vs {} samples", a.len(), b.len()),
        });
    }
    if a.len() < 2 {
        return Err(StatsError::InsufficientData {
            observations: a.len(),
            required: 2,
        });
    }
    let ma = describe::mean(a);
    let mb = describe::mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Pairwise correlation matrix of the columns of `x`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if `x` has fewer than two rows.
pub fn correlation_matrix(x: &Matrix) -> Result<Matrix, StatsError> {
    let p = x.cols();
    if x.rows() < 2 {
        return Err(StatsError::InsufficientData {
            observations: x.rows(),
            required: 2,
        });
    }
    let cols: Vec<Vec<f64>> = (0..p).map(|j| x.col(j)).collect();
    let mut c = Matrix::identity(p);
    for i in 0..p {
        for j in (i + 1)..p {
            let r = pearson(&cols[i], &cols[j])?;
            c.set(i, j, r);
            c.set(j, i, r);
        }
    }
    Ok(c)
}

/// Greedy correlated-group reduction (Algorithm 1, step 1).
///
/// Scans features in `priority` order (earlier = more preferred, e.g.
/// ordered by correlation with the response or by domain knowledge) and
/// keeps a feature only if its absolute correlation with every
/// already-kept feature is at most `threshold`. Returns the kept indices
/// in ascending order.
///
/// # Errors
///
/// * [`StatsError::InvalidParameter`] if `threshold` is outside `(0, 1]` or
///   `priority` is not a permutation of the column indices.
///
/// # Example
///
/// ```
/// use chaos_stats::{Matrix, corr};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // Column 1 is an exact copy of column 0; column 2 is independent.
/// let x = Matrix::from_cols(&[
///     vec![1.0, 2.0, 3.0, 4.0],
///     vec![1.0, 2.0, 3.0, 4.0],
///     vec![4.0, 1.0, 3.0, 2.0],
/// ])?;
/// let c = corr::correlation_matrix(&x)?;
/// let kept = corr::prune_correlated(&c, 0.95, &[0, 1, 2])?;
/// assert_eq!(kept, vec![0, 2]);
/// # Ok(())
/// # }
/// ```
pub fn prune_correlated(
    corr: &Matrix,
    threshold: f64,
    priority: &[usize],
) -> Result<Vec<usize>, StatsError> {
    if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: format!("prune threshold must be in (0, 1], got {threshold}"),
        });
    }
    let p = corr.cols();
    if corr.rows() != p {
        return Err(StatsError::DimensionMismatch {
            context: format!("correlation matrix must be square, got {}x{p}", corr.rows()),
        });
    }
    if priority.len() != p {
        return Err(StatsError::InvalidParameter {
            context: format!("priority has {} entries for {p} features", priority.len()),
        });
    }
    let mut seen = vec![false; p];
    for &j in priority {
        if j >= p || seen[j] {
            return Err(StatsError::InvalidParameter {
                context: "priority must be a permutation of the feature indices".into(),
            });
        }
        seen[j] = true;
    }

    let mut kept: Vec<usize> = Vec::new();
    for &j in priority {
        let ok = kept.iter().all(|&k| corr.get(j, k).abs() <= threshold);
        if ok {
            kept.push(j);
        }
    }
    kept.sort_unstable();
    Ok(kept)
}

/// Convenience: prune the columns of a raw data matrix directly, preferring
/// lower column indices (the caller should order columns by preference).
///
/// # Errors
///
/// Propagates the error conditions of [`correlation_matrix`] and
/// [`prune_correlated`].
pub fn prune_correlated_columns(x: &Matrix, threshold: f64) -> Result<Vec<usize>, StatsError> {
    let c = correlation_matrix(x)?;
    let priority: Vec<usize> = (0..x.cols()).collect();
    prune_correlated(&c, threshold, &priority)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0, -4.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let a = [5.0, 5.0, 5.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_orthogonal() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&a, &b).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let x = Matrix::from_cols(&[
            vec![1.0, 2.0, 3.0, 5.0],
            vec![2.0, 1.0, 4.0, 3.0],
            vec![1.0, 3.0, 2.0, 8.0],
        ])
        .unwrap();
        let c = correlation_matrix(&x).unwrap();
        for i in 0..3 {
            assert_eq!(c.get(i, i), 1.0);
            for j in 0..3 {
                assert!((c.get(i, j) - c.get(j, i)).abs() < 1e-15);
                assert!(c.get(i, j).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn prune_removes_near_duplicates() {
        // col1 = col0 + tiny jitter → |r| > 0.95; col2 independent.
        let col0: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let col1: Vec<f64> = (0..50)
            .map(|i| i as f64 + 0.01 * ((i * 7) % 3) as f64)
            .collect();
        let col2: Vec<f64> = (0..50)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract())
            .collect();
        let x = Matrix::from_cols(&[col0, col1, col2]).unwrap();
        let kept = prune_correlated_columns(&x, 0.95).unwrap();
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn prune_respects_priority_order() {
        let x = Matrix::from_cols(&[vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
        let c = correlation_matrix(&x).unwrap();
        // Preferring column 1 keeps column 1.
        let kept = prune_correlated(&c, 0.95, &[1, 0]).unwrap();
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn prune_keeps_all_when_below_threshold() {
        let x =
            Matrix::from_cols(&[vec![1.0, -1.0, 1.0, -1.0], vec![1.0, 1.0, -1.0, -1.0]]).unwrap();
        let kept = prune_correlated_columns(&x, 0.95).unwrap();
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn prune_rejects_bad_inputs() {
        let c = Matrix::identity(2);
        assert!(prune_correlated(&c, 0.0, &[0, 1]).is_err());
        assert!(prune_correlated(&c, 1.5, &[0, 1]).is_err());
        assert!(prune_correlated(&c, 0.9, &[0]).is_err());
        assert!(prune_correlated(&c, 0.9, &[0, 0]).is_err());
        assert!(prune_correlated(&c, 0.9, &[0, 5]).is_err());
    }
}
