//! Cross-validation splits.
//!
//! The paper evaluates every model with 5-fold cross-validation where "the
//! training set \[is\] about ten times smaller than the test data set" and
//! training and test sets come from *separate application runs*. Two split
//! shapes support this:
//!
//! * [`KFold`] — classic k-fold over sample indices; with
//!   [`KFold::inverted`] the single fold is the *training* set and the
//!   remaining k−1 folds are the test set, which reproduces the paper's
//!   small-train / large-test ratio.
//! * [`RunSplit`] — leave-runs-out splitting over whole application runs,
//!   so a model is always tested on runs it never saw.
//!
//! [`cross_validate`] runs a fit/score pair over a batch of splits under
//! an [`ExecPolicy`], so the folds of Eq. 6's DRE evaluation can fan out
//! across threads without changing a single bit of the scores.

use crate::exec::ExecPolicy;
use crate::StatsError;

/// One train/test partition of sample indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the test samples.
    pub test: Vec<usize>,
}

/// K-fold splitter over `n` samples using contiguous blocks.
///
/// Contiguous (rather than shuffled) folds are deliberate: power traces are
/// time series, and contiguous folds avoid leaking a sample's immediate
/// temporal neighbors into the training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    n: usize,
    k: usize,
    inverted: bool,
}

impl KFold {
    /// Creates a standard k-fold splitter (train on k−1 folds, test on 1).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `k < 2` or `k > n`.
    pub fn new(n: usize, k: usize) -> Result<Self, StatsError> {
        if k < 2 || k > n {
            return Err(StatsError::InvalidParameter {
                context: format!("k-fold requires 2 <= k <= n, got k={k}, n={n}"),
            });
        }
        Ok(KFold {
            n,
            k,
            inverted: false,
        })
    }

    /// Creates an inverted k-fold splitter: *train* on one fold and test on
    /// the other k−1, giving the paper's ≈1:(k−1) train:test ratio.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KFold::new`].
    pub fn inverted(n: usize, k: usize) -> Result<Self, StatsError> {
        let mut f = KFold::new(n, k)?;
        f.inverted = true;
        f.validate_min_fold().map(|_| f)
    }

    fn validate_min_fold(&self) -> Result<(), StatsError> {
        if self.n / self.k == 0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "inverted k-fold: folds of size 0 (n={}, k={})",
                    self.n, self.k
                ),
            });
        }
        Ok(())
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the `i`-th split.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn split(&self, i: usize) -> Split {
        assert!(i < self.k, "fold index out of range");
        let base = self.n / self.k;
        let rem = self.n % self.k;
        // Fold i covers [start, end): the first `rem` folds get one extra.
        let start = i * base + i.min(rem);
        let len = base + usize::from(i < rem);
        let end = start + len;
        let fold: Vec<usize> = (start..end).collect();
        let rest: Vec<usize> = (0..start).chain(end..self.n).collect();
        if self.inverted {
            Split {
                train: fold,
                test: rest,
            }
        } else {
            Split {
                train: rest,
                test: fold,
            }
        }
    }

    /// Iterates over all `k` splits.
    pub fn iter(&self) -> impl Iterator<Item = Split> + '_ {
        (0..self.k).map(move |i| self.split(i))
    }
}

/// Leave-runs-out splitter over whole application runs.
///
/// `run_bounds` gives, for each run, the half-open sample range
/// `[start, end)` it occupies in the concatenated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSplit {
    run_bounds: Vec<(usize, usize)>,
}

impl RunSplit {
    /// Creates a splitter from per-run sample ranges.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if fewer than two runs are
    /// supplied, or any range is empty or out of order.
    pub fn new(run_bounds: Vec<(usize, usize)>) -> Result<Self, StatsError> {
        if run_bounds.len() < 2 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "run split requires at least 2 runs, got {}",
                    run_bounds.len()
                ),
            });
        }
        let mut prev_end = 0;
        for &(s, e) in &run_bounds {
            if s >= e || s < prev_end {
                return Err(StatsError::InvalidParameter {
                    context: format!("invalid run range [{s}, {e})"),
                });
            }
            prev_end = e;
        }
        Ok(RunSplit { run_bounds })
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.run_bounds.len()
    }

    /// Split with runs `train_runs` as training data and every other run as
    /// test data.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `train_runs` is empty,
    /// covers all runs, or contains an out-of-range index.
    pub fn train_on_runs(&self, train_runs: &[usize]) -> Result<Split, StatsError> {
        if train_runs.is_empty() || train_runs.len() >= self.run_bounds.len() {
            return Err(StatsError::InvalidParameter {
                context: "train_on_runs: need at least one train run and one test run".into(),
            });
        }
        let mut is_train = vec![false; self.run_bounds.len()];
        for &r in train_runs {
            if r >= self.run_bounds.len() {
                return Err(StatsError::InvalidParameter {
                    context: format!("run index {r} out of range"),
                });
            }
            is_train[r] = true;
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (r, &(s, e)) in self.run_bounds.iter().enumerate() {
            let dst = if is_train[r] { &mut train } else { &mut test };
            dst.extend(s..e);
        }
        Ok(Split { train, test })
    }

    /// Iterates leave-one-run-in splits: for each run r, train on r alone
    /// and test on all others (the paper's small-train shape, per run).
    pub fn iter_train_single(&self) -> impl Iterator<Item = Split> + '_ {
        (0..self.run_bounds.len()).map(move |r| {
            self.train_on_runs(&[r])
                // chaos-lint: allow(R4) — r ranges over existing runs and
                // Splitter construction requires at least two runs.
                .expect("single-run split is always valid for >= 2 runs")
        })
    }
}

/// Runs a fit/score pair over every split, returning one score per split
/// in split order.
///
/// Each fold is an independent pure computation, so under
/// [`ExecPolicy::Parallel`] the folds run concurrently while the scores
/// stay bit-identical to serial execution (results are merged in split
/// order; errors surface as the lowest-index failure, exactly what a
/// serial loop would have hit first).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] (via `E: From<StatsError>`)
/// when `splits` is empty, [`StatsError::InvalidParameter`] when any
/// split has an empty train or test set, and otherwise the first
/// (lowest-index) error produced by `fit` or `score`.
///
/// # Example
///
/// ```
/// use chaos_stats::cv::{cross_validate, KFold, Split};
/// use chaos_stats::exec::ExecPolicy;
/// use chaos_stats::ols::OlsFit;
/// use chaos_stats::{Matrix, StatsError};
///
/// # fn main() -> Result<(), StatsError> {
/// // y = 1 + 2x with deterministic noise; score = test-set MSE.
/// let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs
///     .iter()
///     .map(|&x| 1.0 + 2.0 * x + ((x * 12.9898).sin() * 43758.5453).fract() * 0.1)
///     .collect();
/// let design = |idx: &[usize]| {
///     Matrix::from_rows(&idx.iter().map(|&i| vec![1.0, xs[i]]).collect::<Vec<_>>())
/// };
/// let fit = |s: &Split| OlsFit::fit(&design(&s.train)?, &s.train.iter().map(|&i| ys[i]).collect::<Vec<_>>());
/// let score = |m: &OlsFit, s: &Split| {
///     let preds = m.predict(&design(&s.test)?)?;
///     let mse = s.test.iter().zip(&preds).map(|(&i, p)| (ys[i] - p).powi(2)).sum::<f64>()
///         / s.test.len() as f64;
///     Ok(mse)
/// };
/// let splits: Vec<Split> = KFold::inverted(40, 4)?.iter().collect();
/// let serial = cross_validate(&splits, ExecPolicy::Serial, fit, score)?;
/// let parallel = cross_validate(&splits, ExecPolicy::Parallel { threads: 4 }, fit, score)?;
/// assert_eq!(serial, parallel); // bit-identical fold scores
/// assert_eq!(serial.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn cross_validate<M, E, Fit, Score>(
    splits: &[Split],
    policy: ExecPolicy,
    fit: Fit,
    score: Score,
) -> Result<Vec<f64>, E>
where
    E: Send + From<StatsError>,
    Fit: Fn(&Split) -> Result<M, E> + Sync,
    Score: Fn(&M, &Split) -> Result<f64, E> + Sync,
{
    if splits.is_empty() {
        return Err(E::from(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        }));
    }
    for (i, split) in splits.iter().enumerate() {
        if split.train.is_empty() || split.test.is_empty() {
            return Err(E::from(StatsError::InvalidParameter {
                context: format!("cross_validate: split {i} has an empty train or test set"),
            }));
        }
    }
    let _span = chaos_obs::span("cv.cross_validate");
    chaos_obs::add("cv.folds", splits.len() as u64);
    policy.try_par_map(splits, |split| {
        let model = fit(split)?;
        score(&model, split)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfold_partitions_exactly() {
        let kf = KFold::new(103, 5).unwrap();
        let mut seen = vec![0usize; 103];
        for split in kf.iter() {
            for &i in &split.test {
                seen[i] += 1;
            }
            assert_eq!(split.train.len() + split.test.len(), 103);
            // Train and test are disjoint.
            let mut all: Vec<usize> = split
                .train
                .iter()
                .chain(split.test.iter())
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 103);
        }
        assert!(seen.iter().all(|&c| c == 1), "each sample tested once");
    }

    #[test]
    fn kfold_standard_train_is_large() {
        let kf = KFold::new(100, 5).unwrap();
        let s = kf.split(0);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn kfold_inverted_matches_paper_ratio() {
        // Inverted 5-fold: train on 1/5, test on 4/5 → test is 4x train,
        // "about ten times smaller" in spirit (k can be raised for 10x).
        let kf = KFold::inverted(100, 5).unwrap();
        let s = kf.split(2);
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.test.len(), 80);
    }

    #[test]
    fn kfold_folds_are_contiguous() {
        let kf = KFold::new(10, 3).unwrap();
        let s = kf.split(1);
        let t = &s.test;
        for w in t.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn kfold_rejects_bad_k() {
        assert!(KFold::new(10, 1).is_err());
        assert!(KFold::new(3, 4).is_err());
        assert!(KFold::inverted(10, 1).is_err());
    }

    #[test]
    fn run_split_respects_run_boundaries() {
        let rs = RunSplit::new(vec![(0, 10), (10, 25), (25, 30)]).unwrap();
        let s = rs.train_on_runs(&[1]).unwrap();
        assert_eq!(s.train, (10..25).collect::<Vec<_>>());
        assert_eq!(s.test, (0..10).chain(25..30).collect::<Vec<_>>());
    }

    #[test]
    fn run_split_iter_single() {
        let rs = RunSplit::new(vec![(0, 5), (5, 9), (9, 14)]).unwrap();
        let splits: Vec<Split> = rs.iter_train_single().collect();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].train.len(), 5);
        assert_eq!(splits[0].test.len(), 9);
    }

    #[test]
    fn cross_validate_policies_are_bit_identical() {
        let ys: Vec<f64> = (0..60)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract())
            .collect();
        let fit = |s: &Split| {
            let mean = s.train.iter().map(|&i| ys[i]).sum::<f64>() / s.train.len() as f64;
            Ok::<f64, StatsError>(mean)
        };
        let score = |mean: &f64, s: &Split| {
            Ok(s.test.iter().map(|&i| (ys[i] - mean).powi(2)).sum::<f64>() / s.test.len() as f64)
        };
        let splits: Vec<Split> = KFold::inverted(60, 5).unwrap().iter().collect();
        let serial = cross_validate(&splits, ExecPolicy::Serial, fit, score).unwrap();
        for threads in [2, 4] {
            let par =
                cross_validate(&splits, ExecPolicy::Parallel { threads }, fit, score).unwrap();
            assert_eq!(serial, par);
        }
        assert_eq!(serial.len(), 5);
    }

    #[test]
    fn cross_validate_propagates_first_error() {
        let splits: Vec<Split> = KFold::new(10, 5).unwrap().iter().collect();
        let fit = |s: &Split| {
            if s.test[0] >= 4 {
                Err(StatsError::Singular)
            } else {
                Ok(0.0)
            }
        };
        let score = |_: &f64, _: &Split| Ok(1.0);
        let err = cross_validate(&splits, ExecPolicy::Parallel { threads: 4 }, fit, score);
        assert_eq!(err, Err(StatsError::Singular));
    }

    #[test]
    fn kfold_rejects_fewer_samples_than_folds() {
        // samples < folds must be a typed error, never a panic or a
        // silent batch of empty folds.
        let err = KFold::new(3, 5).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter { .. }), "{err}");
        let err = KFold::inverted(3, 5).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter { .. }), "{err}");
        assert!(matches!(
            KFold::new(0, 2),
            Err(StatsError::InvalidParameter { .. })
        ));
        // Boundary: k == n is legal (leave-one-out) and every fold is
        // non-empty.
        let kf = KFold::new(5, 5).unwrap();
        assert!(kf.iter().all(|s| !s.test.is_empty() && !s.train.is_empty()));
    }

    #[test]
    fn cross_validate_rejects_empty_split_list() {
        let fit = |_: &Split| Ok::<f64, StatsError>(0.0);
        let score = |_: &f64, _: &Split| Ok(0.0);
        let err = cross_validate(&[], ExecPolicy::Serial, fit, score).unwrap_err();
        assert!(matches!(err, StatsError::InsufficientData { .. }), "{err}");
    }

    #[test]
    fn cross_validate_rejects_empty_train_or_test() {
        let fit = |_: &Split| Ok::<f64, StatsError>(0.0);
        let score = |_: &f64, _: &Split| Ok(0.0);
        let degenerate = vec![Split {
            train: vec![0, 1],
            test: vec![],
        }];
        let err = cross_validate(&degenerate, ExecPolicy::Serial, fit, score).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter { .. }), "{err}");
        let degenerate = vec![Split {
            train: vec![],
            test: vec![0, 1],
        }];
        let err = cross_validate(&degenerate, ExecPolicy::Serial, fit, score).unwrap_err();
        assert!(matches!(err, StatsError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn run_split_rejects_invalid() {
        assert!(RunSplit::new(vec![(0, 5)]).is_err());
        assert!(RunSplit::new(vec![(0, 5), (4, 8)]).is_err());
        assert!(RunSplit::new(vec![(0, 0), (0, 5)]).is_err());
        let rs = RunSplit::new(vec![(0, 5), (5, 9)]).unwrap();
        assert!(rs.train_on_runs(&[]).is_err());
        assert!(rs.train_on_runs(&[0, 1]).is_err());
        assert!(rs.train_on_runs(&[7]).is_err());
    }
}
