//! Descriptive statistics: means, variances, quantiles.
//!
//! These helpers are used throughout the pipeline — for standardizing
//! features before the lasso, for choosing MARS knot candidates from data
//! quantiles, and for characterizing power traces (idle/max power for the
//! DRE denominator).

/// Arithmetic mean of `xs`. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n − 1` denominator).
///
/// Returns `0.0` for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population (biased, `n` denominator) standard deviation.
///
/// Used when standardizing design-matrix columns, where the scale factor
/// convention does not matter as long as it is applied consistently.
pub fn std_dev_population(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum of `xs`, ignoring NaNs. Returns `f64::INFINITY` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum of `xs`, ignoring NaNs. Returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The `q`-quantile of `xs` (`0 ≤ q ≤ 1`) using linear interpolation
/// between order statistics (type-7, the R default).
///
/// Returns `f64::NAN` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0, 1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    // chaos-lint: allow(R4) — documented contract: quantile inputs are
    // residuals/powers already validated finite by their producers.
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (the 0.5 [`quantile`]).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_known() {
        // Var of 2, 4, 4, 4, 5, 5, 7, 9 = 4.571428... (sample, n-1).
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn std_dev_population_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev_population(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [3.0, f64::NAN, -1.0, 7.5];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile q must be in")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }
}
