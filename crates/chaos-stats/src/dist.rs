//! Probability distribution helpers used by the significance tests.
//!
//! The stepwise regression in Algorithm 1 drops features whose Wald
//! statistic shows low confidence that the coefficient differs from zero.
//! With thousands of one-second samples per run, the normal approximation
//! to the Wald statistic's distribution is exact for practical purposes,
//! so this module provides the standard normal CDF (via a high-accuracy
//! `erf` approximation) and the derived two-sided p-value.

/// The error function `erf(x)`, accurate to about `1.2e-7` absolute error.
///
/// Uses the rational Chebyshev approximation of the complementary error
/// function from Numerical Recipes (Press et al.), which is more than
/// accurate enough for significance thresholds of 0.01–0.10.
///
/// # Example
///
/// ```
/// let v = chaos_stats::dist::erf(1.0);
/// assert!((v - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// # Example
///
/// ```
/// assert!((chaos_stats::dist::normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a Wald z-statistic: `P(|Z| > |z|)` under the
/// standard normal distribution.
///
/// # Example
///
/// ```
/// // |z| = 1.96 is the classic 5% two-sided threshold.
/// let p = chaos_stats::dist::wald_p_value(1.96);
/// assert!((p - 0.05).abs() < 1e-3);
/// ```
pub fn wald_p_value(z: f64) -> f64 {
    if !z.is_finite() {
        return 0.0;
    }
    2.0 * normal_cdf(-z.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (1.5, 0.9661051),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (-3.0, 0.0013499),
            (-1.959964, 0.025),
            (-1.0, 0.1586553),
            (0.0, 0.5),
            (1.0, 0.8413447),
            (1.644854, 0.95),
            (3.0, 0.9986501),
        ];
        for (x, want) in cases {
            assert!((normal_cdf(x) - want).abs() < 2e-6, "Phi({x})");
        }
    }

    #[test]
    fn normal_cdf_monotone() {
        let mut prev = normal_cdf(-5.0);
        let mut x = -5.0;
        while x < 5.0 {
            x += 0.25;
            let cur = normal_cdf(x);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn wald_p_value_bounds_and_symmetry() {
        // The erfc approximation is accurate to ~1.2e-7, so p(0) ≈ 1.
        assert!((wald_p_value(0.0) - 1.0).abs() < 1e-6);
        assert!(wald_p_value(10.0) < 1e-20);
        assert_eq!(wald_p_value(2.5), wald_p_value(-2.5));
        assert_eq!(wald_p_value(f64::INFINITY), 0.0);
        assert_eq!(wald_p_value(f64::NAN), 0.0);
    }
}
