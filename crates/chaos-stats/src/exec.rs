//! Deterministic execution policies for the embarrassingly parallel
//! stages of the CHAOS pipeline.
//!
//! CHAOS composes a cluster model as a sum of independent per-machine
//! models (Eq. 5), so per-machine fits, cross-validation folds (Eq. 6),
//! sweep grid cells and fault-sweep points are all pure functions of
//! their inputs. [`ExecPolicy`] makes that structure explicit: every
//! parallel entry point in the workspace takes a policy, and
//! [`ExecPolicy::Serial`] and [`ExecPolicy::Parallel`] are guaranteed to
//! produce *bit-identical* results because
//!
//! 1. each work item is a pure function of its index alone,
//! 2. results are merged back into index order before anything reads
//!    them, and
//! 3. every floating-point reduction happens over the ordered, merged
//!    sequence — never in thread-completion order.
//!
//! The scheduler is a scoped-thread fan-out with an atomic work-stealing
//! counter: no external dependencies, no work queues, no channels.
//!
//! # Example
//!
//! ```
//! use chaos_stats::exec::ExecPolicy;
//!
//! let serial = ExecPolicy::Serial.par_map_indices(100, |i| (i as f64).sqrt());
//! let parallel = ExecPolicy::Parallel { threads: 4 }.par_map_indices(100, |i| (i as f64).sqrt());
//! assert_eq!(serial, parallel); // bit-identical, not just approximately equal
//! ```

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// How a batch of independent work items is executed.
///
/// The two modes are interchangeable by construction: callers only ever
/// observe results in item order, so switching policies never changes a
/// single bit of the output (see the [module docs](self) for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecPolicy {
    /// Run every item on the calling thread, in index order.
    #[default]
    Serial,
    /// Fan items out over `threads` scoped worker threads.
    ///
    /// `threads == 0` means "use all available cores" and `threads == 1`
    /// degenerates to [`ExecPolicy::Serial`] behavior.
    Parallel {
        /// Number of worker threads (`0` = all available cores).
        threads: usize,
    },
}

impl ExecPolicy {
    /// Picks a policy from the machine: parallel over all cores when more
    /// than one is available, serial otherwise.
    pub fn auto() -> Self {
        match thread::available_parallelism() {
            Ok(n) if n.get() > 1 => ExecPolicy::Parallel { threads: n.get() },
            _ => ExecPolicy::Serial,
        }
    }

    /// Reads the policy from the `CHAOS_THREADS` environment variable.
    ///
    /// * unset, empty or `auto` → [`ExecPolicy::auto`]
    /// * `serial`, `0` or `1` → [`ExecPolicy::Serial`]
    /// * any other integer `n` → `Parallel { threads: n }`
    /// * anything unparsable → [`ExecPolicy::Serial`]
    pub fn from_env() -> Self {
        match std::env::var("CHAOS_THREADS") {
            Err(_) => ExecPolicy::auto(),
            Ok(v) => match v.trim() {
                "" | "auto" => ExecPolicy::auto(),
                "serial" | "0" | "1" => ExecPolicy::Serial,
                other => match other.parse::<usize>() {
                    Ok(n) => ExecPolicy::Parallel { threads: n },
                    Err(_) => ExecPolicy::Serial,
                },
            },
        }
    }

    /// Whether this policy fans work out over more than one thread.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// The number of worker threads this policy resolves to (1 for
    /// serial execution).
    pub fn threads(&self) -> usize {
        match *self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { threads: 0 } => thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ExecPolicy::Parallel { threads } => threads,
        }
    }

    /// Maps `f` over `0..n` and returns the results in index order.
    ///
    /// `f` must be pure: under a parallel policy it runs concurrently on
    /// worker threads in an unspecified order.
    pub fn par_map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads().min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        // Per-worker item counts feed the work-stealing balance metrics;
        // only collected when observability is on.
        let track = chaos_obs::enabled();
        let worker_items: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);
        let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    if track {
                        worker_items
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(local.len());
                    }
                    merged
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                });
            }
        });
        if track {
            chaos_obs::add("exec.parallel_batches", 1);
            chaos_obs::add("exec.items", n as u64);
            let items = worker_items
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for count in items {
                chaos_obs::record("exec.worker_items", count as u64);
                // 1000 = perfectly even split across workers; 0 = a worker
                // that never won a steal.
                chaos_obs::record(
                    "exec.worker_share_permille",
                    (count * workers * 1000 / n) as u64,
                );
            }
        }
        let mut pairs = merged
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps a fallible `f` over `0..n`; on failure returns the error with
    /// the *lowest index* — exactly the error serial execution would have
    /// stopped at first.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index error produced by `f`, if any.
    pub fn try_par_map_indices<R, E, F>(&self, n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        let mut out = Vec::with_capacity(n);
        for item in self.par_map_indices(n, f) {
            out.push(item?);
        }
        Ok(out)
    }

    /// Maps `f` over a slice, returning results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indices(items.len(), |i| f(&items[i]))
    }

    /// Maps a fallible `f` over a slice; on failure returns the
    /// lowest-index error, matching serial first-error semantics.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index error produced by `f`, if any.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.try_par_map_indices(items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over a mutable slice in place, returning the per-item
    /// results in item order.
    ///
    /// This is the sharding primitive for stateful work: each item owns
    /// mutable state (e.g. one streaming engine per machine in
    /// `chaos-serve`) and `f` advances it. The slice is split into
    /// contiguous chunks, one per worker, so item `i` is always processed
    /// by exactly one thread and results are merged back in chunk — i.e.
    /// index — order. Because `f` only sees one item at a time, the
    /// output is bit-identical across thread counts for any `f` that is
    /// a pure function of the item it receives.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads().min(n);
        if workers <= 1 {
            // chaos-lint: allow(R6) — the API returns an owned result vector; one output allocation per call, not per item
            return items.iter_mut().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &f;
        // chaos-lint: allow(R6) — per-parallel-region scaffolding (chunk partitions, spawn handles, per-chunk result
        // collection and joins), bounded by the worker count and amortized across the whole batch
        let chunked: Vec<Vec<R>> = thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .map(|part| scope.spawn(move || part.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(results) => results,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        if chaos_obs::enabled() {
            chaos_obs::add("exec.parallel_batches", 1);
            chaos_obs::add("exec.items", n as u64);
        }
        // chaos-lint: allow(R6) — single merge of per-chunk results into the owned output vector
        let mut out = Vec::with_capacity(n);
        for part in chunked {
            // chaos-lint: allow(R6) — extends into the preallocated output above
            out.extend(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let f = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract();
        let serial = ExecPolicy::Serial.par_map_indices(257, f);
        for threads in [2, 3, 4, 8] {
            let par = ExecPolicy::Parallel { threads }.par_map_indices(257, f);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let p = ExecPolicy::Parallel { threads: 4 };
        assert_eq!(p.par_map_indices(0, |i| i), Vec::<usize>::new());
        assert_eq!(p.par_map_indices(1, |i| i * 10), vec![0]);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let f = |i: usize| if i % 5 == 3 { Err(i) } else { Ok(i) };
        let serial = ExecPolicy::Serial.try_par_map_indices(100, f);
        let par = ExecPolicy::Parallel { threads: 8 }.try_par_map_indices(100, f);
        assert_eq!(serial, Err(3));
        assert_eq!(par, Err(3));
    }

    #[test]
    fn try_map_success_round_trips() {
        let f = |i: usize| Ok::<_, ()>(i * i);
        let got = ExecPolicy::Parallel { threads: 3 }
            .try_par_map_indices(20, f)
            .unwrap();
        assert_eq!(got, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn slice_variants_preserve_order() {
        let items: Vec<f64> = (0..64).map(|i| i as f64 / 7.0).collect();
        let serial = ExecPolicy::Serial.par_map(&items, |x| x.exp());
        let par = ExecPolicy::Parallel { threads: 4 }.par_map(&items, |x| x.exp());
        assert_eq!(serial, par);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(ExecPolicy::Serial.threads(), 1);
        assert!(!ExecPolicy::Serial.is_parallel());
        assert_eq!(ExecPolicy::Parallel { threads: 4 }.threads(), 4);
        assert!(ExecPolicy::Parallel { threads: 4 }.is_parallel());
        assert!(ExecPolicy::Parallel { threads: 0 }.threads() >= 1);
        assert!(!ExecPolicy::Parallel { threads: 1 }.is_parallel());
    }

    #[test]
    fn parallel_batches_record_worker_metrics_when_enabled() {
        chaos_obs::set_level(chaos_obs::ObsLevel::Summary);
        let out = ExecPolicy::Parallel { threads: 4 }.par_map_indices(64, |i| i * 2);
        chaos_obs::set_level(chaos_obs::ObsLevel::Off);
        assert_eq!(out.len(), 64);
        // Other tests may run batches concurrently while the level is on,
        // so assert lower bounds only.
        assert!(chaos_obs::counters()
            .iter()
            .any(|(n, v)| n == "exec.items" && *v >= 64));
        let hists = chaos_obs::histograms();
        let (_, h) = hists
            .iter()
            .find(|(n, _)| n == "exec.worker_items")
            .expect("worker items histogram registered");
        assert!(h.count >= 1);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_preserves_order() {
        let base: Vec<f64> = (0..97).map(|i| i as f64 / 13.0).collect();
        let mut serial = base.clone();
        let serial_out = ExecPolicy::Serial.par_map_mut(&mut serial, |x| {
            *x = x.sin();
            x.to_bits()
        });
        for threads in [2, 3, 4, 8] {
            let mut par = base.clone();
            let par_out = ExecPolicy::Parallel { threads }.par_map_mut(&mut par, |x| {
                *x = x.sin();
                x.to_bits()
            });
            assert_eq!(serial, par, "state, threads = {threads}");
            assert_eq!(serial_out, par_out, "results, threads = {threads}");
        }
    }

    #[test]
    fn par_map_mut_empty_and_singleton() {
        let p = ExecPolicy::Parallel { threads: 4 };
        let mut empty: Vec<usize> = Vec::new();
        assert_eq!(p.par_map_mut(&mut empty, |x| *x), Vec::<usize>::new());
        let mut one = vec![41usize];
        assert_eq!(
            p.par_map_mut(&mut one, |x| {
                *x += 1;
                *x
            }),
            vec![42]
        );
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn par_map_mut_more_threads_than_items() {
        let mut items: Vec<usize> = (0..3).collect();
        let out = ExecPolicy::Parallel { threads: 16 }.par_map_mut(&mut items, |x| *x * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn auto_is_valid_policy() {
        // Whatever the host looks like, auto() must resolve to >= 1 thread.
        assert!(ExecPolicy::auto().threads() >= 1);
    }

    #[test]
    fn serde_round_trip() {
        for p in [
            ExecPolicy::Serial,
            ExecPolicy::Parallel { threads: 4 },
            ExecPolicy::default(),
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: ExecPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
