//! Memoizing Gram-matrix cache for repeated least-squares fits on
//! column subsets of one fixed design matrix.
//!
//! Backward stepwise elimination (Algorithm 1, steps 4 and 6) refits OLS
//! once per eliminated feature, and every refit of a *subset* reuses
//! inner products the full design already paid for. [`GramCache`]
//! computes the augmented cross-product matrix `X'X` (with an implicit
//! intercept column) and `X'y` exactly once, then answers each subset
//! fit from those cached products via a Cholesky solve, memoized by a
//! feature-subset bitmask — the same keying idea the robust estimator
//! uses for its reduced-model cache.
//!
//! The normal-equation solve agrees with the QR path of
//! [`OlsFit::fit`](crate::ols::OlsFit::fit) to roughly `1e-8` on
//! realistically conditioned counter data (both are exact in exact
//! arithmetic; they differ only in floating-point rounding). The
//! stepwise driver [`crate::stepwise::backward_eliminate_cached`] is the
//! intended consumer.

use crate::matrix::Matrix;
use crate::ols::OlsFit;
use crate::StatsError;
use std::collections::HashMap;

/// Relative pivot tolerance for the Cholesky factorization: a pivot
/// smaller than this fraction of its original diagonal entry marks the
/// subset as rank-deficient.
const CHOLESKY_REL_TOL: f64 = 1e-12;

/// Cached cross-products of one design matrix, serving memoized OLS fits
/// for arbitrary column subsets.
///
/// The design is augmented with an intercept column internally, so
/// callers pass *feature* matrices (no column of ones), matching how the
/// selection pipeline builds per-machine designs.
///
/// # Example
///
/// ```
/// use chaos_stats::{gram::GramCache, Matrix};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // y = 1 + 2·x0, with x1 pure noise.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.3], vec![1.0, -0.4], vec![2.0, 0.1],
///     vec![3.0, -0.2], vec![4.0, 0.5],
/// ])?;
/// let y = [1.0, 3.0, 5.0, 7.0, 9.0];
/// let mut cache = GramCache::new(&x, &y)?;
/// let fit = cache.fit_subset(&[0])?; // intercept + x0 only
/// assert!((fit.coefficients()[0] - 1.0).abs() < 1e-9);
/// assert!((fit.coefficients()[1] - 2.0).abs() < 1e-9);
/// let _ = cache.fit_subset(&[0])?; // answered from the memo
/// assert_eq!(cache.hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GramCache {
    /// Augmented Gram matrix over `[1 | X]`, so entry `(0, 0)` is `n` and
    /// entry `(i + 1, j + 1)` is `xᵢ·xⱼ`. Row-major `(p+1)×(p+1)`.
    gram: Vec<f64>,
    /// `[1 | X]'y`; entry 0 is `Σy`.
    xty: Vec<f64>,
    /// `y'y`.
    yty: f64,
    n: usize,
    p: usize,
    memo: HashMap<Vec<u64>, Result<OlsFit, StatsError>>,
    hits: usize,
    misses: usize,
}

impl GramCache {
    /// Precomputes the augmented cross products of `x` (feature columns
    /// only — the intercept is added internally) against `y`.
    ///
    /// Cost is `O(n·p²)` once; every subsequent subset fit is `O(k³)` in
    /// the subset size `k`, independent of `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn new(x: &Matrix, y: &[f64]) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("gram: y has {} entries, X has {n} rows", y.len()),
            });
        }
        let d = p + 1;
        let mut gram = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let mut yty = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            let row = x.row(i);
            gram[0] += 1.0;
            xty[0] += yi;
            yty += yi * yi;
            for (a, &va) in row.iter().enumerate() {
                gram[a + 1] += va; // intercept × feature column
                xty[a + 1] += va * yi;
                for (b, &vb) in row.iter().enumerate().skip(a) {
                    gram[(a + 1) * d + (b + 1)] += va * vb;
                }
            }
        }
        // Mirror the upper triangle (intercept row was filled above).
        for a in 0..d {
            for b in (a + 1)..d {
                gram[b * d + a] = gram[a * d + b];
            }
        }
        Ok(GramCache {
            gram,
            xty,
            yty,
            n,
            p,
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    }

    /// Number of observations in the cached design.
    pub fn n_observations(&self) -> usize {
        self.n
    }

    /// Number of feature columns (excluding the implicit intercept).
    pub fn n_features(&self) -> usize {
        self.p
    }

    /// Memo hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Memo misses (actual solves) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Fits `y ≈ β₀ + Σ βⱼ·x[:, selected[j]]` from the cached cross
    /// products, memoized by the subset bitmask.
    ///
    /// Coefficient 0 is the intercept; coefficient `j + 1` belongs to
    /// `selected[j]`, matching the layout of
    /// [`OlsFit::fit`](crate::ols::OlsFit::fit) on
    /// `x.select_cols(selected).with_intercept()`-style designs.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if a selected index is out of
    ///   range or repeated.
    /// * [`StatsError::InsufficientData`] if `n ≤ k` for subset size `k`
    ///   (including the intercept).
    /// * [`StatsError::Singular`] if the subset's Gram matrix is not
    ///   positive definite.
    pub fn fit_subset(&mut self, selected: &[usize]) -> Result<OlsFit, StatsError> {
        let key = self.subset_key(selected)?;
        if let Some(cached) = self.memo.get(&key) {
            self.hits += 1;
            chaos_obs::add("gram.hits", 1);
            return cached.clone();
        }
        self.misses += 1;
        chaos_obs::add("gram.misses", 1);
        let result = self.solve_subset(selected);
        self.memo.insert(key, result.clone());
        result
    }

    /// Encodes the subset as a bitmask, validating indices.
    fn subset_key(&self, selected: &[usize]) -> Result<Vec<u64>, StatsError> {
        let mut key = vec![0u64; self.p / 64 + 1];
        for &c in selected {
            if c >= self.p {
                return Err(StatsError::InvalidParameter {
                    context: format!("gram subset: column {c} out of range (p = {})", self.p),
                });
            }
            let (word, bit) = (c / 64, c % 64);
            if key[word] & (1 << bit) != 0 {
                return Err(StatsError::InvalidParameter {
                    context: format!("gram subset: column {c} repeated"),
                });
            }
            key[word] |= 1 << bit;
        }
        Ok(key)
    }

    fn solve_subset(&self, selected: &[usize]) -> Result<OlsFit, StatsError> {
        let d = self.p + 1;
        let k = selected.len() + 1; // + intercept
        if self.n <= k {
            return Err(StatsError::InsufficientData {
                observations: self.n,
                required: k + 1,
            });
        }
        // Gather the subset's Gram matrix and right-hand side. Index 0 is
        // the intercept, indices 1.. are the selected features in order.
        let aug: Vec<usize> = std::iter::once(0)
            .chain(selected.iter().map(|&c| c + 1))
            .collect();
        let mut a = vec![0.0; k * k];
        let mut b = vec![0.0; k];
        for (i, &ai) in aug.iter().enumerate() {
            b[i] = self.xty[ai];
            for (j, &aj) in aug.iter().enumerate() {
                a[i * k + j] = self.gram[ai * d + aj];
            }
        }
        let chol = cholesky(&a, k)?;
        let beta = chol_solve(&chol, k, &b);

        // RSS from cached products: y'y − 2β'X'y + β'(X'X)β.
        let mut quad = 0.0;
        for i in 0..k {
            let mut row = 0.0;
            for j in 0..k {
                row += a[i * k + j] * beta[j];
            }
            quad += beta[i] * row;
        }
        let dot_by: f64 = beta.iter().zip(&b).map(|(bi, yi)| bi * yi).sum();
        let rss = (self.yty - 2.0 * dot_by + quad).max(0.0);
        let residual_variance = rss / (self.n - k) as f64;

        // Diagonal of (X'X)⁻¹ for the standard errors.
        let mut std_errors = vec![0.0; k];
        for (j, se) in std_errors.iter_mut().enumerate() {
            let mut e = vec![0.0; k];
            e[j] = 1.0;
            let z = chol_solve(&chol, k, &e);
            *se = (residual_variance * z[j]).max(0.0).sqrt();
        }

        let mean_y = self.xty[0] / self.n as f64;
        let tss = (self.yty - self.n as f64 * mean_y * mean_y).max(0.0);
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        Ok(OlsFit::from_parts(
            beta,
            std_errors,
            residual_variance,
            self.n,
            r_squared,
        ))
    }
}

/// Cholesky factorization `A = L·L'` of a symmetric `k×k` matrix in
/// row-major storage, with a relative pivot tolerance.
fn cholesky(a: &[f64], k: usize) -> Result<Vec<f64>, StatsError> {
    let mut l = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut s = a[i * k + j];
            for t in 0..j {
                s -= l[i * k + t] * l[j * k + t];
            }
            if i == j {
                let tol = CHOLESKY_REL_TOL * a[i * k + i].abs();
                if s <= tol || !s.is_finite() {
                    return Err(StatsError::Singular);
                }
                l[i * k + i] = s.sqrt();
            } else {
                l[i * k + j] = s / l[j * k + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L·L'·x = b` by forward and back substitution.
fn chol_solve(l: &[f64], k: usize, b: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; k];
    for i in 0..k {
        let mut s = b[i];
        for t in 0..i {
            s -= l[i * k + t] * w[t];
        }
        w[i] = s / l[i * k + i];
    }
    let mut x = vec![0.0; k];
    for i in (0..k).rev() {
        let mut s = w[i];
        for t in (i + 1)..k {
            s -= l[t * k + i] * x[t];
        }
        x[i] = s / l[i * k + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, p: usize) -> (Matrix, Vec<f64>) {
        let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..p).map(|j| det(i * p + j + 1) * 10.0).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 + 1.5 * r[0] - 0.7 * r[1 % p] + 0.05 * det(i * 31 + 7))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    /// QR fit of `x.select_cols(keep)` with an explicit intercept column.
    fn qr_reference(x: &Matrix, y: &[f64], keep: &[usize]) -> OlsFit {
        OlsFit::fit(&x.select_cols(keep).with_intercept(), y).unwrap()
    }

    #[test]
    fn agrees_with_qr_on_subsets() {
        let (x, y) = synthetic(120, 5);
        let mut cache = GramCache::new(&x, &y).unwrap();
        for keep in [vec![0], vec![0, 1], vec![0, 1, 2, 3, 4], vec![2, 4]] {
            let gram_fit = cache.fit_subset(&keep).unwrap();
            let qr_fit = qr_reference(&x, &y, &keep);
            for (g, q) in gram_fit.coefficients().iter().zip(qr_fit.coefficients()) {
                assert!((g - q).abs() < 1e-8, "coef {g} vs {q} for {keep:?}");
            }
            for (g, q) in gram_fit.std_errors().iter().zip(qr_fit.std_errors()) {
                assert!((g - q).abs() < 1e-6, "se {g} vs {q} for {keep:?}");
            }
            assert!((gram_fit.r_squared() - qr_fit.r_squared()).abs() < 1e-8);
            assert!(
                (gram_fit.residual_variance() - qr_fit.residual_variance()).abs()
                    < 1e-6 * (1.0 + qr_fit.residual_variance())
            );
        }
    }

    #[test]
    fn memoizes_repeat_subsets() {
        let (x, y) = synthetic(60, 4);
        let mut cache = GramCache::new(&x, &y).unwrap();
        cache.fit_subset(&[0, 1]).unwrap();
        cache.fit_subset(&[0, 1]).unwrap();
        cache.fit_subset(&[1, 0]).unwrap(); // same mask, different order
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn rejects_duplicate_columns_and_bad_indices() {
        let (x, y) = synthetic(30, 3);
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 0]),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            cache.fit_subset(&[7]),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn detects_rank_deficiency() {
        // Column 1 duplicates column 0 exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..20).map(|i| 1.0 + i as f64).collect();
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 1]),
            Err(StatsError::Singular)
        ));
        assert!(cache.fit_subset(&[0]).is_ok());
    }

    #[test]
    fn insufficient_data_matches_ols_contract() {
        let (x, y) = synthetic(3, 4);
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 1, 2]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mismatched_y_rejected() {
        let (x, _) = synthetic(10, 2);
        assert!(GramCache::new(&x, &[1.0, 2.0]).is_err());
    }
}
