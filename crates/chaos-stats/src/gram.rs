//! Memoizing Gram-matrix cache for repeated least-squares fits on
//! column subsets of one fixed design matrix.
//!
//! Backward stepwise elimination (Algorithm 1, steps 4 and 6) refits OLS
//! once per eliminated feature, and every refit of a *subset* reuses
//! inner products the full design already paid for. [`GramCache`]
//! computes the augmented cross-product matrix `X'X` (with an implicit
//! intercept column) and `X'y` exactly once, then answers each subset
//! fit from those cached products via a Cholesky solve, memoized by a
//! feature-subset bitmask — the same keying idea the robust estimator
//! uses for its reduced-model cache.
//!
//! The normal-equation solve agrees with the QR path of
//! [`OlsFit::fit`](crate::ols::OlsFit::fit) to roughly `1e-8` on
//! realistically conditioned counter data (both are exact in exact
//! arithmetic; they differ only in floating-point rounding). The
//! stepwise driver [`crate::stepwise::backward_eliminate_cached`] is the
//! intended consumer.
//!
//! For the *streaming* path, [`CholeskyFactor`] exposes the same
//! factorization as a maintained object supporting rank-1 update and
//! downdate in `O(k²)`, so a sliding-window fit
//! ([`WindowedOls`](crate::ols::WindowedOls)) never refactorizes from
//! scratch while the window slides.

use crate::matrix::Matrix;
use crate::ols::OlsFit;
use crate::StatsError;
use std::collections::HashMap;

/// Relative pivot tolerance for the Cholesky factorization: a pivot
/// smaller than this fraction of its original diagonal entry marks the
/// subset as rank-deficient.
const CHOLESKY_REL_TOL: f64 = 1e-12;

/// Default sample-block tile for the blocked Gram accumulation. A tile
/// of rows (`GRAM_TILE × p` doubles) fits L1 for realistic counter
/// widths, so each Gram entry is read and written once per tile instead
/// of once per sample.
pub const GRAM_TILE: usize = 64;

/// Cached cross-products of one design matrix, serving memoized OLS fits
/// for arbitrary column subsets.
///
/// The design is augmented with an intercept column internally, so
/// callers pass *feature* matrices (no column of ones), matching how the
/// selection pipeline builds per-machine designs.
///
/// # Example
///
/// ```
/// use chaos_stats::{gram::GramCache, Matrix};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // y = 1 + 2·x0, with x1 pure noise.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.3], vec![1.0, -0.4], vec![2.0, 0.1],
///     vec![3.0, -0.2], vec![4.0, 0.5],
/// ])?;
/// let y = [1.0, 3.0, 5.0, 7.0, 9.0];
/// let mut cache = GramCache::new(&x, &y)?;
/// let fit = cache.fit_subset(&[0])?; // intercept + x0 only
/// assert!((fit.coefficients()[0] - 1.0).abs() < 1e-9);
/// assert!((fit.coefficients()[1] - 2.0).abs() < 1e-9);
/// let _ = cache.fit_subset(&[0])?; // answered from the memo
/// assert_eq!(cache.hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GramCache {
    /// Augmented Gram matrix over `[1 | X]`, so entry `(0, 0)` is `n` and
    /// entry `(i + 1, j + 1)` is `xᵢ·xⱼ`. Row-major `(p+1)×(p+1)`.
    gram: Vec<f64>,
    /// `[1 | X]'y`; entry 0 is `Σy`.
    xty: Vec<f64>,
    /// `y'y`.
    yty: f64,
    n: usize,
    p: usize,
    memo: HashMap<Vec<u64>, Result<OlsFit, StatsError>>,
    hits: usize,
    misses: usize,
}

impl GramCache {
    /// Precomputes the augmented cross products of `x` (feature columns
    /// only — the intercept is added internally) against `y`.
    ///
    /// Cost is `O(n·p²)` once; every subsequent subset fit is `O(k³)` in
    /// the subset size `k`, independent of `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn new(x: &Matrix, y: &[f64]) -> Result<Self, StatsError> {
        Self::new_with_tile(x, y, GRAM_TILE)
    }

    /// [`GramCache::new`] with an explicit sample-block tile size.
    ///
    /// The accumulation is *blocked*: samples are processed in tiles of
    /// `tile` rows, and within a tile each Gram entry is accumulated in
    /// a register starting from its current value, so the `d×d` Gram
    /// matrix is streamed through cache once per tile instead of once
    /// per sample. Every entry still receives its per-sample additions
    /// in the exact global row order `0..n` — the same left-to-right
    /// floating-point reduction the naive row-at-a-time loop performs —
    /// so results are **bit-identical at every tile size** (pinned by
    /// `tests/kernel_identity.rs`). This is the form of cache blocking
    /// chaos-lint's ordered-reduction invariant permits; reassociating
    /// into per-tile partial sums would not be.
    ///
    /// `tile` is clamped to at least 1. Exposed for the kernel-identity
    /// suite and the kernel benchmarks; [`GramCache::new`] uses
    /// [`GRAM_TILE`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn new_with_tile(x: &Matrix, y: &[f64], tile: usize) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("gram: y has {} entries, X has {n} rows", y.len()),
            });
        }
        let d = p + 1;
        let mut gram = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let mut yty = 0.0;
        let tile = tile.max(1);
        // Scratch accumulators for one Gram row's upper-triangle slice;
        // held out of `gram` across a whole tile so every add lands in
        // registers / L1 instead of the full d×d matrix.
        let mut acc = vec![0.0; p.max(1)];
        let mut lo = 0;
        while lo < n {
            let hi = (lo + tile).min(n);
            // Intercept block: sample count, Σy, Σy².
            {
                // chaos-lint: allow(R4) — d = ncols + 1 >= 1 always, so
                // the intercept slot exists.
                let mut g0 = gram[0];
                // chaos-lint: allow(R4) — same d >= 1 invariant.
                let mut x0 = xty[0];
                let mut s_yy = yty;
                for &yi in &y[lo..hi] {
                    g0 += 1.0;
                    x0 += yi;
                    s_yy += yi * yi;
                }
                // chaos-lint: allow(R4) — same d >= 1 invariant.
                gram[0] = g0;
                // chaos-lint: allow(R4) — same d >= 1 invariant.
                xty[0] = x0;
                yty = s_yy;
            }
            for a in 0..p {
                // Intercept × feature column and X'y entry as register
                // scalars; the Gram row's upper triangle `(a, a..p)` in
                // the scratch accumulators. Each tile row is then read
                // once, with a contiguous `row[a..p]` inner sweep whose
                // accumulators are independent — the compiler may
                // vectorize *across entries* freely, because no single
                // entry's per-sample addition order changes: entry
                // (a, b) still receives its additions in the exact
                // global row order `0..n` the reference kernel uses.
                let mut s_col = gram[a + 1];
                let mut s_xty = xty[a + 1];
                let e0 = (a + 1) * d + (a + 1);
                let width = p - a;
                let acc = &mut acc[..width];
                acc.copy_from_slice(&gram[e0..e0 + width]);
                for i in lo..hi {
                    let row = x.row(i);
                    let va = row[a];
                    s_col += va;
                    s_xty += va * y[i];
                    for (dst, &vb) in acc.iter_mut().zip(&row[a..p]) {
                        *dst += va * vb;
                    }
                }
                gram[a + 1] = s_col;
                xty[a + 1] = s_xty;
                gram[e0..e0 + width].copy_from_slice(acc);
            }
            lo = hi;
        }
        // Mirror the upper triangle (intercept row was filled above).
        for a in 0..d {
            for b in (a + 1)..d {
                gram[b * d + a] = gram[a * d + b];
            }
        }
        Ok(GramCache {
            gram,
            xty,
            yty,
            n,
            p,
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    }

    /// Reference row-at-a-time accumulation: the pre-blocking kernel,
    /// kept verbatim so the kernel-identity suite and benches can pin
    /// [`GramCache::new_with_tile`] against it bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    pub fn new_reference(x: &Matrix, y: &[f64]) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("gram: y has {} entries, X has {n} rows", y.len()),
            });
        }
        let d = p + 1;
        let mut gram = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let mut yty = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            let row = x.row(i);
            // chaos-lint: allow(R4) — d = ncols + 1 >= 1 always, so the
            // intercept slot exists.
            gram[0] += 1.0;
            // chaos-lint: allow(R4) — same d >= 1 invariant.
            xty[0] += yi;
            yty += yi * yi;
            for (a, &va) in row.iter().enumerate() {
                gram[a + 1] += va; // intercept × feature column
                xty[a + 1] += va * yi;
                for (b, &vb) in row.iter().enumerate().skip(a) {
                    gram[(a + 1) * d + (b + 1)] += va * vb;
                }
            }
        }
        // Mirror the upper triangle (intercept row was filled above).
        for a in 0..d {
            for b in (a + 1)..d {
                gram[b * d + a] = gram[a * d + b];
            }
        }
        Ok(GramCache {
            gram,
            xty,
            yty,
            n,
            p,
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    }

    /// Raw accumulated cross products `(gram, xty, yty)` — the
    /// kernel-identity suite compares these bit-for-bit between the
    /// blocked and reference accumulations.
    pub fn products(&self) -> (&[f64], &[f64], f64) {
        (&self.gram, &self.xty, self.yty)
    }

    /// Number of observations in the cached design.
    pub fn n_observations(&self) -> usize {
        self.n
    }

    /// Number of feature columns (excluding the implicit intercept).
    pub fn n_features(&self) -> usize {
        self.p
    }

    /// Memo hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Memo misses (actual solves) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Fits `y ≈ β₀ + Σ βⱼ·x[:, selected[j]]` from the cached cross
    /// products, memoized by the subset bitmask.
    ///
    /// Coefficient 0 is the intercept; coefficient `j + 1` belongs to
    /// `selected[j]`, matching the layout of
    /// [`OlsFit::fit`](crate::ols::OlsFit::fit) on
    /// `x.select_cols(selected).with_intercept()`-style designs.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if a selected index is out of
    ///   range or repeated.
    /// * [`StatsError::InsufficientData`] if `n ≤ k` for subset size `k`
    ///   (including the intercept).
    /// * [`StatsError::Singular`] if the subset's Gram matrix is not
    ///   positive definite.
    pub fn fit_subset(&mut self, selected: &[usize]) -> Result<OlsFit, StatsError> {
        let key = self.subset_key(selected)?;
        if let Some(cached) = self.memo.get(&key) {
            self.hits += 1;
            chaos_obs::add("gram.hits", 1);
            return cached.clone();
        }
        self.misses += 1;
        chaos_obs::add("gram.misses", 1);
        let result = self.solve_subset(selected);
        self.memo.insert(key, result.clone());
        result
    }

    /// Encodes the subset as a bitmask, validating indices.
    fn subset_key(&self, selected: &[usize]) -> Result<Vec<u64>, StatsError> {
        let mut key = vec![0u64; self.p / 64 + 1];
        for &c in selected {
            if c >= self.p {
                return Err(StatsError::InvalidParameter {
                    context: format!("gram subset: column {c} out of range (p = {})", self.p),
                });
            }
            let (word, bit) = (c / 64, c % 64);
            if key[word] & (1 << bit) != 0 {
                return Err(StatsError::InvalidParameter {
                    context: format!("gram subset: column {c} repeated"),
                });
            }
            key[word] |= 1 << bit;
        }
        Ok(key)
    }

    fn solve_subset(&self, selected: &[usize]) -> Result<OlsFit, StatsError> {
        let d = self.p + 1;
        let k = selected.len() + 1; // + intercept
        if self.n <= k {
            return Err(StatsError::InsufficientData {
                observations: self.n,
                required: k + 1,
            });
        }
        // Gather the subset's Gram matrix and right-hand side. Index 0 is
        // the intercept, indices 1.. are the selected features in order.
        let aug: Vec<usize> = std::iter::once(0)
            .chain(selected.iter().map(|&c| c + 1))
            .collect();
        let mut a = vec![0.0; k * k];
        let mut b = vec![0.0; k];
        for (i, &ai) in aug.iter().enumerate() {
            b[i] = self.xty[ai];
            for (j, &aj) in aug.iter().enumerate() {
                a[i * k + j] = self.gram[ai * d + aj];
            }
        }
        let chol = cholesky(&a, k)?;
        let beta = chol_solve(&chol, k, &b);

        // RSS from cached products: y'y − 2β'X'y + β'(X'X)β.
        let mut quad = 0.0;
        for i in 0..k {
            let mut row = 0.0;
            for j in 0..k {
                row += a[i * k + j] * beta[j];
            }
            quad += beta[i] * row;
        }
        let dot_by: f64 = beta.iter().zip(&b).map(|(bi, yi)| bi * yi).sum();
        let rss = (self.yty - 2.0 * dot_by + quad).max(0.0);
        let residual_variance = rss / (self.n - k) as f64;

        // Diagonal of (X'X)⁻¹ for the standard errors.
        let mut std_errors = vec![0.0; k];
        for (j, se) in std_errors.iter_mut().enumerate() {
            let mut e = vec![0.0; k];
            e[j] = 1.0;
            let z = chol_solve(&chol, k, &e);
            *se = (residual_variance * z[j]).max(0.0).sqrt();
        }

        // chaos-lint: allow(R4) — xty always has the intercept slot
        // (d >= 1 by construction).
        let mean_y = self.xty[0] / self.n as f64;
        let tss = (self.yty - self.n as f64 * mean_y * mean_y).max(0.0);
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        Ok(OlsFit::from_parts(
            beta,
            std_errors,
            residual_variance,
            self.n,
            r_squared,
        ))
    }
}

/// Cholesky factorization `A = L·L'` of a symmetric `k×k` matrix in
/// row-major storage, with a relative pivot tolerance.
fn cholesky(a: &[f64], k: usize) -> Result<Vec<f64>, StatsError> {
    let mut l = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut s = a[i * k + j];
            for t in 0..j {
                s -= l[i * k + t] * l[j * k + t];
            }
            if i == j {
                let tol = CHOLESKY_REL_TOL * a[i * k + i].abs();
                if s <= tol || !s.is_finite() {
                    return Err(StatsError::Singular);
                }
                l[i * k + i] = s.sqrt();
            } else {
                l[i * k + j] = s / l[j * k + j];
            }
        }
    }
    Ok(l)
}

/// A maintained Cholesky factorization `A = L·L'` of a symmetric
/// positive-definite matrix, supporting rank-1 **updates** (`A + v·v'`)
/// and **downdates** (`A − v·v'`) in `O(k²)` instead of the `O(k³)` of a
/// fresh factorization.
///
/// This is what makes a sliding-window least-squares refit cheap: when a
/// sample enters the window its augmented row `v = [1 | x]` is *updated*
/// into the factor of the Gram matrix, and when the oldest sample leaves
/// it is *downdated* out — the normal equations then solve from the
/// maintained factor in `O(k²)` per sample rather than `O(n·k²)`
/// refactorization. The recurrences are the classic LINPACK
/// `dchud`/`dchdd` Givens sweeps; the property suite
/// (`tests/cholesky_rank1.rs`) pins both against full refactorization at
/// `1e-9` relative tolerance.
///
/// Downdates can destroy positive definiteness (removing a row the
/// factor no longer "contains" numerically). A failed downdate returns
/// [`StatsError::Singular`] and leaves the factor **unchanged**, so
/// callers can fall back to refactorizing from accumulated products.
///
/// # Example
///
/// ```
/// use chaos_stats::gram::CholeskyFactor;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // A = [[4, 2], [2, 3]] is symmetric positive definite.
/// let mut f = CholeskyFactor::from_matrix(&[4.0, 2.0, 2.0, 3.0], 2)?;
/// let x0 = f.solve(&[1.0, 1.0])?;
/// let v = [0.5, -1.0];
/// f.update(&v)?; // factor of A + v·v'
/// f.downdate(&v)?; // back to a factor of A
/// let x1 = f.solve(&[1.0, 1.0])?;
/// assert!((x0[0] - x1[0]).abs() < 1e-12);
/// assert!((x0[1] - x1[1]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower-triangular factor, row-major `k×k` (upper entries zero).
    l: Vec<f64>,
    k: usize,
    /// Scratch copy of the rank-1 vector, reused across sweeps so the
    /// steady-state streaming path performs zero heap allocations per
    /// sample. Never observable: cleared and refilled on every call.
    w_scratch: Vec<f64>,
    /// Scratch triangle for the downdate's commit-on-success semantics
    /// (a failed downdate must leave the factor untouched). Swapped with
    /// `l` on success instead of cloning per call.
    l_scratch: Vec<f64>,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite `k×k` matrix given in
    /// row-major storage.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `a.len() != k·k`.
    /// * [`StatsError::InvalidParameter`] if `k == 0`.
    /// * [`StatsError::Singular`] if a pivot falls below the relative
    ///   tolerance (rank-deficient or indefinite input).
    pub fn from_matrix(a: &[f64], k: usize) -> Result<Self, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidParameter {
                context: "cholesky: order must be at least 1".to_string(),
            });
        }
        if a.len() != k * k {
            return Err(StatsError::DimensionMismatch {
                context: format!("cholesky: {} entries for order {k}", a.len()),
            });
        }
        Ok(CholeskyFactor {
            l: cholesky(a, k)?,
            k,
            w_scratch: Vec::new(),
            l_scratch: Vec::new(),
        })
    }

    /// Rebuilds a factor from a previously exported lower triangle
    /// (see [`CholeskyFactor::lower`]). Used by checkpoint restore to
    /// resurrect a maintained factor bit-for-bit, so resumed streams
    /// take the exact numeric path an uninterrupted run would.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if `k == 0`.
    /// * [`StatsError::DimensionMismatch`] if `l.len() != k·k`.
    /// * [`StatsError::NonFinite`] if any entry is non-finite.
    pub fn from_lower(l: Vec<f64>, k: usize) -> Result<Self, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidParameter {
                context: "cholesky: order must be at least 1".to_string(),
            });
        }
        if l.len() != k * k {
            return Err(StatsError::DimensionMismatch {
                context: format!("cholesky from_lower: {} entries for order {k}", l.len()),
            });
        }
        if l.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite {
                context: "cholesky from_lower: non-finite factor entry".to_string(),
            });
        }
        Ok(CholeskyFactor {
            l,
            k,
            w_scratch: Vec::new(),
            l_scratch: Vec::new(),
        })
    }

    /// Order `k` of the factored matrix.
    pub fn order(&self) -> usize {
        self.k
    }

    /// The lower-triangular factor `L`, row-major (diagnostics and
    /// property tests; upper entries are zero).
    pub fn lower(&self) -> &[f64] {
        &self.l
    }

    /// Reconstructs `L·L'` (row-major). Diagnostic helper for tests; the
    /// result approximates the currently factored matrix.
    pub fn reconstruct(&self) -> Vec<f64> {
        let k = self.k;
        let mut a = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                let mut s = 0.0;
                for t in 0..=i.min(j) {
                    s += self.l[i * k + t] * self.l[j * k + t];
                }
                a[i * k + j] = s;
            }
        }
        a
    }

    /// Solves `L·L'·x = b` from the maintained factor.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `b.len() != k`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, StatsError> {
        if b.len() != self.k {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "cholesky solve: rhs has {} entries, factor has order {}",
                    b.len(),
                    self.k
                ),
            });
        }
        Ok(chol_solve(&self.l, self.k, b))
    }

    /// Rank-1 update: replaces the factor of `A` with the factor of
    /// `A + v·v'` via one Givens sweep (`dchud`).
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `v.len() != k`.
    /// * [`StatsError::NonFinite`] if `v` contains a non-finite entry
    ///   (the factor is left unchanged).
    // chaos-lint: hot — rank-1 Cholesky update on the per-sample solver ingest path
    pub fn update(&mut self, v: &[f64]) -> Result<(), StatsError> {
        self.check_vector(v, "update")?;
        let k = self.k;
        // Reused scratch (taken out of self so `l` can be borrowed
        // mutably alongside it): alloc-free after the first call.
        let mut w = std::mem::take(&mut self.w_scratch);
        w.clear();
        // chaos-lint: allow(R6) — reused scratch (comment above); capacity persists after the first update
        w.extend_from_slice(v);
        for j in 0..k {
            let ljj = self.l[j * k + j];
            let r = ljj.hypot(w[j]);
            let c = r / ljj;
            let s = w[j] / ljj;
            self.l[j * k + j] = r;
            for i in (j + 1)..k {
                let lij = (self.l[i * k + j] + s * w[i]) / c;
                w[i] = c * w[i] - s * lij;
                self.l[i * k + j] = lij;
            }
        }
        self.w_scratch = w;
        Ok(())
    }

    /// Rank-1 downdate: replaces the factor of `A` with the factor of
    /// `A − v·v'` via one hyperbolic sweep (`dchdd`).
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `v.len() != k`.
    /// * [`StatsError::NonFinite`] if `v` contains a non-finite entry.
    /// * [`StatsError::Singular`] if `A − v·v'` is not safely positive
    ///   definite (a pivot falls below the relative tolerance).
    ///
    /// On any error the factor is left exactly as it was.
    // chaos-lint: hot — rank-1 Cholesky downdate paired with update on window eviction
    pub fn downdate(&mut self, v: &[f64]) -> Result<(), StatsError> {
        self.check_vector(v, "downdate")?;
        let k = self.k;
        // Work on the reused scratch triangle so a failed downdate
        // leaves `self.l` untouched; commit by swapping on success.
        // Alloc-free after the first call on a given factor.
        let mut l = std::mem::take(&mut self.l_scratch);
        l.clear();
        // chaos-lint: allow(R6) — reused scratch triangle (comment above); alloc-free after the first downdate
        l.extend_from_slice(&self.l);
        let mut w = std::mem::take(&mut self.w_scratch);
        w.clear();
        // chaos-lint: allow(R6) — reused scratch vector, capacity kept across calls
        w.extend_from_slice(v);
        for j in 0..k {
            let ljj = l[j * k + j];
            let d = ljj * ljj - w[j] * w[j];
            if !d.is_finite() || d <= CHOLESKY_REL_TOL * ljj * ljj {
                self.l_scratch = l;
                self.w_scratch = w;
                return Err(StatsError::Singular);
            }
            let r = d.sqrt();
            let c = r / ljj;
            let s = w[j] / ljj;
            l[j * k + j] = r;
            for i in (j + 1)..k {
                let lij = (l[i * k + j] - s * w[i]) / c;
                w[i] = c * w[i] - s * lij;
                l[i * k + j] = lij;
            }
        }
        std::mem::swap(&mut self.l, &mut l);
        self.l_scratch = l;
        self.w_scratch = w;
        Ok(())
    }

    fn check_vector(&self, v: &[f64], op: &str) -> Result<(), StatsError> {
        if v.len() != self.k {
            return Err(StatsError::DimensionMismatch {
                // chaos-lint: allow(R6) — constructs the dimension-mismatch error; valid vectors never take this branch
                context: format!(
                    "cholesky {op}: vector has {} entries, factor has order {}",
                    v.len(),
                    self.k
                ),
            });
        }
        if v.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite {
                // chaos-lint: allow(R6) — non-finite-input error branch only
                context: format!("cholesky {op}: non-finite entry in rank-1 vector"),
            });
        }
        Ok(())
    }
}

/// Solves `L·L'·x = b` by forward and back substitution.
fn chol_solve(l: &[f64], k: usize, b: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; k];
    for i in 0..k {
        let mut s = b[i];
        for t in 0..i {
            s -= l[i * k + t] * w[t];
        }
        w[i] = s / l[i * k + i];
    }
    let mut x = vec![0.0; k];
    for i in (0..k).rev() {
        let mut s = w[i];
        for t in (i + 1)..k {
            s -= l[t * k + i] * x[t];
        }
        x[i] = s / l[i * k + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, p: usize) -> (Matrix, Vec<f64>) {
        let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..p).map(|j| det(i * p + j + 1) * 10.0).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 + 1.5 * r[0] - 0.7 * r[1 % p] + 0.05 * det(i * 31 + 7))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    /// QR fit of `x.select_cols(keep)` with an explicit intercept column.
    fn qr_reference(x: &Matrix, y: &[f64], keep: &[usize]) -> OlsFit {
        OlsFit::fit(&x.select_cols(keep).with_intercept(), y).unwrap()
    }

    #[test]
    fn agrees_with_qr_on_subsets() {
        let (x, y) = synthetic(120, 5);
        let mut cache = GramCache::new(&x, &y).unwrap();
        for keep in [vec![0], vec![0, 1], vec![0, 1, 2, 3, 4], vec![2, 4]] {
            let gram_fit = cache.fit_subset(&keep).unwrap();
            let qr_fit = qr_reference(&x, &y, &keep);
            for (g, q) in gram_fit.coefficients().iter().zip(qr_fit.coefficients()) {
                assert!((g - q).abs() < 1e-8, "coef {g} vs {q} for {keep:?}");
            }
            for (g, q) in gram_fit.std_errors().iter().zip(qr_fit.std_errors()) {
                assert!((g - q).abs() < 1e-6, "se {g} vs {q} for {keep:?}");
            }
            assert!((gram_fit.r_squared() - qr_fit.r_squared()).abs() < 1e-8);
            assert!(
                (gram_fit.residual_variance() - qr_fit.residual_variance()).abs()
                    < 1e-6 * (1.0 + qr_fit.residual_variance())
            );
        }
    }

    #[test]
    fn memoizes_repeat_subsets() {
        let (x, y) = synthetic(60, 4);
        let mut cache = GramCache::new(&x, &y).unwrap();
        cache.fit_subset(&[0, 1]).unwrap();
        cache.fit_subset(&[0, 1]).unwrap();
        cache.fit_subset(&[1, 0]).unwrap(); // same mask, different order
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn rejects_duplicate_columns_and_bad_indices() {
        let (x, y) = synthetic(30, 3);
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 0]),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            cache.fit_subset(&[7]),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn detects_rank_deficiency() {
        // Column 1 duplicates column 0 exactly.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..20).map(|i| 1.0 + i as f64).collect();
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 1]),
            Err(StatsError::Singular)
        ));
        assert!(cache.fit_subset(&[0]).is_ok());
    }

    #[test]
    fn insufficient_data_matches_ols_contract() {
        let (x, y) = synthetic(3, 4);
        let mut cache = GramCache::new(&x, &y).unwrap();
        assert!(matches!(
            cache.fit_subset(&[0, 1, 2]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mismatched_y_rejected() {
        let (x, _) = synthetic(10, 2);
        assert!(GramCache::new(&x, &[1.0, 2.0]).is_err());
    }

    /// A deterministic SPD matrix: `L₀·L₀' ` for a lower factor with a
    /// safely positive diagonal.
    fn spd(k: usize, seed: usize) -> Vec<f64> {
        let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract();
        let mut l0 = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..=i {
                l0[i * k + j] = if i == j {
                    1.0 + det(seed + i * 7 + 1).abs()
                } else {
                    det(seed + i * k + j + 3) - 0.5
                };
            }
        }
        let mut a = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                for t in 0..=i.min(j) {
                    a[i * k + j] += l0[i * k + t] * l0[j * k + t];
                }
            }
        }
        a
    }

    #[test]
    fn rank1_update_matches_refactorization() {
        for k in 1..6 {
            let a = spd(k, 11 * k);
            let v: Vec<f64> = (0..k).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
            f.update(&v).unwrap();
            let mut updated = a.clone();
            for i in 0..k {
                for j in 0..k {
                    updated[i * k + j] += v[i] * v[j];
                }
            }
            let g = CholeskyFactor::from_matrix(&updated, k).unwrap();
            for (a, b) in f.lower().iter().zip(g.lower()) {
                assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn rank1_downdate_inverts_update() {
        for k in 1..6 {
            let a = spd(k, 5 * k + 2);
            let v: Vec<f64> = (0..k).map(|i| (i as f64 * 0.71).cos()).collect();
            let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
            f.update(&v).unwrap();
            f.downdate(&v).unwrap();
            let g = CholeskyFactor::from_matrix(&a, k).unwrap();
            for (a, b) in f.lower().iter().zip(g.lower()) {
                assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn failed_downdate_leaves_factor_unchanged() {
        let a = spd(3, 17);
        let mut f = CholeskyFactor::from_matrix(&a, 3).unwrap();
        let before = f.lower().to_vec();
        // Removing far more mass than the matrix holds must fail.
        let err = f.downdate(&[100.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, StatsError::Singular));
        assert_eq!(f.lower(), before.as_slice());
        // The factor still solves after the refused downdate.
        assert!(f.solve(&[1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn cholesky_factor_rejects_bad_inputs() {
        assert!(CholeskyFactor::from_matrix(&[1.0, 0.0], 2).is_err());
        assert!(CholeskyFactor::from_matrix(&[], 0).is_err());
        let mut f = CholeskyFactor::from_matrix(&[4.0], 1).unwrap();
        assert!(matches!(
            f.update(&[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            f.update(&[f64::NAN]),
            Err(StatsError::NonFinite { .. })
        ));
        assert!(matches!(
            f.solve(&[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }
}
