//! L1-regularized linear regression (the lasso) via cyclic coordinate
//! descent.
//!
//! Algorithm 1, step 3 of the paper uses "linear regression fitting with L1
//! regularization, which bounds the sum of the coefficients in order to
//! eliminate irrelevant features in high-dimensional spaces". The lasso's
//! soft-thresholding drives irrelevant coefficients exactly to zero, which
//! is what the feature-selection pipeline consumes: the surviving support.
//!
//! Features are standardized (zero mean, unit variance) and the response is
//! centered internally, so the penalty treats all counters symmetrically
//! regardless of units (pages/sec vs bytes/sec); coefficients are returned
//! on the original scale with an unpenalized intercept.

// Coordinate descent indexes the residual and column vectors in lockstep;
// range loops mirror the usual presentation of the algorithm.
#![allow(clippy::needless_range_loop)]

use crate::describe;
use crate::matrix::Matrix;
use crate::StatsError;

/// Configuration for a lasso fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LassoConfig {
    /// Regularization strength λ (on the standardized scale). Zero gives
    /// ordinary least squares (up to numerical tolerance).
    pub lambda: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum coefficient change per sweep.
    pub tol: f64,
}

impl Default for LassoConfig {
    fn default() -> Self {
        LassoConfig {
            lambda: 0.1,
            max_iter: 10_000,
            tol: 1e-8,
        }
    }
}

/// A fitted lasso model.
#[derive(Debug, Clone)]
pub struct LassoFit {
    intercept: f64,
    coefficients: Vec<f64>,
    iterations: usize,
    converged: bool,
}

impl LassoFit {
    /// Fits the lasso by cyclic coordinate descent.
    ///
    /// `x` must *not* contain an intercept column; the intercept is handled
    /// by centering and is never penalized.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    /// * [`StatsError::InsufficientData`] if `x` has fewer than two rows.
    /// * [`StatsError::InvalidParameter`] if `lambda < 0` or `max_iter == 0`.
    pub fn fit(x: &Matrix, y: &[f64], config: &LassoConfig) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("lasso: y has {} entries, X has {n} rows", y.len()),
            });
        }
        if n < 2 {
            return Err(StatsError::InsufficientData {
                observations: n,
                required: 2,
            });
        }
        if config.lambda < 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!("lasso: lambda must be non-negative, got {}", config.lambda),
            });
        }
        if config.max_iter == 0 {
            return Err(StatsError::InvalidParameter {
                context: "lasso: max_iter must be positive".into(),
            });
        }

        // Standardize columns; constant columns get scale 0 and are frozen
        // at coefficient zero (they are indistinguishable from the
        // intercept).
        let mut means = vec![0.0; p];
        let mut scales = vec![0.0; p];
        let mut xs = Matrix::zeros(n, p);
        for j in 0..p {
            let col = x.col(j);
            means[j] = describe::mean(&col);
            scales[j] = describe::std_dev_population(&col);
            if scales[j] > 0.0 {
                for i in 0..n {
                    xs.set(i, j, (col[i] - means[j]) / scales[j]);
                }
            }
        }
        let y_mean = describe::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Coordinate descent. With standardized columns, each column's
        // squared norm is n, so the update is a plain soft threshold.
        let mut beta = vec![0.0; p];
        let mut resid = yc.clone();
        let lambda_n = config.lambda * n as f64;
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..config.max_iter {
            iterations += 1;
            let mut max_delta = 0.0_f64;
            for j in 0..p {
                if scales[j] == 0.0 {
                    continue;
                }
                // rho = x_jᵀ(resid + x_j β_j) = x_jᵀ resid + n β_j.
                let mut dot = 0.0;
                for i in 0..n {
                    dot += xs.get(i, j) * resid[i];
                }
                let rho = dot + n as f64 * beta[j];
                let new_beta = soft_threshold(rho, lambda_n) / n as f64;
                let delta = new_beta - beta[j];
                if delta != 0.0 {
                    for i in 0..n {
                        resid[i] -= delta * xs.get(i, j);
                    }
                    beta[j] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < config.tol {
                converged = true;
                break;
            }
        }

        // Rescale back to the original units.
        let mut coefficients = vec![0.0; p];
        let mut intercept = y_mean;
        for j in 0..p {
            if scales[j] > 0.0 {
                coefficients[j] = beta[j] / scales[j];
                intercept -= coefficients[j] * means[j];
            }
        }
        Ok(LassoFit {
            intercept,
            coefficients,
            iterations,
            converged,
        })
    }

    /// The unpenalized intercept on the original data scale.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficients on the original data scale (zeros for eliminated
    /// features).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Indices of features with non-zero coefficients — the support that
    /// feature selection consumes.
    pub fn support(&self) -> Vec<usize> {
        self.coefficients
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0.0)
            .map(|(j, _)| j)
            .collect()
    }

    /// Number of coordinate-descent sweeps performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the fit met the convergence tolerance within `max_iter`.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Predicts the response for a feature row (without intercept column).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on length mismatch.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "lasso predict: row has {} entries, model has {}",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(self.intercept
            + row
                .iter()
                .zip(&self.coefficients)
                .map(|(a, b)| a * b)
                .sum::<f64>())
    }
}

/// Soft-thresholding operator `S(z, γ) = sign(z)·max(|z| − γ, 0)`.
fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

/// The smallest λ (standardized scale) at which every coefficient is zero.
///
/// Useful for building a log-spaced λ path for support exploration.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] if `y.len() != x.rows()` and
/// [`StatsError::InsufficientData`] for empty input.
pub fn lambda_max(x: &Matrix, y: &[f64]) -> Result<f64, StatsError> {
    let (n, p) = (x.rows(), x.cols());
    if y.len() != n {
        return Err(StatsError::DimensionMismatch {
            context: format!("lambda_max: y has {} entries, X has {n} rows", y.len()),
        });
    }
    if n == 0 {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    let y_mean = describe::mean(y);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
    let mut best = 0.0_f64;
    for j in 0..p {
        let col = x.col(j);
        let m = describe::mean(&col);
        let s = describe::std_dev_population(&col);
        if s == 0.0 {
            continue;
        }
        let dot: f64 = col.iter().zip(&yc).map(|(v, r)| (v - m) / s * r).sum();
        best = best.max(dot.abs() / n as f64);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols::OlsFit;

    /// Deterministic pseudo-noise so tests don't need an RNG dependency.
    fn det_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    fn sparse_problem(n: usize, p: usize) -> (Matrix, Vec<f64>) {
        // y depends only on features 0 and 2.
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let feats: Vec<f64> = (0..p).map(|j| det_noise(i * p + j) * 4.0).collect();
            y.push(10.0 + 3.0 * feats[0] - 2.0 * feats[2] + 0.05 * det_noise(i * 31 + 7));
            rows.push(feats);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn recovers_sparse_support() {
        let (x, y) = sparse_problem(200, 8);
        let fit = LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                lambda: 0.3,
                ..LassoConfig::default()
            },
        )
        .unwrap();
        let support = fit.support();
        assert!(support.contains(&0), "support {support:?}");
        assert!(support.contains(&2), "support {support:?}");
        assert!(support.len() <= 4, "support too large: {support:?}");
        assert!(fit.converged());
    }

    #[test]
    fn zero_lambda_matches_ols() {
        let (x, y) = sparse_problem(100, 4);
        let lasso = LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                lambda: 0.0,
                max_iter: 50_000,
                tol: 1e-12,
            },
        )
        .unwrap();
        let ols = OlsFit::fit(&x.with_intercept(), &y).unwrap();
        assert!((lasso.intercept() - ols.coefficients()[0]).abs() < 1e-4);
        for j in 0..4 {
            assert!(
                (lasso.coefficients()[j] - ols.coefficients()[j + 1]).abs() < 1e-4,
                "coefficient {j}"
            );
        }
    }

    #[test]
    fn huge_lambda_zeroes_everything() {
        let (x, y) = sparse_problem(100, 4);
        let lmax = lambda_max(&x, &y).unwrap();
        let fit = LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                lambda: lmax * 1.01,
                ..LassoConfig::default()
            },
        )
        .unwrap();
        assert!(fit.support().is_empty());
        // Intercept falls back to the mean of y.
        let y_mean = crate::describe::mean(&y);
        assert!((fit.intercept() - y_mean).abs() < 1e-9);
    }

    #[test]
    fn lambda_just_below_max_keeps_a_feature() {
        let (x, y) = sparse_problem(100, 4);
        let lmax = lambda_max(&x, &y).unwrap();
        let fit = LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                lambda: lmax * 0.9,
                ..LassoConfig::default()
            },
        )
        .unwrap();
        assert!(!fit.support().is_empty());
    }

    #[test]
    fn shrinkage_is_monotone_in_lambda() {
        let (x, y) = sparse_problem(150, 6);
        let l1_norm = |lambda: f64| {
            LassoFit::fit(
                &x,
                &y,
                &LassoConfig {
                    lambda,
                    ..LassoConfig::default()
                },
            )
            .unwrap()
            .coefficients()
            .iter()
            .map(|c| c.abs())
            .sum::<f64>()
        };
        let norms: Vec<f64> = [0.01, 0.1, 0.5, 1.5].iter().map(|&l| l1_norm(l)).collect();
        for w in norms.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "norms not monotone: {norms:?}");
        }
    }

    #[test]
    fn constant_column_gets_zero_coefficient() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![7.0, det_noise(i) * 3.0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..50).map(|i| 1.0 + 2.0 * det_noise(i) * 3.0).collect();
        let fit = LassoFit::fit(&x, &y, &LassoConfig::default()).unwrap();
        assert_eq!(fit.coefficients()[0], 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [1.0, 2.0, 3.0];
        assert!(LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                lambda: -1.0,
                ..LassoConfig::default()
            }
        )
        .is_err());
        assert!(LassoFit::fit(
            &x,
            &y,
            &LassoConfig {
                max_iter: 0,
                ..LassoConfig::default()
            }
        )
        .is_err());
        assert!(LassoFit::fit(&x, &[1.0], &LassoConfig::default()).is_err());
    }

    #[test]
    fn predict_row_applies_intercept() {
        let (x, y) = sparse_problem(100, 4);
        let fit = LassoFit::fit(&x, &y, &LassoConfig::default()).unwrap();
        let p = fit.predict_row(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((p - fit.intercept()).abs() < 1e-12);
        assert!(fit.predict_row(&[0.0]).is_err());
    }
}
