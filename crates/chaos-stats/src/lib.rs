//! Statistical substrate for the CHAOS power-modeling framework.
//!
//! The CHAOS paper (IISWC 2012) fits regression models of full-system power
//! against OS-level performance counters. This crate provides every
//! statistical primitive that pipeline needs, implemented from scratch:
//!
//! * [`Matrix`] — a dense, row-major matrix with the linear algebra used by
//!   the regression code (products, transpose, Householder QR).
//! * [`ols`] — ordinary least squares with coefficient covariance, standard
//!   errors and Wald significance tests (Algorithm 1, step 4).
//! * [`lasso`] — L1-regularized linear regression via coordinate descent
//!   (Algorithm 1, step 3).
//! * [`stepwise`] — backward stepwise elimination driven by Wald p-values
//!   (Algorithm 1, steps 4 and 6).
//! * [`corr`] — Pearson correlation matrices and correlated-feature pruning
//!   (Algorithm 1, step 1).
//! * [`cv`] — k-fold cross-validation splits, including the paper's
//!   "training set about ten times smaller than the test set" shape, plus
//!   a policy-driven [`cv::cross_validate`] fold runner.
//! * [`metrics`] — model-quality metrics, most importantly the paper's
//!   *Dynamic Range Error* (Eq. 6).
//! * [`exec`] — the [`exec::ExecPolicy`] execution engine: deterministic
//!   serial/parallel fan-out for per-machine fits, folds and sweeps, with
//!   bit-identical results across modes.
//! * [`gram`] — a memoizing Gram-matrix cache so stepwise elimination
//!   stops rebuilding `X'X` from scratch on every subset refit.
//!
//! # Example
//!
//! ```
//! use chaos_stats::{Matrix, ols::OlsFit};
//!
//! # fn main() -> Result<(), chaos_stats::StatsError> {
//! // y = 1 + 2x, exactly.
//! let x = Matrix::from_rows(&[
//!     vec![1.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![1.0, 2.0],
//!     vec![1.0, 3.0],
//! ])?;
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let fit = OlsFit::fit(&x, &y)?;
//! assert!((fit.coefficients()[0] - 1.0).abs() < 1e-9);
//! assert!((fit.coefficients()[1] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod corr;
pub mod cv;
pub mod describe;
pub mod dist;
pub mod exec;
pub mod gram;
pub mod lasso;
pub mod matrix;
pub mod metrics;
pub mod ols;
pub mod stepwise;

pub use batch::CoefBlock;
pub use exec::ExecPolicy;
pub use matrix::Matrix;

use std::error::Error;
use std::fmt;

/// Errors produced by the statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// Matrix or vector dimensions do not agree.
    DimensionMismatch {
        /// Human-readable description of the two shapes in conflict.
        context: String,
    },
    /// A matrix was numerically singular (or so ill-conditioned that a
    /// factorization failed).
    Singular,
    /// There are not enough observations for the requested operation
    /// (for example, fewer rows than columns in a least-squares problem).
    InsufficientData {
        /// Number of observations supplied.
        observations: usize,
        /// Minimum number of observations required.
        required: usize,
    },
    /// A parameter was outside its valid domain (for example, a fold count
    /// of zero or a negative regularization strength).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        context: String,
    },
    /// An input contained NaN or infinity where a finite value was
    /// required (for example, a faulted counter sample fed to a fitted
    /// model).
    NonFinite {
        /// Human-readable description of where the non-finite value was.
        context: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StatsError::Singular => write!(f, "matrix is singular or severely ill-conditioned"),
            StatsError::InsufficientData {
                observations,
                required,
            } => write!(
                f,
                "insufficient data: {observations} observations, need at least {required}"
            ),
            StatsError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
            StatsError::NonFinite { context } => {
                write!(f, "non-finite input: {context}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            StatsError::DimensionMismatch {
                context: "3x2 vs 4".into(),
            },
            StatsError::Singular,
            StatsError::InsufficientData {
                observations: 2,
                required: 3,
            },
            StatsError::InvalidParameter {
                context: "k = 0".into(),
            },
            StatsError::NonFinite {
                context: "row 7, feature 2".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
