//! Dense, row-major matrices and the linear algebra used by the regression
//! code: products, transpose, and Householder QR least squares.
//!
//! The matrices in CHAOS are design matrices: a few thousand rows (one per
//! one-second sample) by a few dozen columns (one per selected counter), so
//! a straightforward dense implementation is both adequate and predictable.

// The factorization kernels index several vectors in lockstep; range loops
// mirror the textbook notation and stay readable.
#![allow(clippy::needless_range_loop)]

use crate::StatsError;

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use chaos_stats::Matrix;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the rows have unequal
    /// lengths, and [`StatsError::InvalidParameter`] if `rows` is empty or
    /// the first row is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(StatsError::InvalidParameter {
                context: "from_rows: no rows supplied".into(),
            });
        }
        // chaos-lint: allow(R4) — guarded by the nrows == 0 check above.
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(StatsError::InvalidParameter {
                context: "from_rows: rows are empty".into(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    context: format!("row {i} has {} entries, expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from column slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the columns have unequal
    /// lengths, and [`StatsError::InvalidParameter`] if `cols` is empty or
    /// the first column is empty.
    pub fn from_cols(cols: &[Vec<f64>]) -> Result<Self, StatsError> {
        let ncols = cols.len();
        if ncols == 0 {
            return Err(StatsError::InvalidParameter {
                context: "from_cols: no columns supplied".into(),
            });
        }
        // chaos-lint: allow(R4) — guarded by the ncols == 0 check above.
        let nrows = cols[0].len();
        if nrows == 0 {
            return Err(StatsError::InvalidParameter {
                context: "from_cols: columns are empty".into(),
            });
        }
        let mut m = Matrix::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            if c.len() != nrows {
                return Err(StatsError::DimensionMismatch {
                    context: format!("column {j} has {} entries, expected {nrows}", c.len()),
                });
            }
            for (i, &v) in c.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "from_vec: buffer of {} entries cannot fill {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "matvec: {}x{} * vector of {}",
                    self.rows,
                    self.cols,
                    v.len()
                ),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Returns the Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..p {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..p {
                    g.data[a * p + b] += ra * r[b];
                }
            }
        }
        for a in 0..p {
            for b in 0..a {
                g.data[a * p + b] = g.data[b * p + a];
            }
        }
        g
    }

    /// Returns a new matrix keeping only the given columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of bounds.
    pub fn select_cols(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, keep.len());
        for i in 0..self.rows {
            for (nj, &j) in keep.iter().enumerate() {
                out.set(i, nj, self.get(i, j));
            }
        }
        out
    }

    /// Returns a new matrix keeping only the given rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of bounds.
    pub fn select_rows(&self, keep: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(keep.len(), self.cols);
        for (ni, &i) in keep.iter().enumerate() {
            out.data[ni * self.cols..(ni + 1) * self.cols].copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns a new matrix with a column of ones prepended (the intercept
    /// column used by the regression routines).
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.set(i, 0, 1.0);
            for j in 0..self.cols {
                out.set(i, j + 1, self.get(i, j));
            }
        }
        out
    }

    /// Solves the least-squares problem `min ||self·x − y||₂` using
    /// Householder QR with column checks for rank deficiency.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != self.rows()`.
    /// * [`StatsError::InsufficientData`] if there are fewer rows than columns.
    /// * [`StatsError::Singular`] if the design matrix is rank-deficient.
    pub fn solve_least_squares(&self, y: &[f64]) -> Result<Vec<f64>, StatsError> {
        let qr = QrFactorization::compute(self)?;
        qr.solve(y)
    }

    /// Computes `(selfᵀ self)⁻¹` via the R factor of a QR factorization.
    ///
    /// This is the unscaled coefficient covariance used for Wald tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::solve_least_squares`].
    pub fn xtx_inverse(&self) -> Result<Matrix, StatsError> {
        let qr = QrFactorization::compute(self)?;
        qr.xtx_inverse()
    }
}

/// Householder QR factorization of a tall matrix, retained in compact form.
///
/// Used to solve least-squares problems and to compute `(XᵀX)⁻¹` for
/// coefficient covariance without forming the normal equations (which would
/// square the condition number).
#[derive(Debug, Clone)]
pub struct QrFactorization {
    /// Compact QR: upper triangle holds R, lower part holds the Householder
    /// vectors (without the implicit leading 1).
    qr: Matrix,
    /// Scaling factors of the Householder reflections.
    tau: Vec<f64>,
}

impl QrFactorization {
    /// Relative tolerance under which a diagonal entry of R is considered
    /// zero (rank deficiency).
    const RANK_TOL: f64 = 1e-10;

    /// Computes the factorization of `a`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientData`] if `a` has fewer rows than columns.
    /// * [`StatsError::Singular`] if `a` is rank-deficient.
    pub fn compute(a: &Matrix) -> Result<Self, StatsError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(StatsError::InsufficientData {
                observations: m,
                required: n,
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];

        // Scale reference for the rank test.
        let max_norm = (0..n)
            .map(|j| (0..m).map(|i| qr.get(i, j).powi(2)).sum::<f64>().sqrt())
            .fold(0.0_f64, f64::max);
        if max_norm == 0.0 {
            return Err(StatsError::Singular);
        }

        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr.get(i, k).powi(2);
            }
            norm = norm.sqrt();
            if norm <= Self::RANK_TOL * max_norm {
                return Err(StatsError::Singular);
            }
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            let akk = qr.get(k, k);
            let v0 = akk - alpha;
            // Normalize so v[k] = 1 implicitly; store v[k+1..] / v0.
            for i in (k + 1)..m {
                let v = qr.get(i, k) / v0;
                qr.set(i, k, v);
            }
            tau[k] = -v0 / alpha; // tau = 2 / (vᵀv) with v[k] = 1 normalization
            qr.set(k, k, alpha);

            // Apply the reflection to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr.get(k, j);
                for i in (k + 1)..m {
                    s += qr.get(i, k) * qr.get(i, j);
                }
                s *= tau[k];
                let new_kj = qr.get(k, j) - s;
                qr.set(k, j, new_kj);
                for i in (k + 1)..m {
                    let v = qr.get(i, j) - s * qr.get(i, k);
                    qr.set(i, j, v);
                }
            }
        }
        Ok(QrFactorization { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Qᵀ` to `y` and back-substitutes through R to solve the
    /// least-squares problem.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `y.len()` does not match
    /// the factored matrix's row count.
    pub fn solve(&self, y: &[f64]) -> Result<Vec<f64>, StatsError> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if y.len() != m {
            return Err(StatsError::DimensionMismatch {
                context: format!("solve: y has {} entries, expected {m}", y.len()),
            });
        }
        let mut w = y.to_vec();
        // w := Qᵀ y, applying reflections in order.
        for k in 0..n {
            let mut s = w[k];
            for i in (k + 1)..m {
                s += self.qr.get(i, k) * w[i];
            }
            s *= self.tau[k];
            w[k] -= s;
            for i in (k + 1)..m {
                w[i] -= s * self.qr.get(i, k);
            }
        }
        // Back substitution through R.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = w[k];
            for j in (k + 1)..n {
                s -= self.qr.get(k, j) * x[j];
            }
            x[k] = s / self.qr.get(k, k);
        }
        Ok(x)
    }

    /// Computes `(XᵀX)⁻¹ = R⁻¹ R⁻ᵀ` from the R factor.
    ///
    /// # Errors
    ///
    /// Never fails for a successfully computed factorization; the signature
    /// is fallible for parity with future pivoted implementations.
    pub fn xtx_inverse(&self) -> Result<Matrix, StatsError> {
        let n = self.qr.cols();
        // Invert R (upper triangular) by back substitution per column.
        let mut rinv = Matrix::zeros(n, n);
        for j in 0..n {
            // Solve R x = e_j.
            let mut x = vec![0.0; n];
            for k in (0..=j).rev() {
                let mut s = if k == j { 1.0 } else { 0.0 };
                for l in (k + 1)..=j {
                    s -= self.qr.get(k, l) * x[l];
                }
                x[k] = s / self.qr.get(k, k);
            }
            for k in 0..n {
                rinv.set(k, j, x[k]);
            }
        }
        // (XᵀX)⁻¹ = R⁻¹ R⁻ᵀ.
        let rinv_t = rinv.transpose();
        rinv.matmul(&rinv_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, StatsError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
    }

    #[test]
    fn from_cols_matches_from_rows_transposed() {
        let a = Matrix::from_cols(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![3.0, 4.0, -1.0],
            vec![0.0, 1.0, 2.0],
            vec![2.0, 2.0, 2.0],
        ])
        .unwrap();
        let g = a.gram();
        let g2 = a.transpose().matmul(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(g.get(i, j), g2.get(i, j), 1e-12);
            }
        }
    }

    #[test]
    fn select_cols_and_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = a.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = a.select_rows(&[1]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn with_intercept_prepends_ones() {
        let a = Matrix::from_rows(&[vec![2.0], vec![3.0]]).unwrap();
        let b = a.with_intercept();
        assert_eq!(b.row(0), &[1.0, 2.0]);
        assert_eq!(b.row(1), &[1.0, 3.0]);
    }

    #[test]
    fn qr_solves_exact_system() {
        // y = 1 + 2a + 3b at four points → exactly recoverable.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        let y = [1.0, 3.0, 4.0, 6.0];
        let beta = x.solve_least_squares(&y).unwrap();
        assert_close(beta[0], 1.0, 1e-10);
        assert_close(beta[1], 2.0, 1e-10);
        assert_close(beta[2], 3.0, 1e-10);
    }

    #[test]
    fn qr_least_squares_minimizes_residual() {
        // Overdetermined inconsistent system: residual must be orthogonal to
        // the column space (normal equations hold).
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
            vec![1.0, 4.0],
        ])
        .unwrap();
        let y = [1.0, 2.0, 2.0, 5.0];
        let beta = x.solve_least_squares(&y).unwrap();
        let pred = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&pred).map(|(a, b)| a - b).collect();
        for j in 0..2 {
            let dot: f64 = (0..4).map(|i| x.get(i, j) * resid[i]).sum();
            assert_close(dot, 0.0, 1e-9);
        }
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Second column is 2× the first.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert_eq!(
            x.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap_err(),
            StatsError::Singular
        );
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let x = Matrix::zeros(2, 3);
        assert!(matches!(
            QrFactorization::compute(&x).unwrap_err(),
            StatsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn qr_rejects_zero_matrix() {
        let x = Matrix::zeros(3, 2);
        assert_eq!(
            QrFactorization::compute(&x).unwrap_err(),
            StatsError::Singular
        );
    }

    #[test]
    fn xtx_inverse_matches_identity_product() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![1.0, 1.5, -0.3],
            vec![1.0, 2.5, 0.9],
            vec![1.0, 3.1, 1.4],
            vec![1.0, 4.7, -2.0],
        ])
        .unwrap();
        let inv = x.xtx_inverse().unwrap();
        let xtx = x.gram();
        let prod = xtx.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(prod.get(i, j), expected, 1e-8);
            }
        }
    }

    #[test]
    fn solve_rejects_wrong_length_rhs() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let qr = QrFactorization::compute(&x).unwrap();
        assert!(qr.solve(&[1.0, 2.0]).is_err());
    }
}
