//! Model-quality metrics, including the paper's Dynamic Range Error.
//!
//! The CHAOS paper argues (Section V-A, Table III) that absolute metrics
//! like rMSE or percent-of-total-power error flatter models on platforms
//! with large static power, and defines
//!
//! ```text
//! DRE = sqrt(MSE) / (P_max − P_idle)        (Eq. 6)
//! ```
//!
//! as a platform-independent measure of how well a model explains the
//! *dynamic* power range. This module implements MSE, rMSE, DRE, mean and
//! median relative error, and R².

use crate::describe;
use crate::StatsError;

/// Mean squared error between `predicted` and `actual`.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] if the slices differ in length
/// and [`StatsError::InsufficientData`] if they are empty.
pub fn mse(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    check_pair(predicted, actual)?;
    Ok(predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64)
}

/// Root mean squared error (`sqrt` of [`mse`]).
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn rmse(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    Ok(mse(predicted, actual)?.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mean_abs_error(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    check_pair(predicted, actual)?;
    Ok(predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64)
}

/// Median absolute relative error, as a fraction of the actual value —
/// the "median relative error" several prior papers report and which the
/// CHAOS abstract quotes as 0.5–2.5%.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn median_relative_error(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    check_pair(predicted, actual)?;
    let rel: Vec<f64> = predicted
        .iter()
        .zip(actual)
        .filter(|(_, a)| **a != 0.0)
        .map(|(p, a)| ((p - a) / a).abs())
        .collect();
    if rel.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    Ok(describe::median(&rel))
}

/// Percent error as used in Table III: `rMSE / mean(actual)`.
///
/// # Errors
///
/// Same conditions as [`mse`], plus [`StatsError::InvalidParameter`] if
/// the mean of `actual` is zero.
pub fn percent_error(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    let r = rmse(predicted, actual)?;
    let m = describe::mean(actual);
    if m == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "percent_error: mean of actual values is zero".into(),
        });
    }
    Ok(r / m)
}

/// Coefficient of determination R².
///
/// # Errors
///
/// Same conditions as [`mse`]. Returns `0.0` when `actual` has no variance.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> Result<f64, StatsError> {
    check_pair(predicted, actual)?;
    let mean_a = describe::mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - mean_a).powi(2)).sum();
    if ss_tot == 0.0 {
        return Ok(0.0);
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p).powi(2))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// The paper's Dynamic Range Error (Eq. 6): `rMSE / (power_max − power_idle)`.
///
/// `power_max` and `power_idle` characterize the *platform*, not the trace
/// being scored: the denominator is the machine's dynamic power range.
///
/// # Errors
///
/// Same conditions as [`mse`], plus [`StatsError::InvalidParameter`] if
/// `power_max <= power_idle` and [`StatsError::NonFinite`] if either
/// platform bound or any power sample is NaN or infinite. DRE never
/// silently returns NaN: every non-finite input surfaces as a typed
/// error.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let predicted = [25.5, 26.0, 24.9];
/// let actual = [25.0, 26.5, 25.1];
/// // A 22–26 W platform (the paper's Atom) has a 4 W dynamic range, so
/// // even sub-watt errors produce double-digit DRE.
/// let dre = chaos_stats::metrics::dynamic_range_error(&predicted, &actual, 26.0, 22.0)?;
/// assert!(dre > 0.05);
/// # Ok(())
/// # }
/// ```
pub fn dynamic_range_error(
    predicted: &[f64],
    actual: &[f64],
    power_max: f64,
    power_idle: f64,
) -> Result<f64, StatsError> {
    check_pair(predicted, actual)?;
    if !power_max.is_finite() || !power_idle.is_finite() {
        return Err(StatsError::NonFinite {
            context: format!("dynamic range bounds max={power_max}, idle={power_idle}"),
        });
    }
    for (name, values) in [("predicted", predicted), ("actual", actual)] {
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite {
                context: format!("DRE {name} power sample {i} = {}", values[i]),
            });
        }
    }
    // NaN-safe now that both bounds are known finite: a NaN range can no
    // longer sneak past this comparison.
    let range = power_max - power_idle;
    if range <= 0.0 {
        return Err(StatsError::InvalidParameter {
            context: format!("dynamic range must be positive, got {range}"),
        });
    }
    let dre = rmse(predicted, actual)? / range;
    if !dre.is_finite() {
        return Err(StatsError::NonFinite {
            context: format!("DRE evaluated to {dre}"),
        });
    }
    Ok(dre)
}

/// A bundle of every metric the paper reports for one model evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalMetrics {
    /// Root mean squared error in watts.
    pub rmse: f64,
    /// `rMSE / mean(actual)` — the "% Err" column of Table III.
    pub percent_error: f64,
    /// Median absolute relative error.
    pub median_relative_error: f64,
    /// Dynamic Range Error (Eq. 6).
    pub dre: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl EvalMetrics {
    /// Computes all metrics for one (predicted, actual) pair against a
    /// platform dynamic range.
    ///
    /// # Errors
    ///
    /// Propagates the error conditions of the individual metric functions.
    pub fn compute(
        predicted: &[f64],
        actual: &[f64],
        power_max: f64,
        power_idle: f64,
    ) -> Result<Self, StatsError> {
        Ok(EvalMetrics {
            rmse: rmse(predicted, actual)?,
            percent_error: percent_error(predicted, actual)?,
            median_relative_error: median_relative_error(predicted, actual)?,
            dre: dynamic_range_error(predicted, actual, power_max, power_idle)?,
            r_squared: r_squared(predicted, actual)?,
        })
    }
}

fn check_pair(predicted: &[f64], actual: &[f64]) -> Result<(), StatsError> {
    if predicted.len() != actual.len() {
        return Err(StatsError::DimensionMismatch {
            context: format!(
                "metrics: predicted has {} entries, actual has {}",
                predicted.len(),
                actual.len()
            ),
        });
    }
    if predicted.is_empty() {
        return Err(StatsError::InsufficientData {
            observations: 0,
            required: 1,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse_known() {
        let p = [1.0, 2.0, 3.0];
        let a = [2.0, 2.0, 5.0];
        assert!((mse(&p, &a).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &a).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let a = [10.0, 20.0, 30.0];
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(mean_abs_error(&a, &a).unwrap(), 0.0);
        assert_eq!(median_relative_error(&a, &a).unwrap(), 0.0);
        assert_eq!(r_squared(&a, &a).unwrap(), 1.0);
        assert_eq!(dynamic_range_error(&a, &a, 40.0, 5.0).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
    }

    #[test]
    fn dre_reflects_dynamic_range_not_total_power() {
        // Same absolute error, small vs large dynamic range: the paper's
        // Atom-vs-Core2 argument (Table III).
        let p = [100.5, 101.0];
        let a = [100.0, 100.0];
        let small_range = dynamic_range_error(&p, &a, 104.0, 100.0).unwrap();
        let large_range = dynamic_range_error(&p, &a, 140.0, 100.0).unwrap();
        assert!(small_range > 5.0 * large_range);
    }

    #[test]
    fn dre_rejects_degenerate_range() {
        assert!(dynamic_range_error(&[1.0], &[1.0], 5.0, 5.0).is_err());
        assert!(dynamic_range_error(&[1.0], &[1.0], 4.0, 5.0).is_err());
    }

    #[test]
    fn dre_rejects_non_finite_bounds_with_typed_error() {
        // inf − inf = NaN used to slip past the `range <= 0` check and
        // return Ok(NaN); it must be a typed error instead.
        for (max, idle) in [
            (f64::INFINITY, f64::INFINITY),
            (f64::NAN, 5.0),
            (5.0, f64::NAN),
            (f64::NEG_INFINITY, 5.0),
        ] {
            let err = dynamic_range_error(&[1.0], &[1.0], max, idle).unwrap_err();
            assert!(
                matches!(err, StatsError::NonFinite { .. }),
                "max={max}, idle={idle}: {err}"
            );
        }
    }

    #[test]
    fn dre_rejects_non_finite_samples_with_typed_error() {
        let err = dynamic_range_error(&[1.0, f64::NAN], &[1.0, 2.0], 10.0, 5.0).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { .. }), "{err}");
        let err = dynamic_range_error(&[1.0, 2.0], &[f64::INFINITY, 2.0], 10.0, 5.0).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { .. }), "{err}");
    }

    #[test]
    fn percent_error_matches_table_iii_definition() {
        let p = [9.0, 11.0];
        let a = [10.0, 10.0];
        // rMSE = 1.0, mean = 10.0 → 10%.
        assert!((percent_error(&p, &a).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percent_error_zero_mean_rejected() {
        assert!(percent_error(&[1.0, -1.0], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn median_relative_error_ignores_zero_actuals() {
        let p = [1.0, 5.0, 11.0];
        let a = [0.0, 5.0, 10.0];
        // Only the 2nd and 3rd points count: |0|, |0.1| → median 0.05.
        assert!((median_relative_error(&p, &a).unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn r_squared_zero_variance_actual() {
        assert_eq!(r_squared(&[1.0, 2.0], &[5.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn r_squared_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((r_squared(&p, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn eval_metrics_bundle() {
        let a = [10.0, 12.0, 14.0, 16.0];
        let p = [10.5, 11.5, 14.5, 15.5];
        let m = EvalMetrics::compute(&p, &a, 20.0, 10.0).unwrap();
        assert!((m.rmse - 0.5).abs() < 1e-12);
        assert!((m.dre - 0.05).abs() < 1e-12);
        assert!(m.r_squared > 0.9);
    }
}
