//! Ordinary least squares with coefficient covariance and Wald tests.
//!
//! This is the workhorse of both the baseline linear power model (Eq. 1)
//! and the stepwise elimination in Algorithm 1: each elimination round
//! refits OLS and inspects the Wald z-statistics of the coefficients.

use crate::dist;
use crate::matrix::{Matrix, QrFactorization};
use crate::StatsError;
use serde::{Deserialize, Serialize};

/// A fitted ordinary-least-squares model.
///
/// The design matrix is taken as-is; callers that want an intercept should
/// include a column of ones (see [`Matrix::with_intercept`]).
///
/// # Example
///
/// ```
/// use chaos_stats::{Matrix, ols::OlsFit};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0],
/// ])?.with_intercept();
/// let y = [5.1, 6.9, 9.2, 10.8, 13.1];
/// let fit = OlsFit::fit(&x, &y)?;
/// let pred = fit.predict_row(&[1.0, 2.5])?;
/// assert!((pred - 10.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OlsFit {
    coefficients: Vec<f64>,
    std_errors: Vec<f64>,
    residual_variance: f64,
    n: usize,
    r_squared: f64,
}

impl OlsFit {
    /// Fits `y ≈ X·β` by least squares.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    /// * [`StatsError::InsufficientData`] if there are not strictly more
    ///   rows than columns (residual variance would be undefined).
    /// * [`StatsError::Singular`] if the design matrix is rank-deficient.
    pub fn fit(x: &Matrix, y: &[f64]) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("ols: y has {} entries, X has {n} rows", y.len()),
            });
        }
        if n <= p {
            return Err(StatsError::InsufficientData {
                observations: n,
                required: p + 1,
            });
        }
        let qr = QrFactorization::compute(x)?;
        let coefficients = qr.solve(y)?;
        let fitted = x.matvec(&coefficients)?;
        let rss: f64 = y.iter().zip(&fitted).map(|(a, f)| (a - f).powi(2)).sum();
        let residual_variance = rss / (n - p) as f64;
        let xtx_inv = qr.xtx_inverse()?;
        let std_errors: Vec<f64> = (0..p)
            .map(|j| (residual_variance * xtx_inv.get(j, j)).max(0.0).sqrt())
            .collect();
        let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
        let tss: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        Ok(OlsFit {
            coefficients,
            std_errors,
            residual_variance,
            n,
            r_squared,
        })
    }

    /// Assembles a fit from precomputed pieces (used by the normal-equation
    /// path in [`crate::gram`], which solves the same least-squares problem
    /// from a cached Gram matrix instead of a fresh QR factorization).
    pub(crate) fn from_parts(
        coefficients: Vec<f64>,
        std_errors: Vec<f64>,
        residual_variance: f64,
        n: usize,
        r_squared: f64,
    ) -> Self {
        OlsFit {
            coefficients,
            std_errors,
            residual_variance,
            n,
            r_squared,
        }
    }

    /// Fitted coefficients, in design-matrix column order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Standard errors of the coefficients.
    pub fn std_errors(&self) -> &[f64] {
        &self.std_errors
    }

    /// Estimated residual variance `σ̂² = RSS / (n − p)`.
    pub fn residual_variance(&self) -> f64 {
        self.residual_variance
    }

    /// Number of observations used in the fit.
    pub fn n_observations(&self) -> usize {
        self.n
    }

    /// In-sample coefficient of determination.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Wald z-statistic for coefficient `j`: `β̂ⱼ / se(β̂ⱼ)`.
    ///
    /// Returns `f64::INFINITY` when the standard error is zero but the
    /// coefficient is not (an exact fit).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn wald_z(&self, j: usize) -> f64 {
        let se = self.std_errors[j];
        let b = self.coefficients[j];
        if se == 0.0 {
            if b == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            b / se
        }
    }

    /// Two-sided Wald p-value for coefficient `j` under the normal
    /// approximation.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn p_value(&self, j: usize) -> f64 {
        dist::wald_p_value(self.wald_z(j))
    }

    /// Predicts the response for one design-matrix row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row.len()` differs from
    /// the number of coefficients.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "predict: row has {} entries, model has {} coefficients",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(row.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum())
    }

    /// Predicts the response for every row of a design matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column count differs
    /// from the number of coefficients.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        x.matvec(&self.coefficients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(n: usize) -> (Matrix, Vec<f64>) {
        // y = 3 + 2x + deterministic "noise" from a fixed pattern.
        let noise = [0.05, -0.1, 0.08, -0.02, 0.0, 0.07, -0.06, 0.01];
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![1.0, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 + 2.0 * i as f64 + noise[i % noise.len()])
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_known_coefficients() {
        let (x, y) = noisy_line(40);
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!((fit.coefficients()[0] - 3.0).abs() < 0.1);
        assert!((fit.coefficients()[1] - 2.0).abs() < 0.01);
        assert!(fit.r_squared() > 0.999);
    }

    #[test]
    fn significant_slope_has_tiny_p_value() {
        let (x, y) = noisy_line(40);
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.p_value(1) < 1e-10);
    }

    #[test]
    fn irrelevant_feature_has_large_p_value() {
        // Add a pseudo-random column uncorrelated with the response noise.
        let n = 60;
        let hash = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0, i as f64, hash(i * 31 + 5)])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 + 2.0 * i as f64 + 0.4 * hash(i * 7 + 1))
            .collect();
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.p_value(1) < 1e-10, "true feature must stay significant");
        assert!(
            fit.p_value(2) > 0.05,
            "noise feature p = {}",
            fit.p_value(2)
        );
    }

    #[test]
    fn exact_fit_has_zero_residual_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let y = [1.0, 2.0, 3.0];
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.residual_variance() < 1e-20);
        assert_eq!(fit.n_observations(), 3);
    }

    #[test]
    fn rejects_underdetermined() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            OlsFit::fit(&x, &[1.0, 2.0]).unwrap_err(),
            StatsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn rejects_mismatched_y() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert!(OlsFit::fit(&x, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn predict_matches_manual_dot_product() {
        let (x, y) = noisy_line(20);
        let fit = OlsFit::fit(&x, &y).unwrap();
        let preds = fit.predict(&x).unwrap();
        let manual = fit.predict_row(x.row(5)).unwrap();
        assert!((preds[5] - manual).abs() < 1e-12);
        assert!(fit.predict_row(&[1.0]).is_err());
    }

    #[test]
    fn std_errors_shrink_with_more_data() {
        let (x1, y1) = noisy_line(16);
        let (x2, y2) = noisy_line(160);
        let f1 = OlsFit::fit(&x1, &y1).unwrap();
        let f2 = OlsFit::fit(&x2, &y2).unwrap();
        assert!(f2.std_errors()[1] < f1.std_errors()[1]);
    }
}
