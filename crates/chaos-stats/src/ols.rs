//! Ordinary least squares with coefficient covariance and Wald tests.
//!
//! This is the workhorse of both the baseline linear power model (Eq. 1)
//! and the stepwise elimination in Algorithm 1: each elimination round
//! refits OLS and inspects the Wald z-statistics of the coefficients.
//!
//! [`WindowedOls`] is the streaming counterpart: it maintains the
//! normal equations of a sliding window incrementally, paying `O(k²)`
//! per sample via rank-1 Cholesky update/downdate
//! ([`CholeskyFactor`](crate::gram::CholeskyFactor)) instead of
//! refactorizing the window from scratch.

use crate::dist;
use crate::gram::CholeskyFactor;
use crate::matrix::{Matrix, QrFactorization};
use crate::StatsError;
use serde::{Deserialize, Serialize};

/// A fitted ordinary-least-squares model.
///
/// The design matrix is taken as-is; callers that want an intercept should
/// include a column of ones (see [`Matrix::with_intercept`]).
///
/// # Example
///
/// ```
/// use chaos_stats::{Matrix, ols::OlsFit};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0],
/// ])?.with_intercept();
/// let y = [5.1, 6.9, 9.2, 10.8, 13.1];
/// let fit = OlsFit::fit(&x, &y)?;
/// let pred = fit.predict_row(&[1.0, 2.5])?;
/// assert!((pred - 10.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OlsFit {
    coefficients: Vec<f64>,
    std_errors: Vec<f64>,
    residual_variance: f64,
    n: usize,
    r_squared: f64,
}

impl OlsFit {
    /// Fits `y ≈ X·β` by least squares.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `y.len() != x.rows()`.
    /// * [`StatsError::InsufficientData`] if there are not strictly more
    ///   rows than columns (residual variance would be undefined).
    /// * [`StatsError::Singular`] if the design matrix is rank-deficient.
    pub fn fit(x: &Matrix, y: &[f64]) -> Result<Self, StatsError> {
        let (n, p) = (x.rows(), x.cols());
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: format!("ols: y has {} entries, X has {n} rows", y.len()),
            });
        }
        if n <= p {
            return Err(StatsError::InsufficientData {
                observations: n,
                required: p + 1,
            });
        }
        let qr = QrFactorization::compute(x)?;
        let coefficients = qr.solve(y)?;
        let fitted = x.matvec(&coefficients)?;
        let rss: f64 = y.iter().zip(&fitted).map(|(a, f)| (a - f).powi(2)).sum();
        let residual_variance = rss / (n - p) as f64;
        let xtx_inv = qr.xtx_inverse()?;
        let std_errors: Vec<f64> = (0..p)
            .map(|j| (residual_variance * xtx_inv.get(j, j)).max(0.0).sqrt())
            .collect();
        let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
        let tss: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        Ok(OlsFit {
            coefficients,
            std_errors,
            residual_variance,
            n,
            r_squared,
        })
    }

    /// Assembles a fit from precomputed pieces (used by the normal-equation
    /// path in [`crate::gram`], which solves the same least-squares problem
    /// from a cached Gram matrix instead of a fresh QR factorization).
    pub(crate) fn from_parts(
        coefficients: Vec<f64>,
        std_errors: Vec<f64>,
        residual_variance: f64,
        n: usize,
        r_squared: f64,
    ) -> Self {
        OlsFit {
            coefficients,
            std_errors,
            residual_variance,
            n,
            r_squared,
        }
    }

    /// Fitted coefficients, in design-matrix column order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Standard errors of the coefficients.
    pub fn std_errors(&self) -> &[f64] {
        &self.std_errors
    }

    /// Estimated residual variance `σ̂² = RSS / (n − p)`.
    pub fn residual_variance(&self) -> f64 {
        self.residual_variance
    }

    /// Number of observations used in the fit.
    pub fn n_observations(&self) -> usize {
        self.n
    }

    /// In-sample coefficient of determination.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Wald z-statistic for coefficient `j`: `β̂ⱼ / se(β̂ⱼ)`.
    ///
    /// Returns `f64::INFINITY` when the standard error is zero but the
    /// coefficient is not (an exact fit).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn wald_z(&self, j: usize) -> f64 {
        let se = self.std_errors[j];
        let b = self.coefficients[j];
        if se == 0.0 {
            if b == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            b / se
        }
    }

    /// Two-sided Wald p-value for coefficient `j` under the normal
    /// approximation.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn p_value(&self, j: usize) -> f64 {
        dist::wald_p_value(self.wald_z(j))
    }

    /// Predicts the response for one design-matrix row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row.len()` differs from
    /// the number of coefficients.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, StatsError> {
        if row.len() != self.coefficients.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "predict: row has {} entries, model has {} coefficients",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(row.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum())
    }

    /// Predicts the response for every row of a design matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column count differs
    /// from the number of coefficients.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        x.matvec(&self.coefficients)
    }

    /// Exports the fit as plain data for checkpointing.
    pub fn export_state(&self) -> OlsFitState {
        OlsFitState {
            coefficients: self.coefficients.clone(),
            std_errors: self.std_errors.clone(),
            residual_variance: self.residual_variance,
            n: self.n,
            r_squared: self.r_squared,
        }
    }

    /// Rebuilds a fit from exported state.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the coefficient and
    /// standard-error vectors disagree in length, or
    /// [`StatsError::InvalidParameter`] if either is empty.
    pub fn import_state(state: OlsFitState) -> Result<Self, StatsError> {
        if state.coefficients.is_empty() {
            return Err(StatsError::InvalidParameter {
                context: "ols import: empty coefficient vector".to_string(),
            });
        }
        if state.coefficients.len() != state.std_errors.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "ols import: {} coefficients but {} std errors",
                    state.coefficients.len(),
                    state.std_errors.len()
                ),
            });
        }
        Ok(OlsFit {
            coefficients: state.coefficients,
            std_errors: state.std_errors,
            residual_variance: state.residual_variance,
            n: state.n,
            r_squared: state.r_squared,
        })
    }
}

/// Plain-data snapshot of an [`OlsFit`], produced by
/// [`OlsFit::export_state`] and consumed by [`OlsFit::import_state`].
/// All fields are public so external codecs (e.g. the chaos-stream
/// checkpoint format) can serialize them bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFitState {
    /// Fitted coefficients, design-matrix column order.
    pub coefficients: Vec<f64>,
    /// Standard errors of the coefficients.
    pub std_errors: Vec<f64>,
    /// Estimated residual variance.
    pub residual_variance: f64,
    /// Number of observations used in the fit.
    pub n: usize,
    /// In-sample coefficient of determination.
    pub r_squared: f64,
}

/// Plain-data snapshot of a [`WindowedOls`], produced by
/// [`WindowedOls::export_state`] and consumed by
/// [`WindowedOls::import_state`]. The maintained Cholesky factor is
/// carried as its exported lower triangle (empty when the factor was
/// dropped), so a restored solver takes the exact numeric path the
/// original would have.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedOlsState {
    /// Feature columns (excluding the implicit intercept).
    pub p: usize,
    /// Augmented Gram matrix over `[1 | X]`, row-major `(p+1)²`.
    pub gram: Vec<f64>,
    /// `[1 | X]'y`.
    pub xty: Vec<f64>,
    /// `y'y`.
    pub yty: f64,
    /// Rows currently in the window.
    pub n: usize,
    /// Exported lower triangle of the maintained factor; empty when the
    /// factor was dropped (a failed downdate) at snapshot time.
    pub chol_lower: Vec<f64>,
    /// Full-refactorization count at snapshot time.
    pub refactorizations: usize,
}

/// Incremental least squares over a sliding window of observations.
///
/// Maintains the augmented normal equations (`[1 | X]'[1 | X]`,
/// `[1 | X]'y`, `y'y`) of whatever rows are currently "in", together
/// with a rank-1-maintained [`CholeskyFactor`], so that after each
/// [`push`](WindowedOls::push)/[`pop`](WindowedOls::pop) pair a fresh
/// [`fit`](WindowedOls::fit) costs `O(k²)` in the feature count `k` —
/// independent of the window length. This is the numeric core of the
/// streaming engine's coefficient-refresh refit tier.
///
/// The caller is responsible for popping exactly the rows it pushed
/// (the ring-buffer window in `chaos-stream` does this); the solver
/// itself only sees the algebra. When a downdate loses positive
/// definiteness — numerically possible even for well-posed windows —
/// the maintained factor is dropped and the next `fit` refactorizes
/// from the accumulated products in `O(k³)`;
/// [`refactorizations`](WindowedOls::refactorizations) counts these
/// fallbacks.
///
/// Coefficient layout matches [`OlsFit::fit`] on an
/// intercept-augmented design: coefficient 0 is the intercept,
/// coefficient `j + 1` belongs to feature column `j`.
///
/// # Example
///
/// ```
/// use chaos_stats::ols::WindowedOls;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// let mut w = WindowedOls::new(1);
/// // y = 1 + 2x with a stray early outlier that then slides out.
/// w.push(&[10.0], 100.0)?;
/// for i in 0..6 {
///     w.push(&[i as f64], 1.0 + 2.0 * i as f64)?;
/// }
/// w.pop(&[10.0], 100.0)?; // outlier leaves the window
/// let fit = w.fit()?;
/// assert!((fit.coefficients()[0] - 1.0).abs() < 1e-8);
/// assert!((fit.coefficients()[1] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WindowedOls {
    /// Feature columns (the intercept is implicit).
    p: usize,
    /// Augmented Gram matrix over `[1 | X]`, row-major `(p+1)²`.
    gram: Vec<f64>,
    /// `[1 | X]'y`.
    xty: Vec<f64>,
    /// `y'y`.
    yty: f64,
    /// Rows currently in the window.
    n: usize,
    /// Maintained factor of `gram`; `None` after a failed downdate until
    /// the next fit rebuilds it.
    chol: Option<CholeskyFactor>,
    refactorizations: usize,
    /// How many downdates lost positive definiteness and dropped the
    /// factor. Diagnostic only — excluded from [`WindowedOlsState`] so
    /// the checkpoint byte format is unchanged; restored solvers start
    /// from zero.
    downdate_fallbacks: usize,
    /// Reused augmented-row buffer (`[1 | x]`) for push/pop; never
    /// observable, so it is excluded from snapshots and equality.
    aug_scratch: Vec<f64>,
}

impl WindowedOls {
    /// An empty window solver for `p` feature columns.
    // chaos-lint: cold — solver construction happens at engine setup and machine readmission, never on the steady tick
    pub fn new(p: usize) -> Self {
        let d = p + 1;
        WindowedOls {
            p,
            gram: vec![0.0; d * d],
            xty: vec![0.0; d],
            yty: 0.0,
            n: 0,
            chol: None,
            refactorizations: 0,
            downdate_fallbacks: 0,
            aug_scratch: Vec::new(),
        }
    }

    /// Number of rows currently in the window.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of feature columns (excluding the implicit intercept).
    pub fn n_features(&self) -> usize {
        self.p
    }

    /// How many times a failed downdate (or a first fit) forced a full
    /// `O(k³)` refactorization instead of the `O(k²)` incremental path.
    pub fn refactorizations(&self) -> usize {
        self.refactorizations
    }

    /// How many downdates lost positive definiteness and dropped the
    /// maintained factor. A window sliding down to exactly `k = p + 1`
    /// rows (or fewer) sits on the rank boundary where this is
    /// *structural*, not numerical — the counter makes that fallback
    /// frequency observable instead of silent. Not persisted in
    /// [`WindowedOlsState`]; a restored solver counts from zero.
    pub fn downdate_fallbacks(&self) -> usize {
        self.downdate_fallbacks
    }

    /// Adds one observation to the window.
    ///
    /// # Errors
    ///
    /// * [`StatsError::DimensionMismatch`] if `row.len() != p`.
    /// * [`StatsError::NonFinite`] if `row` or `y` is non-finite (the
    ///   accumulated state is left unchanged).
    pub fn push(&mut self, row: &[f64], y: f64) -> Result<(), StatsError> {
        self.validate(row, y, "push")?;
        let v = self.take_augmented(row);
        self.accumulate(&v, y, 1.0);
        self.n += 1;
        let updated = match self.chol.as_mut() {
            Some(chol) => chol.update(&v),
            None => Ok(()),
        };
        self.aug_scratch = v;
        updated
    }

    /// Removes one observation from the window. The row must be one that
    /// was previously pushed and not yet popped, or the accumulated
    /// normal equations stop describing any real window.
    ///
    /// A downdate that loses positive definiteness is not an error here:
    /// the maintained factor is dropped and rebuilt on the next
    /// [`fit`](WindowedOls::fit).
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if the window is empty.
    /// * [`StatsError::DimensionMismatch`] if `row.len() != p`.
    /// * [`StatsError::NonFinite`] if `row` or `y` is non-finite.
    pub fn pop(&mut self, row: &[f64], y: f64) -> Result<(), StatsError> {
        if self.n == 0 {
            return Err(StatsError::InvalidParameter {
                context: "windowed ols: pop from an empty window".to_string(),
            });
        }
        self.validate(row, y, "pop")?;
        let v = self.take_augmented(row);
        self.accumulate(&v, y, -1.0);
        self.n -= 1;
        if let Some(chol) = self.chol.as_mut() {
            if chol.downdate(&v).is_err() {
                self.chol = None;
                self.downdate_fallbacks += 1;
                chaos_obs::add("windowed_ols.downdate_fallbacks", 1);
            }
        }
        self.aug_scratch = v;
        Ok(())
    }

    /// Solves the window's normal equations, reusing the maintained
    /// Cholesky factor when it is live.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientData`] if the window holds `≤ p + 1`
    ///   rows.
    /// * [`StatsError::Singular`] if the window's Gram matrix is not
    ///   positive definite (collinear window contents).
    pub fn fit(&mut self) -> Result<OlsFit, StatsError> {
        let k = self.p + 1;
        if self.n <= k {
            return Err(StatsError::InsufficientData {
                observations: self.n,
                required: k + 1,
            });
        }
        if self.chol.is_none() {
            self.chol = Some(CholeskyFactor::from_matrix(&self.gram, k)?);
            self.refactorizations += 1;
            chaos_obs::add("windowed_ols.refactorizations", 1);
        }
        // chaos-lint: allow(R4) — the is_none branch directly above
        // fills the factor, so it is always present here.
        let chol = self.chol.as_ref().expect("factor ensured above");
        let beta = chol.solve(&self.xty)?;

        // RSS from the accumulated products: y'y − 2β'X'y + β'(X'X)β.
        let mut quad = 0.0;
        for i in 0..k {
            let mut acc = 0.0;
            for j in 0..k {
                acc += self.gram[i * k + j] * beta[j];
            }
            quad += beta[i] * acc;
        }
        let dot_by: f64 = beta.iter().zip(&self.xty).map(|(b, v)| b * v).sum();
        let rss = (self.yty - 2.0 * dot_by + quad).max(0.0);
        let residual_variance = rss / (self.n - k) as f64;

        let mut std_errors = vec![0.0; k];
        for (j, se) in std_errors.iter_mut().enumerate() {
            let mut e = vec![0.0; k];
            e[j] = 1.0;
            let z = chol.solve(&e)?;
            *se = (residual_variance * z[j]).max(0.0).sqrt();
        }

        // chaos-lint: allow(R4) — xty always has the intercept slot
        // (k >= 1 is checked at window construction).
        let mean_y = self.xty[0] / self.n as f64;
        let tss = (self.yty - self.n as f64 * mean_y * mean_y).max(0.0);
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
        Ok(OlsFit::from_parts(
            beta,
            std_errors,
            residual_variance,
            self.n,
            r_squared,
        ))
    }

    /// Exports the full solver state (normal equations plus the
    /// maintained factor) as plain data for checkpointing.
    pub fn export_state(&self) -> WindowedOlsState {
        WindowedOlsState {
            p: self.p,
            gram: self.gram.clone(),
            xty: self.xty.clone(),
            yty: self.yty,
            n: self.n,
            chol_lower: self
                .chol
                .as_ref()
                .map(|c| c.lower().to_vec())
                .unwrap_or_default(),
            refactorizations: self.refactorizations,
        }
    }

    /// Rebuilds a solver from exported state.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the Gram matrix,
    /// `X'y` vector, or factor triangle do not match `(p+1)²`/`p+1`, or
    /// errors from [`CholeskyFactor::from_lower`] for a malformed factor.
    pub fn import_state(state: WindowedOlsState) -> Result<Self, StatsError> {
        let d = state.p + 1;
        if state.gram.len() != d * d || state.xty.len() != d {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "windowed ols import: gram {} / xty {} entries for p = {}",
                    state.gram.len(),
                    state.xty.len(),
                    state.p
                ),
            });
        }
        let chol = if state.chol_lower.is_empty() {
            None
        } else {
            Some(CholeskyFactor::from_lower(state.chol_lower, d)?)
        };
        Ok(WindowedOls {
            p: state.p,
            gram: state.gram,
            xty: state.xty,
            yty: state.yty,
            n: state.n,
            chol,
            refactorizations: state.refactorizations,
            downdate_fallbacks: 0,
            aug_scratch: Vec::new(),
        })
    }

    /// Validates one observation's shape and finiteness.
    fn validate(&self, row: &[f64], y: f64, op: &str) -> Result<(), StatsError> {
        if row.len() != self.p {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "windowed ols {op}: row has {} entries, expected {}",
                    row.len(),
                    self.p
                ),
            });
        }
        if !y.is_finite() || row.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFinite {
                context: format!("windowed ols {op}: non-finite observation"),
            });
        }
        Ok(())
    }

    /// Fills and detaches the reused augmented-row buffer `[1 | x]`.
    /// The caller must hand the buffer back via `self.aug_scratch = v`
    /// on every path, keeping steady-state push/pop allocation-free.
    fn take_augmented(&mut self, row: &[f64]) -> Vec<f64> {
        let mut v = std::mem::take(&mut self.aug_scratch);
        v.clear();
        v.push(1.0);
        v.extend_from_slice(row);
        v
    }

    /// Adds (`sign = 1`) or subtracts (`sign = −1`) one augmented row's
    /// cross products.
    fn accumulate(&mut self, v: &[f64], y: f64, sign: f64) {
        let k = self.p + 1;
        for (i, &vi) in v.iter().enumerate() {
            self.xty[i] += sign * vi * y;
            for (j, &vj) in v.iter().enumerate() {
                self.gram[i * k + j] += sign * vi * vj;
            }
        }
        self.yty += sign * y * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(n: usize) -> (Matrix, Vec<f64>) {
        // y = 3 + 2x + deterministic "noise" from a fixed pattern.
        let noise = [0.05, -0.1, 0.08, -0.02, 0.0, 0.07, -0.06, 0.01];
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![1.0, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 + 2.0 * i as f64 + noise[i % noise.len()])
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_known_coefficients() {
        let (x, y) = noisy_line(40);
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!((fit.coefficients()[0] - 3.0).abs() < 0.1);
        assert!((fit.coefficients()[1] - 2.0).abs() < 0.01);
        assert!(fit.r_squared() > 0.999);
    }

    #[test]
    fn significant_slope_has_tiny_p_value() {
        let (x, y) = noisy_line(40);
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.p_value(1) < 1e-10);
    }

    #[test]
    fn irrelevant_feature_has_large_p_value() {
        // Add a pseudo-random column uncorrelated with the response noise.
        let n = 60;
        let hash = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0, i as f64, hash(i * 31 + 5)])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 3.0 + 2.0 * i as f64 + 0.4 * hash(i * 7 + 1))
            .collect();
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.p_value(1) < 1e-10, "true feature must stay significant");
        assert!(
            fit.p_value(2) > 0.05,
            "noise feature p = {}",
            fit.p_value(2)
        );
    }

    #[test]
    fn exact_fit_has_zero_residual_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let y = [1.0, 2.0, 3.0];
        let fit = OlsFit::fit(&x, &y).unwrap();
        assert!(fit.residual_variance() < 1e-20);
        assert_eq!(fit.n_observations(), 3);
    }

    #[test]
    fn rejects_underdetermined() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            OlsFit::fit(&x, &[1.0, 2.0]).unwrap_err(),
            StatsError::InsufficientData { .. }
        ));
    }

    #[test]
    fn rejects_mismatched_y() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert!(OlsFit::fit(&x, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn predict_matches_manual_dot_product() {
        let (x, y) = noisy_line(20);
        let fit = OlsFit::fit(&x, &y).unwrap();
        let preds = fit.predict(&x).unwrap();
        let manual = fit.predict_row(x.row(5)).unwrap();
        assert!((preds[5] - manual).abs() < 1e-12);
        assert!(fit.predict_row(&[1.0]).is_err());
    }

    #[test]
    fn std_errors_shrink_with_more_data() {
        let (x1, y1) = noisy_line(16);
        let (x2, y2) = noisy_line(160);
        let f1 = OlsFit::fit(&x1, &y1).unwrap();
        let f2 = OlsFit::fit(&x2, &y2).unwrap();
        assert!(f2.std_errors()[1] < f1.std_errors()[1]);
    }

    /// Deterministic pseudo-random rows for the windowed solver.
    fn stream_rows(n: usize, p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..p).map(|j| det(i * p + j + 1) * 4.0).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 + r.iter().sum::<f64>() + 0.1 * det(i * 13 + 7))
            .collect();
        (rows, y)
    }

    /// Batch QR fit of `rows[lo..hi]` with an explicit intercept.
    fn batch_fit(rows: &[Vec<f64>], y: &[f64], lo: usize, hi: usize) -> OlsFit {
        let x = Matrix::from_rows(&rows[lo..hi]).unwrap().with_intercept();
        OlsFit::fit(&x, &y[lo..hi]).unwrap()
    }

    #[test]
    fn windowed_matches_batch_after_slides() {
        let p = 3;
        let (rows, y) = stream_rows(40, p);
        let mut w = WindowedOls::new(p);
        for i in 0..20 {
            w.push(&rows[i], y[i]).unwrap();
        }
        // Slide the window forward ten times: [10, 30).
        for i in 20..30 {
            w.push(&rows[i], y[i]).unwrap();
            w.pop(&rows[i - 20], y[i - 20]).unwrap();
        }
        assert_eq!(w.len(), 20);
        let windowed = w.fit().unwrap();
        let batch = batch_fit(&rows, &y, 10, 30);
        for (a, b) in windowed.coefficients().iter().zip(batch.coefficients()) {
            assert!((a - b).abs() < 1e-8, "coef {a} vs {b}");
        }
        for (a, b) in windowed.std_errors().iter().zip(batch.std_errors()) {
            assert!((a - b).abs() < 1e-6, "se {a} vs {b}");
        }
        assert!((windowed.r_squared() - batch.r_squared()).abs() < 1e-8);
    }

    #[test]
    fn windowed_survives_downdate_fallback() {
        let p = 2;
        let (rows, y) = stream_rows(30, p);
        let mut w = WindowedOls::new(p);
        // Shrink to the bare minimum and grow again — the downdates near
        // the minimum stress the factor; a dropped factor must rebuild.
        for i in 0..10 {
            w.push(&rows[i], y[i]).unwrap();
        }
        let _ = w.fit().unwrap(); // builds the factor
        for i in 0..6 {
            w.pop(&rows[i], y[i]).unwrap();
        }
        for i in 10..20 {
            w.push(&rows[i], y[i]).unwrap();
        }
        let windowed = w.fit().unwrap();
        let expected_rows: Vec<Vec<f64>> =
            rows[6..10].iter().chain(&rows[10..20]).cloned().collect();
        let expected_y: Vec<f64> = y[6..10].iter().chain(&y[10..20]).copied().collect();
        let x = Matrix::from_rows(&expected_rows).unwrap().with_intercept();
        let batch = OlsFit::fit(&x, &expected_y).unwrap();
        for (a, b) in windowed.coefficients().iter().zip(batch.coefficients()) {
            assert!((a - b).abs() < 1e-7, "coef {a} vs {b}");
        }
    }

    #[test]
    fn shrink_to_exactly_k_rows_pins_typed_outcome() {
        // p = 2 features → k = 3 augmented columns. Sliding the window
        // down to exactly k rows sits on the rank boundary: the pops
        // themselves must stay Ok (a lost factor is a fallback, not an
        // error), fit() must report the typed InsufficientData outcome,
        // and the fallback count must be observable — not silent.
        let p = 2;
        let k = p + 1;
        let (rows, y) = stream_rows(20, p);
        let mut w = WindowedOls::new(p);
        for i in 0..8 {
            w.push(&rows[i], y[i]).unwrap();
        }
        let _ = w.fit().unwrap(); // builds the maintained factor
        assert_eq!(w.refactorizations(), 1);
        assert_eq!(w.downdate_fallbacks(), 0);
        for i in 0..8 - k {
            w.pop(&rows[i], y[i]).unwrap();
        }
        assert_eq!(w.len(), k);
        // At n == k the normal equations are at best rank k: residual
        // variance is undefined, so the outcome is typed, not numeric.
        match w.fit() {
            Err(StatsError::InsufficientData {
                observations,
                required,
            }) => {
                assert_eq!(observations, k);
                assert_eq!(required, k + 1);
            }
            other => panic!("expected InsufficientData at n == k, got {other:?}"),
        }
        // Shrinking one step past the boundary makes the Gram singular,
        // so the downdate *must* drop the factor and count the fallback.
        w.pop(&rows[8 - k], y[8 - k]).unwrap();
        assert_eq!(w.len(), k - 1);
        assert!(
            w.downdate_fallbacks() >= 1,
            "structural rank loss must be counted, not silent"
        );
        // Growing back past k rows must recover via refactorization and
        // agree with a batch fit of the surviving window.
        for i in 8..16 {
            w.push(&rows[i], y[i]).unwrap();
        }
        let refits_before = w.refactorizations();
        let windowed = w.fit().unwrap();
        assert!(w.refactorizations() > refits_before || w.downdate_fallbacks() == 0);
        let kept: Vec<Vec<f64>> = rows[8 - k + 1..8]
            .iter()
            .chain(&rows[8..16])
            .cloned()
            .collect();
        let kept_y: Vec<f64> = y[8 - k + 1..8].iter().chain(&y[8..16]).copied().collect();
        let x = Matrix::from_rows(&kept).unwrap().with_intercept();
        let batch = OlsFit::fit(&x, &kept_y).unwrap();
        for (a, b) in windowed.coefficients().iter().zip(batch.coefficients()) {
            assert!((a - b).abs() < 1e-7, "coef {a} vs {b}");
        }
    }

    #[test]
    fn windowed_rejects_bad_observations() {
        let mut w = WindowedOls::new(2);
        assert!(matches!(
            w.push(&[1.0], 2.0),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            w.push(&[1.0, f64::NAN], 2.0),
            Err(StatsError::NonFinite { .. })
        ));
        assert!(matches!(
            w.push(&[1.0, 2.0], f64::INFINITY),
            Err(StatsError::NonFinite { .. })
        ));
        assert!(matches!(
            w.pop(&[1.0, 2.0], 3.0),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(w.is_empty());
        w.push(&[1.0, 2.0], 3.0).unwrap();
        assert!(matches!(w.fit(), Err(StatsError::InsufficientData { .. })));
    }
}
