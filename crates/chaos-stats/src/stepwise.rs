//! Backward stepwise regression driven by Wald significance tests.
//!
//! Algorithm 1, step 4 (and again step 6 at the cluster level): iteratively
//! eliminate the feature whose Wald test shows the lowest confidence that
//! its coefficient differs from zero, refit, and repeat until every
//! remaining feature is significant.

use crate::gram::GramCache;
use crate::matrix::Matrix;
use crate::ols::OlsFit;
use crate::StatsError;

/// Configuration for backward stepwise elimination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepwiseConfig {
    /// Features with a Wald p-value above this threshold are candidates for
    /// elimination. The conventional 0.05 is the default.
    pub alpha: f64,
    /// Never eliminate below this many features (not counting the
    /// intercept). The paper's models always retain at least CPU
    /// utilization, so pipelines typically set this to 1.
    pub min_features: usize,
}

impl Default for StepwiseConfig {
    fn default() -> Self {
        StepwiseConfig {
            alpha: 0.05,
            min_features: 1,
        }
    }
}

/// Result of a backward stepwise elimination.
#[derive(Debug, Clone)]
pub struct StepwiseResult {
    /// Indices (into the original feature matrix) of the retained features,
    /// in their original order.
    pub selected: Vec<usize>,
    /// The final OLS fit over `[intercept | selected features]`.
    pub fit: OlsFit,
    /// Number of elimination rounds performed.
    pub rounds: usize,
}

/// Runs backward stepwise elimination on feature matrix `x` (no intercept
/// column; one is added internally) against response `y`.
///
/// At each round the least-significant feature (highest Wald p-value above
/// `alpha`) is removed and the model refit, until all remaining features
/// are significant or `min_features` is reached. If the initial design is
/// singular (e.g. duplicate counters survived correlation pruning), columns
/// are greedily dropped until a full-rank design is found.
///
/// # Errors
///
/// * [`StatsError::InvalidParameter`] if `alpha` is outside `(0, 1)` or
///   `x` has no columns.
/// * [`StatsError::InsufficientData`] if there are not enough rows to fit
///   even the minimal model.
/// * [`StatsError::Singular`] if no full-rank subset of columns exists.
///
/// # Example
///
/// ```
/// use chaos_stats::{Matrix, stepwise::{backward_eliminate, StepwiseConfig}};
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // Feature 0 drives y; feature 1 is noise.
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| {
///     let t = i as f64;
///     vec![t, ((t * 12.9898).sin() * 43758.5453).fract()]
/// }).collect();
/// let x = Matrix::from_rows(&rows)?;
/// let y: Vec<f64> = (0..100).map(|i| {
///     2.0 * i as f64 + ((i as f64 * 7.77).sin() * 1031.7).fract()
/// }).collect();
/// let result = backward_eliminate(&x, &y, &StepwiseConfig::default())?;
/// assert_eq!(result.selected, vec![0]);
/// # Ok(())
/// # }
/// ```
pub fn backward_eliminate(
    x: &Matrix,
    y: &[f64],
    config: &StepwiseConfig,
) -> Result<StepwiseResult, StatsError> {
    if !(0.0..1.0).contains(&config.alpha) || config.alpha == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: format!("stepwise: alpha must be in (0, 1), got {}", config.alpha),
        });
    }
    if x.cols() == 0 {
        return Err(StatsError::InvalidParameter {
            context: "stepwise: feature matrix has no columns".into(),
        });
    }

    let mut selected: Vec<usize> = (0..x.cols()).collect();
    let mut rounds = 0;

    let mut fit = fit_full_rank(x, y, &mut selected)?;
    loop {
        // Coefficient j+1 corresponds to selected[j] (slot 0 is intercept).
        let mut worst: Option<(usize, f64)> = None;
        for (j, _) in selected.iter().enumerate() {
            let p = fit.p_value(j + 1);
            if p > config.alpha {
                match worst {
                    Some((_, wp)) if wp >= p => {}
                    _ => worst = Some((j, p)),
                }
            }
        }
        match worst {
            Some((j, _)) if selected.len() > config.min_features => {
                selected.remove(j);
                rounds += 1;
                fit = fit_full_rank(x, y, &mut selected)?;
            }
            _ => break,
        }
    }

    Ok(StepwiseResult {
        selected,
        fit,
        rounds,
    })
}

/// Backward stepwise elimination over a [`GramCache`], for the hot
/// per-machine loop of Algorithm 1 step 4.
///
/// Behaves exactly like [`backward_eliminate`] on the cache's design
/// matrix — same elimination order, same tie-breaking, same full-rank
/// fallback — but every refit is answered from the cached `X'X` products
/// in `O(k³)` instead of a fresh `O(n·k²)` QR factorization, and repeat
/// subsets (across calls sharing the cache) cost a hash lookup. The
/// normal-equation solves agree with the QR path to ≈`1e-8` (see
/// [`crate::gram`]); on realistically conditioned counter data the
/// selected feature sets are identical.
///
/// # Errors
///
/// Same contract as [`backward_eliminate`].
///
/// # Example
///
/// ```
/// use chaos_stats::gram::GramCache;
/// use chaos_stats::stepwise::{backward_eliminate_cached, StepwiseConfig};
/// use chaos_stats::Matrix;
///
/// # fn main() -> Result<(), chaos_stats::StatsError> {
/// // Feature 0 drives y; feature 1 is noise.
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| {
///     let t = i as f64;
///     vec![t, ((t * 12.9898).sin() * 43758.5453).fract()]
/// }).collect();
/// let x = Matrix::from_rows(&rows)?;
/// let y: Vec<f64> = (0..100).map(|i| {
///     2.0 * i as f64 + ((i as f64 * 7.77).sin() * 1031.7).fract()
/// }).collect();
/// let mut cache = GramCache::new(&x, &y)?;
/// let result = backward_eliminate_cached(&mut cache, &StepwiseConfig::default())?;
/// assert_eq!(result.selected, vec![0]);
/// # Ok(())
/// # }
/// ```
pub fn backward_eliminate_cached(
    cache: &mut GramCache,
    config: &StepwiseConfig,
) -> Result<StepwiseResult, StatsError> {
    if !(0.0..1.0).contains(&config.alpha) || config.alpha == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: format!("stepwise: alpha must be in (0, 1), got {}", config.alpha),
        });
    }
    if cache.n_features() == 0 {
        return Err(StatsError::InvalidParameter {
            context: "stepwise: feature matrix has no columns".into(),
        });
    }

    let mut selected: Vec<usize> = (0..cache.n_features()).collect();
    let mut rounds = 0;

    let mut fit = fit_full_rank_cached(cache, &mut selected)?;
    loop {
        // Coefficient j+1 corresponds to selected[j] (slot 0 is intercept).
        let mut worst: Option<(usize, f64)> = None;
        for (j, _) in selected.iter().enumerate() {
            let p = fit.p_value(j + 1);
            if p > config.alpha {
                match worst {
                    Some((_, wp)) if wp >= p => {}
                    _ => worst = Some((j, p)),
                }
            }
        }
        match worst {
            Some((j, _)) if selected.len() > config.min_features => {
                selected.remove(j);
                rounds += 1;
                fit = fit_full_rank_cached(cache, &mut selected)?;
            }
            _ => break,
        }
    }

    Ok(StepwiseResult {
        selected,
        fit,
        rounds,
    })
}

/// Fits OLS over `[1 | x[:, selected]]`, greedily dropping columns (from the
/// back) that make the design singular. Mutates `selected` to the surviving
/// set.
fn fit_full_rank(x: &Matrix, y: &[f64], selected: &mut Vec<usize>) -> Result<OlsFit, StatsError> {
    loop {
        if selected.is_empty() {
            return Err(StatsError::Singular);
        }
        let design = x.select_cols(selected).with_intercept();
        match OlsFit::fit(&design, y) {
            Ok(fit) => return Ok(fit),
            Err(StatsError::Singular) => {
                // Drop the last column and retry: collinear counters are
                // interchangeable, so which one survives is immaterial.
                selected.pop();
            }
            Err(StatsError::InsufficientData { .. }) if selected.len() > 1 => {
                selected.pop();
            }
            Err(e) => return Err(e),
        }
    }
}

/// The [`GramCache`] twin of [`fit_full_rank`]: identical drop-from-the-back
/// fallback, but each attempt is a cached normal-equation solve.
fn fit_full_rank_cached(
    cache: &mut GramCache,
    selected: &mut Vec<usize>,
) -> Result<OlsFit, StatsError> {
    loop {
        if selected.is_empty() {
            return Err(StatsError::Singular);
        }
        match cache.fit_subset(selected) {
            Ok(fit) => return Ok(fit),
            Err(StatsError::Singular) => {
                // Drop the last column and retry: collinear counters are
                // interchangeable, so which one survives is immaterial.
                selected.pop();
            }
            Err(StatsError::InsufficientData { .. }) if selected.len() > 1 => {
                selected.pop();
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    /// Build a problem where features `signal` drive y and the rest are noise.
    fn problem(n: usize, p: usize, signal: &[usize]) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let feats: Vec<f64> = (0..p).map(|j| det_noise(i * p + j) * 5.0).collect();
            let mut v = 4.0 + 0.02 * det_noise(i * 131 + 17);
            for (k, &s) in signal.iter().enumerate() {
                v += (k as f64 + 1.5) * feats[s];
            }
            y.push(v);
            rows.push(feats);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn eliminates_noise_keeps_signal() {
        let (x, y) = problem(300, 10, &[1, 4, 7]);
        let result = backward_eliminate(&x, &y, &StepwiseConfig::default()).unwrap();
        assert_eq!(result.selected, vec![1, 4, 7]);
        assert!(result.rounds >= 1);
    }

    #[test]
    fn keeps_everything_when_all_significant() {
        let (x, y) = problem(300, 3, &[0, 1, 2]);
        let result = backward_eliminate(&x, &y, &StepwiseConfig::default()).unwrap();
        assert_eq!(result.selected, vec![0, 1, 2]);
        assert_eq!(result.rounds, 0);
    }

    #[test]
    fn respects_min_features() {
        // Pure-noise response: everything is insignificant, but we must
        // retain at least `min_features`.
        let (x, _) = problem(200, 5, &[]);
        let y: Vec<f64> = (0..200).map(|i| 3.0 + det_noise(i * 997 + 13)).collect();
        let result = backward_eliminate(
            &x,
            &y,
            &StepwiseConfig {
                alpha: 0.05,
                min_features: 2,
            },
        )
        .unwrap();
        assert_eq!(result.selected.len(), 2);
    }

    #[test]
    fn handles_duplicate_columns() {
        // Columns 0 and 1 identical: the initial fit is singular and one of
        // them must be dropped rather than erroring out.
        let n = 100;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = det_noise(i) * 3.0;
                vec![v, v, det_noise(i * 7 + 3)]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * det_noise(i) * 3.0 + 0.01 * det_noise(i * 13 + 5))
            .collect();
        let result = backward_eliminate(&x, &y, &StepwiseConfig::default()).unwrap();
        assert!(result.selected.contains(&0) || result.selected.contains(&1));
        assert!(!(result.selected.contains(&0) && result.selected.contains(&1)));
    }

    #[test]
    fn rejects_invalid_alpha() {
        let (x, y) = problem(50, 2, &[0]);
        for alpha in [0.0, 1.0, -0.5, 1.5] {
            let cfg = StepwiseConfig {
                alpha,
                min_features: 1,
            };
            assert!(backward_eliminate(&x, &y, &cfg).is_err(), "alpha {alpha}");
        }
    }

    #[test]
    fn cached_elimination_matches_qr_path() {
        for (n, p, signal) in [
            (300, 10, vec![1usize, 4, 7]),
            (300, 3, vec![0, 1, 2]),
            (200, 6, vec![2]),
        ] {
            let (x, y) = problem(n, p, &signal);
            let qr = backward_eliminate(&x, &y, &StepwiseConfig::default()).unwrap();
            let mut cache = GramCache::new(&x, &y).unwrap();
            let cached = backward_eliminate_cached(&mut cache, &StepwiseConfig::default()).unwrap();
            assert_eq!(qr.selected, cached.selected, "n={n} p={p}");
            assert_eq!(qr.rounds, cached.rounds);
            for (a, b) in qr.fit.coefficients().iter().zip(cached.fit.coefficients()) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cached_elimination_handles_duplicate_columns() {
        let n = 100;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = det_noise(i) * 3.0;
                vec![v, v, det_noise(i * 7 + 3)]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * det_noise(i) * 3.0 + 0.01 * det_noise(i * 13 + 5))
            .collect();
        let mut cache = GramCache::new(&x, &y).unwrap();
        let result = backward_eliminate_cached(&mut cache, &StepwiseConfig::default()).unwrap();
        assert!(result.selected.contains(&0) || result.selected.contains(&1));
        assert!(!(result.selected.contains(&0) && result.selected.contains(&1)));
    }

    #[test]
    fn cached_elimination_rejects_invalid_alpha() {
        let (x, y) = problem(50, 2, &[0]);
        let mut cache = GramCache::new(&x, &y).unwrap();
        let cfg = StepwiseConfig {
            alpha: 0.0,
            min_features: 1,
        };
        assert!(backward_eliminate_cached(&mut cache, &cfg).is_err());
    }

    #[test]
    fn final_fit_predicts_well() {
        let (x, y) = problem(300, 8, &[2, 5]);
        let result = backward_eliminate(&x, &y, &StepwiseConfig::default()).unwrap();
        let design = x.select_cols(&result.selected).with_intercept();
        let preds = result.fit.predict(&design).unwrap();
        let r2 = crate::metrics::r_squared(&preds, &y).unwrap();
        assert!(r2 > 0.99, "r2 = {r2}");
    }
}
