//! Property tests for the rank-1 Cholesky update/downdate
//! (`CholeskyFactor`) and the sliding-window solver built on it
//! (`WindowedOls`).
//!
//! The acceptance bar for the streaming engine's numeric core: across
//! random well-posed SPD matrices, one incremental update or downdate
//! must agree with a full refactorization of the explicitly modified
//! matrix to `1e-9` relative tolerance, and the near-singular downdate
//! path must refuse cleanly — returning `Singular` while leaving the
//! maintained factor bit-identical to its pre-call state.

use chaos_stats::gram::{CholeskyFactor, GramCache};
use chaos_stats::ols::{OlsFit, WindowedOls};
use chaos_stats::{Matrix, StatsError};
use proptest::prelude::*;

/// Relative tolerance the issue pins for update/downdate vs
/// refactorization.
const TOL: f64 = 1e-9;

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Builds an SPD matrix `L₀·L₀'` from generator entries: diagonals in
/// `[0.5, 2.5]`, off-diagonals in `[-1, 1]`. Conditioning is bounded by
/// construction, so `1e-9` agreement is a fair ask.
fn spd_from_parts(k: usize, diag: &[f64], off: &[f64]) -> Vec<f64> {
    let mut l0 = vec![0.0; k * k];
    let mut next = 0;
    for i in 0..k {
        for j in 0..i {
            l0[i * k + j] = off[next];
            next += 1;
        }
        l0[i * k + i] = diag[i];
    }
    let mut a = vec![0.0; k * k];
    for i in 0..k {
        for j in 0..k {
            for t in 0..=i.min(j) {
                a[i * k + j] += l0[i * k + t] * l0[j * k + t];
            }
        }
    }
    a
}

/// Adds `sign · v·v'` to a row-major matrix.
fn rank1_shift(a: &[f64], v: &[f64], sign: f64) -> Vec<f64> {
    let k = v.len();
    let mut out = a.to_vec();
    for i in 0..k {
        for j in 0..k {
            out[i * k + j] += sign * v[i] * v[j];
        }
    }
    out
}

/// Strategy: (k, SPD matrix, rank-1 vector) with k in 1..=6.
fn spd_and_vector() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
    (1usize..=6).prop_flat_map(|k| {
        (
            proptest::collection::vec(0.5f64..2.5, k),
            proptest::collection::vec(-1.0f64..1.0, k * (k - 1) / 2),
            proptest::collection::vec(-1.0f64..1.0, k),
        )
            .prop_map(move |(diag, off, v)| (k, spd_from_parts(k, &diag, &off), v))
    })
}

proptest! {
    /// `update(v)` matches `from_matrix(A + v·v')` entrywise at 1e-9.
    #[test]
    fn update_matches_full_refactorization((k, a, v) in spd_and_vector()) {
        let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
        f.update(&v).unwrap();
        let g = CholeskyFactor::from_matrix(&rank1_shift(&a, &v, 1.0), k).unwrap();
        for (x, y) in f.lower().iter().zip(g.lower()) {
            prop_assert!(rel_close(*x, *y, TOL), "update factor entry {x} vs {y}");
        }
    }

    /// `downdate(v)` on a factor of `A + v·v'` matches `from_matrix(A)`
    /// at 1e-9 — the downdate target is PD by construction.
    #[test]
    fn downdate_matches_full_refactorization((k, a, v) in spd_and_vector()) {
        let mut f = CholeskyFactor::from_matrix(&rank1_shift(&a, &v, 1.0), k).unwrap();
        f.downdate(&v).unwrap();
        let g = CholeskyFactor::from_matrix(&a, k).unwrap();
        for (x, y) in f.lower().iter().zip(g.lower()) {
            prop_assert!(rel_close(*x, *y, TOL), "downdate factor entry {x} vs {y}");
        }
    }

    /// An update followed by the matching downdate round-trips through
    /// `solve` at 1e-9 against the untouched factor.
    #[test]
    fn update_downdate_roundtrip_preserves_solves((k, a, v) in spd_and_vector()) {
        let rhs: Vec<f64> = (0..k).map(|i| 1.0 + i as f64).collect();
        let reference = CholeskyFactor::from_matrix(&a, k).unwrap();
        let want = reference.solve(&rhs).unwrap();
        let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
        f.update(&v).unwrap();
        f.downdate(&v).unwrap();
        let got = f.solve(&rhs).unwrap();
        for (x, y) in got.iter().zip(&want) {
            prop_assert!(rel_close(*x, *y, TOL), "solve entry {x} vs {y}");
        }
    }

    /// Near-singular path: downdating almost exactly the mass the matrix
    /// holds in one direction. `A = δ·I + w·w'` minus `w·w'` leaves the
    /// tiny diagonal — still PD, and the incremental factor must agree
    /// with refactorization even this close to the boundary.
    #[test]
    fn near_singular_downdate_stays_accurate(
        k in 2usize..=5,
        scale in 0.5f64..2.0,
        delta in 1e-6f64..1e-3,
    ) {
        let w: Vec<f64> = (0..k).map(|i| scale * (1.0 + i as f64 * 0.25)).collect();
        let mut a = rank1_shift(&vec![0.0; k * k], &w, 1.0);
        for i in 0..k {
            a[i * k + i] += delta;
        }
        let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
        f.downdate(&w).unwrap();
        let mut residual = vec![0.0; k * k];
        for i in 0..k {
            residual[i * k + i] = delta;
        }
        let g = CholeskyFactor::from_matrix(&residual, k).unwrap();
        for (x, y) in f.lower().iter().zip(g.lower()) {
            // Absolute comparison scaled by δ: every surviving entry is
            // O(√δ) and the issue's 1e-9 bar applies relative to scale.
            prop_assert!(
                (x - y).abs() <= 1e-9 + 1e-6 * delta.sqrt(),
                "near-singular entry {x} vs {y} (delta {delta})"
            );
        }
    }

    /// Removing strictly more mass than the factor holds must return
    /// `Singular` and leave the factor bit-identical.
    #[test]
    fn oversized_downdate_refuses_and_preserves_factor((k, a, v) in spd_and_vector()) {
        let mut f = CholeskyFactor::from_matrix(&a, k).unwrap();
        let before = f.lower().to_vec();
        // Scale v until v·v' dominates the factored matrix: the first
        // pivot d = l₀₀² − w₀² then goes negative whenever w₀ ≠ 0.
        let trace: f64 = (0..k).map(|i| a[i * k + i]).sum();
        let mut big: Vec<f64> = v.iter().map(|x| x * (10.0 * (1.0 + trace))).collect();
        big[0] = 10.0 * (1.0 + trace); // ensure a nonzero leading entry
        let err = f.downdate(&big).unwrap_err();
        prop_assert!(matches!(err, StatsError::Singular));
        prop_assert_eq!(f.lower(), before.as_slice());
    }

    /// The sliding-window solver matches a fresh Gram fit of exactly the
    /// retained rows after arbitrary slides, at 1e-9 on coefficients.
    #[test]
    fn windowed_ols_matches_batch(
        p in 1usize..=3,
        extra in 8usize..=24,
        slide in 1usize..=10,
        seed in 0u64..1_000,
    ) {
        let n = p + 2 + extra + slide;
        let det = |i: u64| (((i.wrapping_mul(2654435761) % 100_000) as f64) / 100_000.0) - 0.5;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..p).map(|j| 4.0 * det(seed + (i * p + j + 1) as u64)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 1.5 + r.iter().sum::<f64>() + 0.2 * det(seed + (i * 31 + 7) as u64))
            .collect();
        let mut w = WindowedOls::new(p);
        let window = n - slide;
        for i in 0..window {
            w.push(&rows[i], y[i]).unwrap();
        }
        for i in window..n {
            w.push(&rows[i], y[i]).unwrap();
            w.pop(&rows[i - window], y[i - window]).unwrap();
        }
        let windowed = w.fit().unwrap();
        let x = Matrix::from_rows(&rows[slide..]).unwrap();
        let mut cache = GramCache::new(&x, &y[slide..]).unwrap();
        let cols: Vec<usize> = (0..p).collect();
        let batch = cache.fit_subset(&cols).unwrap();
        for (a, b) in windowed.coefficients().iter().zip(batch.coefficients()) {
            prop_assert!(rel_close(*a, *b, TOL), "coef {a} vs {b}");
        }
        prop_assert!(rel_close(windowed.r_squared(), batch.r_squared(), TOL));
    }
}

/// Non-proptest spot check: the windowed path also agrees with the QR
/// reference, tying the streaming solver to the batch contract the rest
/// of the pipeline is pinned against.
#[test]
fn windowed_agrees_with_qr_reference() {
    let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
    let p = 3;
    let rows: Vec<Vec<f64>> = (0..30)
        .map(|i| (0..p).map(|j| 5.0 * det(i * p + j + 1)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| 2.0 + 0.8 * r[0] - 1.2 * r[1] + 0.3 * r[2] + 0.05 * det(i * 17 + 3))
        .collect();
    let mut w = WindowedOls::new(p);
    for (row, yi) in rows.iter().zip(&y) {
        w.push(row, *yi).unwrap();
    }
    let windowed = w.fit().unwrap();
    let x = Matrix::from_rows(&rows).unwrap().with_intercept();
    let qr = OlsFit::fit(&x, &y).unwrap();
    for (a, b) in windowed.coefficients().iter().zip(qr.coefficients()) {
        assert!((a - b).abs() < 1e-8, "coef {a} vs {b}");
    }
    for (a, b) in windowed.std_errors().iter().zip(qr.std_errors()) {
        assert!((a - b).abs() < 1e-6, "se {a} vs {b}");
    }
}
