//! Property tests for the Dynamic Range Error metric (Eq. 6).
//!
//! The invariant under test: `dynamic_range_error` either returns a
//! finite, non-negative value or a typed [`StatsError`] — it never
//! panics and never leaks NaN/infinity through an `Ok`. This covers the
//! ISSUE 3 edge cases explicitly: `P_max == P_idle` denominators, empty
//! and singleton folds, and non-finite power samples.

use chaos_stats::metrics::dynamic_range_error;
use chaos_stats::StatsError;
use proptest::prelude::*;

/// Any f64 including NaN and infinities.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1e6..1e6f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::MAX),
        1 => Just(0.0f64),
    ]
}

proptest! {
    /// Fully adversarial inputs: mismatched lengths, empty slices,
    /// non-finite samples and degenerate ranges. The result is always
    /// `Ok(finite >= 0)` or a typed error.
    #[test]
    fn dre_is_finite_or_typed_error(
        predicted in proptest::collection::vec(any_f64(), 0..12),
        actual in proptest::collection::vec(any_f64(), 0..12),
        power_max in any_f64(),
        power_idle in any_f64(),
    ) {
        match dynamic_range_error(&predicted, &actual, power_max, power_idle) {
            Ok(dre) => {
                prop_assert!(dre.is_finite(), "Ok(non-finite): {dre}");
                prop_assert!(dre >= 0.0, "Ok(negative): {dre}");
            }
            Err(
                StatsError::DimensionMismatch { .. }
                | StatsError::InsufficientData { .. }
                | StatsError::InvalidParameter { .. }
                | StatsError::NonFinite { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other}"),
        }
    }

    /// With well-formed finite inputs and a positive range, DRE always
    /// succeeds and scales inversely with the range.
    #[test]
    fn dre_succeeds_on_well_formed_inputs(
        samples in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..32),
        power_idle in -50.0..50.0f64,
        range in 0.1..500.0f64,
    ) {
        let predicted: Vec<f64> = samples.iter().map(|&(p, _)| p).collect();
        let actual: Vec<f64> = samples.iter().map(|&(_, a)| a).collect();
        let power_max = power_idle + range;
        let dre = dynamic_range_error(&predicted, &actual, power_max, power_idle).unwrap();
        prop_assert!(dre.is_finite() && dre >= 0.0);
        // Doubling the range halves the DRE.
        let wide = dynamic_range_error(&predicted, &actual, power_idle + 2.0 * range, power_idle)
            .unwrap();
        prop_assert!((wide - dre / 2.0).abs() <= 1e-12 * dre.max(1.0));
    }

    /// `P_max == P_idle` is always a typed error, whatever the samples.
    #[test]
    fn dre_zero_range_is_typed_error(
        samples in proptest::collection::vec(-100.0..100.0f64, 1..8),
        bound in -100.0..100.0f64,
    ) {
        let err = dynamic_range_error(&samples, &samples, bound, bound).unwrap_err();
        prop_assert!(matches!(err, StatsError::InvalidParameter { .. }), "{err}");
    }

    /// Empty folds are always a typed error, never a NaN from 0/0.
    #[test]
    fn dre_empty_fold_is_typed_error(
        power_max in any_f64(),
        power_idle in any_f64(),
    ) {
        let err = dynamic_range_error(&[], &[], power_max, power_idle).unwrap_err();
        prop_assert!(
            matches!(
                err,
                StatsError::InsufficientData { .. } | StatsError::NonFinite { .. }
            ),
            "{err}"
        );
    }

    /// Singleton folds succeed when finite (rMSE of one sample is fine).
    #[test]
    fn dre_singleton_fold_succeeds(
        p in -100.0..100.0f64,
        a in -100.0..100.0f64,
    ) {
        let dre = dynamic_range_error(&[p], &[a], 30.0, 10.0).unwrap();
        prop_assert!((dre - (p - a).abs() / 20.0).abs() < 1e-12);
    }
}
