//! Exactness tests for `GramCache` memoized subset solves.
//!
//! The cache serves OLS fits from a precomputed Gram matrix via
//! Cholesky; `OlsFit::fit` solves the same problem via QR on the
//! explicit design. Both are exact in exact arithmetic, so on a
//! well-conditioned design every memoized bitmask solve must agree with
//! the direct solve to 1e-10 — for *every* column subset, not just the
//! handful a particular elimination path happens to visit.

use chaos_stats::gram::GramCache;
use chaos_stats::ols::OlsFit;
use chaos_stats::stepwise::{backward_eliminate, backward_eliminate_cached, StepwiseConfig};
use chaos_stats::Matrix;

const TOL: f64 = 1e-10;

fn det_noise(i: usize) -> f64 {
    ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
}

/// Near-orthogonal O(1) columns keep the Gram matrix well conditioned,
/// so the Cholesky and QR paths agree far below the 1e-10 bar.
fn synthetic(n: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64;
            vec![
                (0.7 * t).sin(),
                (1.3 * t).cos(),
                (i % 17) as f64 / 17.0 - 0.5,
                det_noise(i),
            ]
        })
        .collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let r = x.row(i);
            1.5 + 2.0 * r[0] - r[1] + 0.5 * r[3] + 0.01 * det_noise(i * 31 + 7)
        })
        .collect();
    (x, y)
}

fn qr_reference(x: &Matrix, y: &[f64], keep: &[usize]) -> OlsFit {
    OlsFit::fit(&x.select_cols(keep).with_intercept(), y).unwrap()
}

#[test]
fn every_subset_solve_matches_direct_ols_to_1e10() {
    let (x, y) = synthetic(240);
    let mut cache = GramCache::new(&x, &y).unwrap();
    // All 15 non-empty subsets of the 4 columns, i.e. every bitmask the
    // memo can ever be asked for on this design.
    for mask in 1u32..16 {
        let keep: Vec<usize> = (0..4).filter(|&c| mask & (1 << c) != 0).collect();
        let gram_fit = cache.fit_subset(&keep).unwrap();
        let qr_fit = qr_reference(&x, &y, &keep);
        assert_eq!(gram_fit.coefficients().len(), keep.len() + 1);
        for (j, (g, q)) in gram_fit
            .coefficients()
            .iter()
            .zip(qr_fit.coefficients())
            .enumerate()
        {
            assert!(
                (g - q).abs() < TOL,
                "subset {keep:?} coefficient {j}: gram {g} vs qr {q}"
            );
        }
        for (j, (g, q)) in gram_fit
            .std_errors()
            .iter()
            .zip(qr_fit.std_errors())
            .enumerate()
        {
            assert!(
                (g - q).abs() < TOL,
                "subset {keep:?} std error {j}: gram {g} vs qr {q}"
            );
        }
    }
    assert_eq!(cache.misses(), 15, "each subset solved exactly once");
}

#[test]
fn memoized_refits_are_bitwise_identical_to_first_solve() {
    let (x, y) = synthetic(240);
    let mut cache = GramCache::new(&x, &y).unwrap();
    for keep in [vec![0], vec![1, 3], vec![0, 1, 2, 3]] {
        let first = cache.fit_subset(&keep).unwrap();
        let misses = cache.misses();
        let again = cache.fit_subset(&keep).unwrap();
        assert_eq!(cache.misses(), misses, "refit of {keep:?} hit the solver");
        // Bitwise equality, not tolerance: the memo must return the same
        // object it computed, never re-derive it.
        assert_eq!(first.coefficients(), again.coefficients());
        assert_eq!(first.std_errors(), again.std_errors());
    }
    assert!(cache.hits() >= 3);
}

#[test]
fn cached_elimination_serves_fits_matching_direct_ols() {
    let (x, y) = synthetic(240);
    let config = StepwiseConfig::default();
    let direct = backward_eliminate(&x, &y, &config).unwrap();
    let mut cache = GramCache::new(&x, &y).unwrap();
    let cached = backward_eliminate_cached(&mut cache, &config).unwrap();
    assert_eq!(direct.selected, cached.selected);
    // The surviving model's memoized fit agrees with a from-scratch QR
    // solve on the same surviving columns to 1e-10.
    let reference = qr_reference(&x, &y, &cached.selected);
    for (g, q) in cached
        .fit
        .coefficients()
        .iter()
        .zip(reference.coefficients())
    {
        assert!((g - q).abs() < TOL, "final fit: gram {g} vs qr {q}");
    }
}
