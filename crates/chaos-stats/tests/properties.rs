//! Property-based tests for the statistical substrate.

use chaos_stats::lasso::{LassoConfig, LassoFit};
use chaos_stats::ols::OlsFit;
use chaos_stats::{corr, describe, metrics, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned regression problem with n rows, p columns
/// (p < n), bounded entries.
fn regression_problem() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (4usize..8, 30usize..60).prop_flat_map(|(p, n)| {
        (
            proptest::collection::vec(-10.0..10.0f64, n * p),
            proptest::collection::vec(-100.0..100.0f64, n),
        )
            .prop_map(move |(data, y)| {
                let mut m = Matrix::zeros(n, p + 1);
                for i in 0..n {
                    m.set(i, 0, 1.0);
                    for j in 0..p {
                        // Add a diagonal-ish nudge so the matrix is almost
                        // surely full rank.
                        let v = data[i * p + j] + if i % (p + 1) == j { 0.37 } else { 0.0 };
                        m.set(i, j + 1, v);
                    }
                }
                (m, y)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QR least squares satisfies the normal equations: Xᵀ(y − Xβ) ≈ 0.
    #[test]
    fn qr_satisfies_normal_equations((x, y) in regression_problem()) {
        if let Ok(beta) = x.solve_least_squares(&y) {
            let fitted = x.matvec(&beta).unwrap();
            let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
            let scale = y.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for j in 0..x.cols() {
                let dot: f64 = (0..x.rows()).map(|i| x.get(i, j) * resid[i]).sum();
                prop_assert!(
                    dot.abs() < 1e-6 * scale * x.rows() as f64,
                    "normal equation violated at column {j}: {dot}"
                );
            }
        }
    }

    /// OLS residuals never exceed the residuals of the zero model.
    #[test]
    fn ols_beats_mean_predictor((x, y) in regression_problem()) {
        if let Ok(fit) = OlsFit::fit(&x, &y) {
            let fitted = fit.predict(&x).unwrap();
            let rss: f64 = y.iter().zip(&fitted).map(|(a, b)| (a - b).powi(2)).sum();
            let mean = describe::mean(&y);
            let tss: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
            prop_assert!(rss <= tss * (1.0 + 1e-9), "rss {rss} > tss {tss}");
            prop_assert!(fit.r_squared() >= -1e-9);
        }
    }

    /// The lasso with huge λ always produces the empty support, and its
    /// L1 norm decreases monotonically in λ.
    #[test]
    fn lasso_l1_norm_monotone((x, y) in regression_problem()) {
        // Strip the intercept column; the lasso adds its own.
        let cols: Vec<usize> = (1..x.cols()).collect();
        let xf = x.select_cols(&cols);
        let norm_at = |lambda: f64| -> Option<f64> {
            LassoFit::fit(&xf, &y, &LassoConfig { lambda, ..LassoConfig::default() })
                .ok()
                .map(|f| f.coefficients().iter().map(|c| c.abs()).sum())
        };
        if let (Some(lo), Some(mid), Some(hi)) = (norm_at(0.01), norm_at(1.0), norm_at(100.0)) {
            prop_assert!(mid <= lo + 1e-6, "{mid} > {lo}");
            prop_assert!(hi <= mid + 1e-6, "{hi} > {mid}");
        }
    }

    /// Pearson correlation is symmetric, bounded, and scale-invariant.
    #[test]
    fn pearson_properties(
        a in proptest::collection::vec(-50.0..50.0f64, 10..40),
        scale in 0.1..10.0f64,
        shift in -5.0..5.0f64,
    ) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| v * ((i % 3) as f64 - 1.0)).collect();
        let r1 = corr::pearson(&a, &b).unwrap();
        let r2 = corr::pearson(&b, &a).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-12);
        prop_assert!(r1.abs() <= 1.0 + 1e-12);
        // Affine transformation with positive scale preserves r.
        let a2: Vec<f64> = a.iter().map(|v| v * scale + shift).collect();
        let r3 = corr::pearson(&a2, &b).unwrap();
        prop_assert!((r1 - r3).abs() < 1e-8, "{r1} vs {r3}");
    }

    /// DRE scales inversely with the dynamic range and is invariant to a
    /// common shift of both series.
    #[test]
    fn dre_properties(
        base in proptest::collection::vec(10.0..100.0f64, 5..50),
        err in proptest::collection::vec(-5.0..5.0f64, 5..50),
        shift in -50.0..50.0f64,
    ) {
        let n = base.len().min(err.len());
        let actual: Vec<f64> = base[..n].to_vec();
        let pred: Vec<f64> = (0..n).map(|i| actual[i] + err[i]).collect();
        let d1 = metrics::dynamic_range_error(&pred, &actual, 120.0, 20.0).unwrap();
        let d2 = metrics::dynamic_range_error(&pred, &actual, 220.0, 20.0).unwrap();
        prop_assert!((d1 - 2.0 * d2).abs() < 1e-9, "halving range doubles DRE");
        let shifted_a: Vec<f64> = actual.iter().map(|v| v + shift).collect();
        let shifted_p: Vec<f64> = pred.iter().map(|v| v + shift).collect();
        let d3 = metrics::dynamic_range_error(&shifted_p, &shifted_a, 120.0, 20.0).unwrap();
        prop_assert!((d1 - d3).abs() < 1e-9, "common shift changes DRE");
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(xs in proptest::collection::vec(-1e3..1e3f64, 1..60)) {
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = describe::quantile(&xs, q);
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert!((describe::quantile(&xs, 0.0) - describe::min(&xs)).abs() < 1e-12);
        prop_assert!((describe::quantile(&xs, 1.0) - describe::max(&xs)).abs() < 1e-12);
    }

    /// Matrix transpose distributes over products: (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_of_product(
        a in proptest::collection::vec(-9.0..9.0f64, 12),
        b in proptest::collection::vec(-9.0..9.0f64, 12),
    ) {
        let ma = Matrix::from_vec(3, 4, a).unwrap();
        let mb = Matrix::from_vec(4, 3, b).unwrap();
        let left = ma.matmul(&mb).unwrap().transpose();
        let right = mb.transpose().matmul(&ma.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left.get(i, j) - right.get(i, j)).abs() < 1e-9);
            }
        }
    }
}
