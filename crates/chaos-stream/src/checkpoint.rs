//! Crash-consistent engine snapshots: a versioned, dependency-free
//! binary format for the full [`StreamEngine`](crate::StreamEngine)
//! state.
//!
//! The bit-identity contract extends across process death: an engine
//! killed at any second, restored from its last snapshot, and replayed
//! over the remaining seconds must emit byte-for-byte the predictions an
//! uninterrupted run would. That rules out text codecs — the drift
//! thresholds in [`DriftConfig`](crate::DriftConfig) are legitimately
//! `f64::INFINITY` for the disabled detector, which JSON cannot
//! round-trip — so every float is written as its IEEE-754 bit pattern
//! (`f64::to_bits`, little-endian), and the only nested serde payload is
//! the fitted-technique model leaf, whose parameters are finite by
//! construction.
//!
//! # Envelope
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `CHAOSNAP` |
//! | 8      | 4     | format version (little-endian u32, currently 1) |
//! | 12     | 8     | payload length (little-endian u64) |
//! | 20     | n     | payload |
//! | 20 + n | 8     | FNV-1a 64 checksum of the payload |
//!
//! Truncation, bit rot, and version skew each map to a distinct
//! [`SnapshotError`]; a snapshot that decodes is internally consistent.
//!
//! [`Checkpointer`] adds atomic persistence: snapshots are written to a
//! sibling temporary file and renamed into place, so a crash mid-write
//! leaves the previous snapshot intact.

use crate::drift::DriftState;
use crate::engine::{BatchScratch, MachineScratch, MachineState, StreamConfig, StreamEngine};
use crate::refit::{AdaptedModel, RefitOutcome, RefitTier};
use crate::supervise::{MachineHealth, RetryState, StreamError, SupervisorConfig};
use crate::window::SlidingWindow;
use crate::DriftConfig;
use chaos_core::eval::RollingDreState;
use chaos_core::robust::{ImputerState, ImputerStateSnapshot};
use chaos_core::{FittedModel, RobustEstimator};
use chaos_stats::ols::{OlsFit, OlsFitState, WindowedOls, WindowedOlsState};
use chaos_stats::ExecPolicy;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CHAOSNAP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — the snapshot checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a snapshot could not be decoded, validated, or persisted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Fewer bytes than the fixed envelope header.
    TooShort {
        /// Bytes supplied.
        got: usize,
    },
    /// The magic bytes are wrong — not a chaos-stream snapshot.
    BadMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the envelope.
        got: u32,
    },
    /// The envelope's payload length disagrees with the byte count.
    LengthMismatch {
        /// Length the envelope declared.
        declared: u64,
        /// Payload bytes actually present.
        got: u64,
    },
    /// The payload checksum does not match — truncation or corruption.
    ChecksumMismatch,
    /// The payload decoded but its structure is inconsistent.
    Malformed {
        /// What was wrong.
        context: String,
    },
    /// The snapshot is well-formed but does not fit the supplied
    /// estimator (feature-width or machine-shape mismatch).
    Incompatible {
        /// What did not fit.
        context: String,
    },
    /// Filesystem failure while persisting or loading.
    Io {
        /// The failed operation and the OS error.
        context: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort { got } => {
                write!(
                    f,
                    "snapshot: {got} bytes is shorter than the envelope header"
                )
            }
            SnapshotError::BadMagic => {
                write!(f, "snapshot: bad magic (not a chaos-stream snapshot)")
            }
            SnapshotError::UnsupportedVersion { got } => {
                write!(f, "snapshot: unsupported format version {got}")
            }
            SnapshotError::LengthMismatch { declared, got } => write!(
                f,
                "snapshot: envelope declares {declared} payload bytes, found {got}"
            ),
            SnapshotError::ChecksumMismatch => {
                write!(
                    f,
                    "snapshot: payload checksum mismatch (truncated or corrupted)"
                )
            }
            SnapshotError::Malformed { context } => {
                write!(f, "snapshot: malformed payload: {context}")
            }
            SnapshotError::Incompatible { context } => {
                write!(f, "snapshot: incompatible with this engine: {context}")
            }
            SnapshotError::Io { context } => write!(f, "snapshot: io failure: {context}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian byte encoder for the snapshot payload.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
}

/// Little-endian byte decoder for the snapshot payload.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| SnapshotError::Malformed {
                context: format!("{what}: length overflow"),
            })?;
        if end > self.data.len() {
            return Err(SnapshotError::Malformed {
                context: format!(
                    "{what}: needs {n} bytes at offset {}, only {} remain",
                    self.pos,
                    self.data.len() - self.pos
                ),
            });
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn usize(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed {
            context: format!("{what}: {v} does not fit usize"),
        })
    }

    /// A length prefix, sanity-bounded by the bytes that remain so a
    /// corrupted length cannot drive a huge allocation.
    fn len(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let n = self.usize(what)?;
        if n > self.data.len() - self.pos.min(self.data.len()) {
            return Err(SnapshotError::Malformed {
                context: format!("{what}: declared length {n} exceeds remaining bytes"),
            });
        }
        Ok(n)
    }

    fn bool(&mut self, what: &str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Malformed {
                context: format!("{what}: invalid bool byte {v}"),
            }),
        }
    }

    fn f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(what)?;
        self.take(n, what)
    }

    fn vec_f64(&mut self, what: &str) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(what)?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    fn vec_usize(&mut self, what: &str) -> Result<Vec<usize>, SnapshotError> {
        let n = self.len(what)?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.usize(what)?);
        }
        Ok(out)
    }

    fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn tier_tag(t: RefitTier) -> u8 {
    match t {
        RefitTier::CoefficientRefresh => 0,
        RefitTier::StepwiseRerun => 1,
        RefitTier::FullReselect => 2,
    }
}

fn tier_from_tag(v: u8, what: &str) -> Result<RefitTier, SnapshotError> {
    match v {
        0 => Ok(RefitTier::CoefficientRefresh),
        1 => Ok(RefitTier::StepwiseRerun),
        2 => Ok(RefitTier::FullReselect),
        _ => Err(SnapshotError::Malformed {
            context: format!("{what}: invalid refit tier tag {v}"),
        }),
    }
}

fn health_tag(h: MachineHealth) -> u8 {
    match h {
        MachineHealth::Healthy => 0,
        MachineHealth::Ramping => 1,
        MachineHealth::Quarantined => 2,
    }
}

fn health_from_tag(v: u8) -> Result<MachineHealth, SnapshotError> {
    match v {
        0 => Ok(MachineHealth::Healthy),
        1 => Ok(MachineHealth::Ramping),
        2 => Ok(MachineHealth::Quarantined),
        _ => Err(SnapshotError::Malformed {
            context: format!("machine health: invalid tag {v}"),
        }),
    }
}

fn encode_config(e: &mut Enc, c: &StreamConfig) {
    e.usize(c.window_s);
    e.usize(c.drift.window_s);
    e.f64(c.drift.refresh_ratio);
    e.f64(c.drift.stepwise_ratio);
    e.f64(c.drift.reselect_ratio);
    e.usize(c.drift.cooldown_s);
    e.f64(c.stepwise_alpha);
    e.usize(c.stepwise_min_features);
    e.usize(c.min_refit_samples);
    e.usize(c.supervise.max_attempts);
    e.usize(c.supervise.quarantine_after);
    e.usize(c.supervise.quarantine_s);
    match c.exec {
        ExecPolicy::Serial => e.u8(0),
        ExecPolicy::Parallel { threads } => {
            e.u8(1);
            e.usize(threads);
        }
    }
}

fn decode_config(d: &mut Dec<'_>) -> Result<StreamConfig, SnapshotError> {
    let window_s = d.usize("config.window_s")?;
    let drift = DriftConfig {
        window_s: d.usize("config.drift.window_s")?,
        refresh_ratio: d.f64("config.drift.refresh_ratio")?,
        stepwise_ratio: d.f64("config.drift.stepwise_ratio")?,
        reselect_ratio: d.f64("config.drift.reselect_ratio")?,
        cooldown_s: d.usize("config.drift.cooldown_s")?,
    };
    let stepwise_alpha = d.f64("config.stepwise_alpha")?;
    let stepwise_min_features = d.usize("config.stepwise_min_features")?;
    let min_refit_samples = d.usize("config.min_refit_samples")?;
    let supervise = SupervisorConfig {
        max_attempts: d.usize("config.supervise.max_attempts")?,
        quarantine_after: d.usize("config.supervise.quarantine_after")?,
        quarantine_s: d.usize("config.supervise.quarantine_s")?,
    };
    let exec = match d.u8("config.exec")? {
        0 => ExecPolicy::Serial,
        1 => ExecPolicy::Parallel {
            threads: d.usize("config.exec.threads")?,
        },
        v => {
            return Err(SnapshotError::Malformed {
                context: format!("config.exec: invalid policy tag {v}"),
            })
        }
    };
    Ok(StreamConfig {
        window_s,
        drift,
        stepwise_alpha,
        stepwise_min_features,
        min_refit_samples,
        supervise,
        exec,
    })
}

fn encode_adapted(e: &mut Enc, adapted: &Option<AdaptedModel>) -> Result<(), SnapshotError> {
    match adapted {
        None => e.u8(0),
        Some(AdaptedModel::Linear { columns, fit }) => {
            e.u8(1);
            e.vec_usize(columns);
            let s = fit.export_state();
            e.vec_f64(&s.coefficients);
            e.vec_f64(&s.std_errors);
            e.f64(s.residual_variance);
            e.usize(s.n);
            e.f64(s.r_squared);
        }
        Some(AdaptedModel::Technique { columns, model }) => {
            e.u8(2);
            e.vec_usize(columns);
            let json = serde_json::to_vec(model).map_err(|err| SnapshotError::Malformed {
                context: format!("technique model failed to serialize: {err}"),
            })?;
            e.bytes(&json);
        }
    }
    Ok(())
}

fn decode_adapted(d: &mut Dec<'_>) -> Result<Option<AdaptedModel>, SnapshotError> {
    match d.u8("adapted.tag")? {
        0 => Ok(None),
        1 => {
            let columns = d.vec_usize("adapted.columns")?;
            let state = OlsFitState {
                coefficients: d.vec_f64("adapted.coefficients")?,
                std_errors: d.vec_f64("adapted.std_errors")?,
                residual_variance: d.f64("adapted.residual_variance")?,
                n: d.usize("adapted.n")?,
                r_squared: d.f64("adapted.r_squared")?,
            };
            let fit = OlsFit::import_state(state).map_err(|e| SnapshotError::Malformed {
                context: format!("adapted linear fit: {e}"),
            })?;
            Ok(Some(AdaptedModel::Linear { columns, fit }))
        }
        2 => {
            let columns = d.vec_usize("adapted.columns")?;
            let json = d.bytes("adapted.model")?;
            let model: FittedModel =
                serde_json::from_slice(json).map_err(|e| SnapshotError::Malformed {
                    context: format!("adapted technique model: {e}"),
                })?;
            Ok(Some(AdaptedModel::Technique { columns, model }))
        }
        v => Err(SnapshotError::Malformed {
            context: format!("adapted.tag: invalid tag {v}"),
        }),
    }
}

fn encode_machine(e: &mut Enc, s: &MachineState) -> Result<(), SnapshotError> {
    e.bool(s.active);
    e.u8(health_tag(s.health));
    e.usize(s.consecutive_failures);
    e.usize(s.quarantine_left);
    e.usize(s.quarantines);
    e.usize(s.rejoins);
    e.usize(s.retries);
    match &s.retry {
        None => e.u8(0),
        Some(r) => {
            e.u8(1);
            e.u8(tier_tag(r.requested));
            e.usize(r.attempts_left);
        }
    }

    let imp = s.imputer.export_state();
    e.usize(imp.last_valid.len());
    for h in &imp.last_valid {
        e.vec_f64(h);
    }
    e.vec_usize(&imp.gap_run);
    e.usize(imp.window);

    e.usize(s.window.capacity());
    e.usize(s.window.width());
    e.usize(s.window.len());
    for (row, y) in s.window.iter() {
        e.vec_f64(row);
        e.f64(y);
    }

    let w = s.wols.export_state();
    e.usize(w.p);
    e.vec_f64(&w.gram);
    e.vec_f64(&w.xty);
    e.f64(w.yty);
    e.usize(w.n);
    e.vec_f64(&w.chol_lower);
    e.usize(w.refactorizations);

    let dr = s.drift.export_state();
    e.f64(dr.baseline_dre);
    e.usize(dr.since_refit);
    e.usize(dr.rolling.capacity);
    e.f64(dr.rolling.range_w);
    e.vec_f64(&dr.rolling.squared_errors);

    encode_adapted(e, &s.adapted)?;

    e.usize(s.refits.len());
    for r in &s.refits {
        e.usize(r.t);
        e.usize(r.machine_id);
        e.u8(tier_tag(r.requested));
        match r.applied {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                e.u8(tier_tag(t));
            }
        }
        match &r.selected {
            None => e.u8(0),
            Some(cols) => {
                e.u8(1);
                e.vec_usize(cols);
            }
        }
    }
    Ok(())
}

fn decode_machine(d: &mut Dec<'_>, config: &StreamConfig) -> Result<MachineState, SnapshotError> {
    let active = d.bool("machine.active")?;
    let health = health_from_tag(d.u8("machine.health")?)?;
    let consecutive_failures = d.usize("machine.consecutive_failures")?;
    let quarantine_left = d.usize("machine.quarantine_left")?;
    let quarantines = d.usize("machine.quarantines")?;
    let rejoins = d.usize("machine.rejoins")?;
    let retries = d.usize("machine.retries")?;
    let retry = match d.u8("machine.retry.tag")? {
        0 => None,
        1 => Some(RetryState {
            requested: tier_from_tag(d.u8("machine.retry.requested")?, "machine.retry")?,
            attempts_left: d.usize("machine.retry.attempts_left")?,
        }),
        v => {
            return Err(SnapshotError::Malformed {
                context: format!("machine.retry.tag: invalid tag {v}"),
            })
        }
    };

    let width = d.len("machine.imputer.width")?;
    let mut last_valid = Vec::with_capacity(width);
    for _ in 0..width {
        last_valid.push(d.vec_f64("machine.imputer.history")?);
    }
    let gap_run = d.vec_usize("machine.imputer.gap_run")?;
    let imp_window = d.usize("machine.imputer.window")?;
    let imputer = ImputerState::import_state(ImputerStateSnapshot {
        last_valid,
        gap_run,
        window: imp_window,
    })
    .ok_or_else(|| SnapshotError::Malformed {
        context: "machine.imputer: inconsistent snapshot".into(),
    })?;

    let win_capacity = d.usize("machine.window.capacity")?;
    let win_width = d.usize("machine.window.width")?;
    let win_len = d.len("machine.window.len")?;
    let mut rows = Vec::with_capacity(win_len);
    for _ in 0..win_len {
        let row = d.vec_f64("machine.window.row")?;
        let y = d.f64("machine.window.y")?;
        rows.push((row, y));
    }
    let window = SlidingWindow::from_parts(win_capacity, win_width, rows).map_err(|e| {
        SnapshotError::Malformed {
            context: format!("machine.window: {e}"),
        }
    })?;

    let wols = WindowedOls::import_state(WindowedOlsState {
        p: d.usize("machine.wols.p")?,
        gram: d.vec_f64("machine.wols.gram")?,
        xty: d.vec_f64("machine.wols.xty")?,
        yty: d.f64("machine.wols.yty")?,
        n: d.usize("machine.wols.n")?,
        chol_lower: d.vec_f64("machine.wols.chol")?,
        refactorizations: d.usize("machine.wols.refactorizations")?,
    })
    .map_err(|e| SnapshotError::Malformed {
        context: format!("machine.wols: {e}"),
    })?;

    let drift_state = DriftState {
        baseline_dre: d.f64("machine.drift.baseline")?,
        since_refit: d.usize("machine.drift.since_refit")?,
        rolling: RollingDreState {
            capacity: d.usize("machine.drift.capacity")?,
            range_w: d.f64("machine.drift.range_w")?,
            squared_errors: d.vec_f64("machine.drift.errors")?,
        },
    };
    let drift =
        crate::drift::DriftDetector::import_state(config.drift, drift_state).map_err(|e| {
            SnapshotError::Malformed {
                context: format!("machine.drift: {e}"),
            }
        })?;

    let adapted = decode_adapted(d)?;

    let n_refits = d.len("machine.refits.len")?;
    let mut refits = Vec::with_capacity(n_refits);
    for _ in 0..n_refits {
        let t = d.usize("machine.refit.t")?;
        let machine_id = d.usize("machine.refit.machine_id")?;
        let requested = tier_from_tag(d.u8("machine.refit.requested")?, "machine.refit")?;
        let applied = match d.u8("machine.refit.applied.tag")? {
            0 => None,
            1 => Some(tier_from_tag(
                d.u8("machine.refit.applied")?,
                "machine.refit.applied",
            )?),
            v => {
                return Err(SnapshotError::Malformed {
                    context: format!("machine.refit.applied: invalid tag {v}"),
                })
            }
        };
        let selected = match d.u8("machine.refit.selected.tag")? {
            0 => None,
            1 => Some(d.vec_usize("machine.refit.selected")?),
            v => {
                return Err(SnapshotError::Malformed {
                    context: format!("machine.refit.selected: invalid tag {v}"),
                })
            }
        };
        refits.push(RefitOutcome {
            t,
            machine_id,
            requested,
            applied,
            selected,
        });
    }

    Ok(MachineState {
        imputer,
        window,
        wols,
        drift,
        adapted,
        refits,
        active,
        health,
        consecutive_failures,
        retry,
        quarantine_left,
        quarantines,
        rejoins,
        retries,
    })
}

/// Serializes the full engine state into an enveloped snapshot.
pub(crate) fn encode_engine(engine: &StreamEngine) -> Vec<u8> {
    let mut payload = Enc::new();
    encode_config(&mut payload, &engine.config);
    payload.usize(engine.t);
    payload.usize(engine.machines.len());
    for m in &engine.machines {
        // Serialization of live engine state cannot fail: the technique
        // model's parameters are finite by construction, and every other
        // field is written as raw bits.
        if let Err(e) = encode_machine(&mut payload, m) {
            unreachable_snapshot(&e);
        }
    }
    let payload = payload.buf;

    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Diverts the impossible encode failure somewhere observable without
/// panicking in library code.
fn unreachable_snapshot(e: &SnapshotError) {
    chaos_obs::add("stream.snapshot.encode_failed", 1);
    chaos_obs::event(
        "stream.snapshot.encode_failed",
        &[("error", chaos_obs::Value::Str(e.to_string()))],
    );
}

/// Validates the envelope and decodes a [`StreamEngine`] around
/// `estimator`.
pub(crate) fn decode_engine(
    estimator: RobustEstimator,
    bytes: &[u8],
) -> Result<StreamEngine, StreamError> {
    if bytes.len() < 28 {
        return Err(SnapshotError::TooShort { got: bytes.len() }.into());
    }
    if bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic.into());
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(v);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { got: version }.into());
    }
    let mut l = [0u8; 8];
    l.copy_from_slice(&bytes[12..20]);
    let declared = u64::from_le_bytes(l);
    let body = &bytes[20..];
    if body.len() as u64 != declared + 8 {
        return Err(SnapshotError::LengthMismatch {
            declared,
            got: (body.len() as u64).saturating_sub(8),
        }
        .into());
    }
    let payload = &body[..declared as usize];
    let mut c = [0u8; 8];
    c.copy_from_slice(&body[declared as usize..]);
    if fnv1a64(payload) != u64::from_le_bytes(c) {
        return Err(SnapshotError::ChecksumMismatch.into());
    }

    let mut d = Dec::new(payload);
    let config = decode_config(&mut d)?;
    let t = d.usize("engine.t")?;
    let n_machines = d.len("engine.machines")?;
    if n_machines == 0 {
        return Err(SnapshotError::Malformed {
            context: "engine.machines: zero machine streams".into(),
        }
        .into());
    }
    let mut machines = Vec::with_capacity(n_machines);
    for _ in 0..n_machines {
        machines.push(decode_machine(&mut d, &config)?);
    }
    if !d.finished() {
        return Err(SnapshotError::Malformed {
            context: format!("{} trailing payload bytes", payload.len() - d.pos),
        }
        .into());
    }

    let width = estimator.spec().width();
    for (i, m) in machines.iter().enumerate() {
        if m.window.width() != width || m.wols.n_features() != width {
            return Err(SnapshotError::Incompatible {
                context: format!(
                    "machine {i}: snapshot feature width {} (solver {}) vs estimator spec width {width}",
                    m.window.width(),
                    m.wols.n_features()
                ),
            }
            .into());
        }
    }

    chaos_obs::add("stream.snapshot.restored", 1);
    // Scratch buffers are pure working memory — never checkpointed; a
    // restored engine warms them back up on its first ticks.
    let scratch = (0..machines.len()).map(|_| MachineScratch::new()).collect();
    let batch = BatchScratch::new(width + 1);
    Ok(StreamEngine {
        estimator,
        config,
        machines,
        t,
        scratch,
        batch,
    })
}

/// Cadenced, atomic snapshot persistence for a streaming engine.
///
/// Writes go to a sibling `.tmp` file first and are renamed into place,
/// so a crash mid-write can never destroy the previous good snapshot.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    path: PathBuf,
    every_s: usize,
}

impl Checkpointer {
    /// A checkpointer that persists to `path` every `every_s` processed
    /// seconds (`every_s` is clamped to at least 1).
    pub fn new(path: impl Into<PathBuf>, every_s: usize) -> Self {
        Checkpointer {
            path: path.into(),
            every_s: every_s.max(1),
        }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The persistence cadence in processed seconds.
    pub fn every_s(&self) -> usize {
        self.every_s
    }

    /// Persists a snapshot when the engine sits on a cadence boundary
    /// (a positive multiple of `every_s` seconds processed). Returns
    /// whether a snapshot was written.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the write or rename fails.
    pub fn maybe_persist(&self, engine: &StreamEngine) -> Result<bool, SnapshotError> {
        let t = engine.seconds_processed();
        if t == 0 || t % self.every_s != 0 {
            return Ok(false);
        }
        self.persist(engine)?;
        Ok(true)
    }

    /// Persists a snapshot unconditionally (write-to-temp then rename).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the write or rename fails.
    pub fn persist(&self, engine: &StreamEngine) -> Result<(), SnapshotError> {
        let _span = chaos_obs::span("stream.snapshot.persist");
        self.persist_bytes(&encode_engine(engine))
    }

    /// Persists arbitrary snapshot bytes through the same
    /// write-to-temp-then-rename path [`persist`](Checkpointer::persist)
    /// uses, so higher layers (the `chaos-serve` server envelope wraps
    /// engine snapshots in its own format) get identical crash-safety
    /// without reimplementing it.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the write or rename fails.
    pub fn persist_bytes(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|e| SnapshotError::Io {
            context: format!("write {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, &self.path).map_err(|e| SnapshotError::Io {
            context: format!("rename {} -> {}: {e}", tmp.display(), self.path.display()),
        })?;
        chaos_obs::add("stream.snapshot.persisted", 1);
        chaos_obs::record("stream.snapshot.bytes", bytes.len() as u64);
        Ok(())
    }

    /// Loads the raw snapshot bytes from disk; pair with
    /// [`StreamEngine::restore`](crate::StreamEngine::restore).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be read.
    pub fn load(&self) -> Result<Vec<u8>, SnapshotError> {
        std::fs::read(&self.path).map_err(|e| SnapshotError::Io {
            context: format!("read {}: {e}", self.path.display()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn enc_dec_round_trip_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.usize(123_456);
        e.f64(f64::INFINITY);
        e.f64(-0.0);
        e.vec_f64(&[1.5, f64::NEG_INFINITY]);
        e.vec_usize(&[3, 1, 4]);
        e.bytes(b"chaos");
        let buf = e.buf;
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert!(d.bool("b").unwrap());
        assert_eq!(d.usize("c").unwrap(), 123_456);
        assert_eq!(d.f64("d").unwrap(), f64::INFINITY);
        assert_eq!(d.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.vec_f64("f").unwrap(), vec![1.5, f64::NEG_INFINITY]);
        assert_eq!(d.vec_usize("g").unwrap(), vec![3, 1, 4]);
        assert_eq!(d.bytes("h").unwrap(), b"chaos");
        assert!(d.finished());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut e = Enc::new();
        e.usize(10); // declares 10 elements that never follow
        let buf = e.buf;
        let mut d = Dec::new(&buf);
        assert!(matches!(
            d.vec_f64("w"),
            Err(SnapshotError::Malformed { .. })
        ));
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u64("x"), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn bad_bool_and_tags_are_rejected() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.bool("b"), Err(SnapshotError::Malformed { .. })));
        assert!(tier_from_tag(3, "t").is_err());
        assert!(health_from_tag(9).is_err());
        assert_eq!(health_from_tag(2).unwrap(), MachineHealth::Quarantined);
    }
}
