//! Drift detection: rolling DRE against a held-out baseline.
//!
//! The paper scores models by Dynamic Range Error (Eq. 6): RMSE divided
//! by the machine's dynamic power range. A deployed model's DRE is not
//! stationary — workload mix shifts, thermal state wanders, counters
//! fault — so the streaming engine tracks a *rolling* DRE over the last
//! `window_s` seconds ([`chaos_core::eval::RollingDre`]) and compares it
//! against the DRE the model achieved on held-out data at training time.
//!
//! The ratio `rolling / baseline` maps to an escalating response through
//! three thresholds: a modest regression asks for a cheap coefficient
//! refresh from the sliding window, a larger one reruns stepwise
//! selection over the window, and a severe one reruns the full
//! Algorithm-1-style reselection with the configured model technique.
//! A cooldown keeps one bad stretch from triggering a refit storm.

use crate::refit::RefitTier;
use chaos_core::eval::{RollingDre, RollingDreState};
use chaos_stats::StatsError;
use serde::{Deserialize, Serialize};

/// Thresholds and pacing for the drift detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Seconds of rolling history the DRE is computed over (also the
    /// warm-up length: no triggers before the window fills).
    pub window_s: usize,
    /// `rolling/baseline` ratio at which a coefficient refresh fires.
    pub refresh_ratio: f64,
    /// Ratio at which a windowed stepwise rerun fires.
    pub stepwise_ratio: f64,
    /// Ratio at which a full reselection fires.
    pub reselect_ratio: f64,
    /// Minimum seconds between refits on one machine stream.
    pub cooldown_s: usize,
}

impl DriftConfig {
    /// Deployment-shaped defaults: two minutes of rolling history and
    /// conservative escalation.
    pub fn paper() -> Self {
        DriftConfig {
            window_s: 120,
            refresh_ratio: 1.5,
            stepwise_ratio: 2.5,
            reselect_ratio: 4.0,
            cooldown_s: 60,
        }
    }

    /// Short-horizon variant for tests and quick experiments.
    pub fn fast() -> Self {
        DriftConfig {
            window_s: 30,
            refresh_ratio: 1.5,
            stepwise_ratio: 2.5,
            reselect_ratio: 4.0,
            cooldown_s: 10,
        }
    }

    /// Disables drift response entirely: infinite thresholds mean no
    /// ratio ever triggers, so the engine replays the offline fallback
    /// chain bit-identically forever.
    pub fn disabled() -> Self {
        DriftConfig {
            window_s: 30,
            refresh_ratio: f64::INFINITY,
            stepwise_ratio: f64::INFINITY,
            reselect_ratio: f64::INFINITY,
            cooldown_s: 0,
        }
    }
}

/// What one observed (prediction, measurement) pair concluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DriftDecision {
    /// Rolling DRE after this observation, once the window is warm.
    pub rolling_dre: Option<f64>,
    /// `rolling / baseline` ratio, once warm.
    pub ratio: Option<f64>,
    /// Refit tier this observation demands, if any.
    pub trigger: Option<RefitTier>,
}

impl DriftDecision {
    /// The no-signal decision (cold window, invalid sample, or healthy
    /// ratio).
    pub fn none() -> Self {
        DriftDecision {
            rolling_dre: None,
            ratio: None,
            trigger: None,
        }
    }
}

/// Per-machine drift state: a rolling DRE window plus trigger pacing.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    baseline_dre: f64,
    rolling: RollingDre,
    since_refit: usize,
}

impl DriftDetector {
    /// Creates a detector comparing rolling DRE over
    /// `config.window_s` seconds against `baseline_dre`, with errors
    /// normalized by the `power_max_w − power_idle_w` dynamic range.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `baseline_dre` is not
    /// finite and positive, or if the window/range parameters are
    /// rejected by [`RollingDre::new`].
    pub fn new(
        config: DriftConfig,
        baseline_dre: f64,
        power_max_w: f64,
        power_idle_w: f64,
    ) -> Result<Self, StatsError> {
        if !baseline_dre.is_finite() || baseline_dre <= 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "drift detector: baseline DRE must be finite and positive, got {baseline_dre}"
                ),
            });
        }
        Ok(DriftDetector {
            config,
            baseline_dre,
            rolling: RollingDre::new(config.window_s, power_max_w, power_idle_w)?,
            since_refit: 0,
        })
    }

    /// Feeds one (prediction, measurement) pair and reports whether the
    /// accumulated evidence demands a refit. Non-finite pairs are
    /// skipped without touching the rolling window; the cooldown clock
    /// still advances, since wall time does.
    pub fn observe(&mut self, predicted_w: f64, measured_w: f64) -> DriftDecision {
        self.since_refit = self.since_refit.saturating_add(1);
        if !self.rolling.push(predicted_w, measured_w) {
            return DriftDecision::none();
        }
        if !self.rolling.is_warm() {
            return DriftDecision::none();
        }
        let Some(rolling) = self.rolling.dre() else {
            return DriftDecision::none();
        };
        let ratio = rolling / self.baseline_dre;
        let trigger = if self.since_refit <= self.config.cooldown_s {
            None
        } else if ratio >= self.config.reselect_ratio {
            Some(RefitTier::FullReselect)
        } else if ratio >= self.config.stepwise_ratio {
            Some(RefitTier::StepwiseRerun)
        } else if ratio >= self.config.refresh_ratio {
            Some(RefitTier::CoefficientRefresh)
        } else {
            None
        };
        DriftDecision {
            rolling_dre: Some(rolling),
            ratio: Some(ratio),
            trigger,
        }
    }

    /// Marks a refit as applied: restarts the cooldown clock. The
    /// rolling window is deliberately kept — the refit's effect shows up
    /// as new, smaller errors displacing old ones.
    pub fn note_refit(&mut self) {
        self.since_refit = 0;
    }

    /// The baseline DRE triggers are measured against.
    pub fn baseline_dre(&self) -> f64 {
        self.baseline_dre
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// A typed reading of the rolling window — distinguishes "no valid
    /// pairs at all" from a warming or warm statistic (see
    /// [`chaos_core::eval::DreReading`]).
    pub fn reading(&self) -> chaos_core::eval::DreReading {
        self.rolling.reading()
    }

    /// Empties the rolling window and restarts the cooldown clock —
    /// used when a machine's error history stops describing its model
    /// (post-quarantine rejoin, donor warm-start).
    pub(crate) fn reset_window(&mut self) {
        self.rolling.clear();
        self.since_refit = 0;
    }

    /// Exports the detector's mutable state for checkpointing. The
    /// configuration is not included; restore resupplies it from the
    /// engine configuration.
    pub(crate) fn export_state(&self) -> DriftState {
        DriftState {
            baseline_dre: self.baseline_dre,
            since_refit: self.since_refit,
            rolling: self.rolling.export_state(),
        }
    }

    /// Rebuilds a detector from exported state under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for a non-positive or
    /// non-finite baseline, or a malformed rolling-window snapshot.
    pub(crate) fn import_state(config: DriftConfig, state: DriftState) -> Result<Self, StatsError> {
        if !state.baseline_dre.is_finite() || state.baseline_dre <= 0.0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "drift import: baseline DRE must be finite and positive, got {}",
                    state.baseline_dre
                ),
            });
        }
        Ok(DriftDetector {
            config,
            baseline_dre: state.baseline_dre,
            rolling: RollingDre::import_state(state.rolling)?,
            since_refit: state.since_refit,
        })
    }
}

/// Plain-data snapshot of a [`DriftDetector`]'s mutable state (the
/// configuration travels separately, inside the engine configuration).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DriftState {
    /// Baseline DRE the detector compares against.
    pub baseline_dre: f64,
    /// Seconds since the last applied refit (cooldown clock).
    pub since_refit: usize,
    /// Rolling DRE window contents.
    pub rolling: RollingDreState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(cfg: DriftConfig) -> DriftDetector {
        // Baseline DRE 0.05 over a 100 W dynamic range.
        DriftDetector::new(cfg, 0.05, 200.0, 100.0).unwrap()
    }

    #[test]
    fn cold_window_never_triggers() {
        let mut d = detector(DriftConfig {
            window_s: 10,
            cooldown_s: 0,
            ..DriftConfig::fast()
        });
        for _ in 0..9 {
            // 50 W errors on a 100 W range: catastrophic, but cold.
            let dec = d.observe(150.0, 100.0);
            assert_eq!(dec, DriftDecision::none());
        }
        let dec = d.observe(150.0, 100.0);
        assert_eq!(dec.trigger, Some(RefitTier::FullReselect));
        assert!(dec.ratio.unwrap() > 4.0);
    }

    #[test]
    fn escalation_tracks_ratio() {
        // refresh at 1.5× (DRE 0.075 → 7.5 W errors), stepwise at 2.5×,
        // reselect at 4×. Drive each level with a constant error.
        for (err_w, want) in [
            (2.0, None),
            (10.0, Some(RefitTier::CoefficientRefresh)),
            (15.0, Some(RefitTier::StepwiseRerun)),
            (30.0, Some(RefitTier::FullReselect)),
        ] {
            let mut d = detector(DriftConfig {
                window_s: 5,
                cooldown_s: 0,
                ..DriftConfig::fast()
            });
            let mut last = DriftDecision::none();
            for _ in 0..5 {
                last = d.observe(100.0 + err_w, 100.0);
            }
            assert_eq!(last.trigger, want, "error {err_w} W");
        }
    }

    #[test]
    fn cooldown_suppresses_and_note_refit_restarts_it() {
        let mut d = detector(DriftConfig {
            window_s: 3,
            cooldown_s: 1_000,
            ..DriftConfig::fast()
        });
        for _ in 0..50 {
            let dec = d.observe(180.0, 100.0);
            assert_eq!(dec.trigger, None, "cooldown must suppress triggers");
        }
        // An expired cooldown lets the (still terrible) ratio through.
        let mut d = detector(DriftConfig {
            window_s: 3,
            cooldown_s: 5,
            ..DriftConfig::fast()
        });
        let mut fired_at = None;
        for t in 0..50 {
            if d.observe(180.0, 100.0).trigger.is_some() {
                fired_at = Some(t);
                break;
            }
        }
        assert_eq!(fired_at, Some(5), "first trigger right after cooldown");
        d.note_refit();
        for _ in 0..5 {
            assert_eq!(d.observe(180.0, 100.0).trigger, None);
        }
        assert!(d.observe(180.0, 100.0).trigger.is_some());
    }

    #[test]
    fn non_finite_samples_are_skipped() {
        let mut d = detector(DriftConfig {
            window_s: 2,
            cooldown_s: 0,
            ..DriftConfig::fast()
        });
        for _ in 0..100 {
            assert_eq!(d.observe(f64::NAN, 100.0), DriftDecision::none());
            assert_eq!(d.observe(150.0, f64::NAN), DriftDecision::none());
        }
    }

    #[test]
    fn disabled_config_never_triggers() {
        let mut d = detector(DriftConfig::disabled());
        for _ in 0..200 {
            assert_eq!(d.observe(1_000.0, 100.0).trigger, None);
        }
    }

    #[test]
    fn rejects_bad_baseline() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(DriftDetector::new(DriftConfig::fast(), bad, 200.0, 100.0).is_err());
        }
    }
}
