//! The streaming inference engine.
//!
//! [`StreamEngine`] wraps a trained offline [`RobustEstimator`] and
//! consumes a cluster run one second at a time, producing per-machine
//! and cluster-composed (Eq. 5) power estimates with bounded per-sample
//! work, while adapting online:
//!
//! * Every clean second (complete row, valid meter, nothing imputed) is
//!   ingested into a per-machine [`SlidingWindow`] mirrored by an
//!   incrementally factorized [`WindowedOls`], so a coefficient-level
//!   refit costs O(k²), not O(n·k²).
//! * A [`DriftDetector`] tracks rolling DRE against the held-out
//!   baseline and requests tiered refits; failures downgrade along the
//!   [`RefitTier`] ladder, and — under a [`SupervisorConfig`] — are
//!   retried a bounded number of times and escalate to per-machine
//!   quarantine when they keep failing (see [`crate::supervise`]).
//! * Faulted seconds flow through the *offline* fallback chain
//!   ([`RobustEstimator::estimate_from_row`]) with the exact imputer
//!   state evolution of batch estimation — so until a refit installs an
//!   adapted model, streaming output is bit-identical to
//!   [`RobustEstimator::estimate_cluster`].
//! * Fleet membership may change mid-run: the run's membership schedule
//!   (join / leave / replace, see [`crate::membership`]) is applied at
//!   event seconds before any machine advances, and joining machines
//!   warm-start from a donor and ramp through the refit ladder.
//! * The full engine state snapshots to a versioned binary format
//!   ([`StreamEngine::snapshot`] / [`StreamEngine::restore`], format in
//!   [`crate::checkpoint`]); a process killed at any second and resumed
//!   from its snapshot emits byte-identical predictions.
//!
//! Per-machine streams are independent between membership events;
//! [`StreamEngine::replay`] fans them out under the configured
//! [`ExecPolicy`] within each membership segment and merges per-second
//! sums in machine order, so serial and parallel replay are
//! bit-identical.

use crate::checkpoint;
use crate::drift::{DriftConfig, DriftDetector};
use crate::membership;
use crate::refit::{self, AdaptedModel, RefitOutcome, RefitTier};
use crate::supervise::{self, MachineHealth, RetryState, StreamError, SupervisorConfig};
use crate::window::SlidingWindow;
use chaos_core::robust::{AssembledRow, EstimateTier, ImputerState};
use chaos_core::RobustEstimator;
use chaos_counters::store::SampleSource;
use chaos_counters::{MachineRunTrace, RunTrace};
use chaos_obs::Value;
use chaos_stats::batch::CoefBlock;
use chaos_stats::ols::WindowedOls;
use chaos_stats::stepwise::StepwiseConfig;
use chaos_stats::{ExecPolicy, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for a [`StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Sliding-window capacity in clean seconds per machine.
    pub window_s: usize,
    /// Drift thresholds and pacing.
    pub drift: DriftConfig,
    /// Wald alpha for windowed stepwise reruns.
    pub stepwise_alpha: f64,
    /// Minimum features a windowed stepwise rerun retains.
    pub stepwise_min_features: usize,
    /// Minimum window occupancy before any refit is attempted.
    pub min_refit_samples: usize,
    /// Supervision policy for refit failures (retry budget and
    /// quarantine thresholds). Defaults to disabled, which reproduces
    /// the unsupervised engine bit-identically.
    #[serde(default)]
    pub supervise: SupervisorConfig,
    /// Execution policy for [`StreamEngine::replay`]'s per-machine
    /// fan-out. Results are bit-identical across policies.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl StreamConfig {
    /// Deployment-shaped defaults: five minutes of window, conservative
    /// drift response.
    pub fn paper() -> Self {
        StreamConfig {
            window_s: 300,
            drift: DriftConfig::paper(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 60,
            supervise: SupervisorConfig::disabled(),
            exec: ExecPolicy::Serial,
        }
    }

    /// Short-horizon variant for tests and quick experiments.
    pub fn fast() -> Self {
        StreamConfig {
            window_s: 60,
            drift: DriftConfig::fast(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 20,
            supervise: SupervisorConfig::disabled(),
            exec: ExecPolicy::Serial,
        }
    }

    /// Drift response disabled: the engine replays the offline fallback
    /// chain bit-identically (used by the equivalence tests and as a
    /// safe deployment floor).
    pub fn offline() -> Self {
        StreamConfig {
            drift: DriftConfig::disabled(),
            ..StreamConfig::fast()
        }
    }

    /// Returns a copy with a different execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Returns a copy with a different supervision policy.
    pub fn with_supervise(mut self, supervise: SupervisorConfig) -> Self {
        self.supervise = supervise;
        self
    }
}

/// One machine's streaming estimate for one second.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSample {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// Estimated power, watts. Always finite.
    pub power_w: f64,
    /// Fallback-chain tier that answered (adapted models report
    /// [`EstimateTier::Full`]).
    pub tier: EstimateTier,
    /// Features the imputation policy bridged this second.
    pub imputed: usize,
    /// Whether a window-adapted model produced the estimate.
    pub adapted: bool,
    /// Rolling DRE after this second, once the drift window is warm.
    pub rolling_dre: Option<f64>,
    /// Refit tier applied this second, if one fired.
    pub refit: Option<RefitTier>,
    /// Supervision state the machine held while producing this sample.
    pub health: MachineHealth,
}

/// Cluster-composed streaming output for one second (Eq. 5 with
/// per-machine degradation provenance).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamOutput {
    /// Second this output describes.
    pub t: usize,
    /// Summed cluster power, watts — over *present* machines only.
    pub cluster_power_w: f64,
    /// Least capable tier any present machine needed this second.
    pub worst_tier: EstimateTier,
    /// Machines contributing to the composition this second (left,
    /// not-yet-joined, and quarantined machines are absent).
    pub active_machines: usize,
    /// Per-machine samples for present machines, machine order.
    pub machines: Vec<StreamSample>,
}

/// Per-machine streaming state. Cloneable so parallel replay can work on
/// a private copy per worker and the engine can write results back.
#[derive(Debug, Clone)]
pub(crate) struct MachineState {
    pub(crate) imputer: ImputerState,
    pub(crate) window: SlidingWindow,
    pub(crate) wols: WindowedOls,
    pub(crate) drift: DriftDetector,
    pub(crate) adapted: Option<AdaptedModel>,
    pub(crate) refits: Vec<RefitOutcome>,
    /// Whether the machine is currently a fleet member (joined, not
    /// left). Inactive machines produce no sample at all.
    pub(crate) active: bool,
    /// Supervision state (healthy / ramping / quarantined).
    pub(crate) health: MachineHealth,
    /// Consecutive exhausted refit requests (quarantine trigger).
    pub(crate) consecutive_failures: usize,
    /// Pending bounded retry of a failed refit request.
    pub(crate) retry: Option<RetryState>,
    /// Seconds left outside the composition while quarantined.
    pub(crate) quarantine_left: usize,
    /// Times this machine entered quarantine.
    pub(crate) quarantines: usize,
    /// Times this machine re-entered the composition after quarantine.
    pub(crate) rejoins: usize,
    /// Retry attempts performed.
    pub(crate) retries: usize,
}

/// Reusable per-machine scratch buffers for the streaming hot path.
/// Carries no model state: a fresh instance behaves bit-identically to
/// a warmed one, so scratch is never serialized and parallel replay
/// just makes one per worker.
#[derive(Debug, Clone)]
pub(crate) struct MachineScratch {
    /// Assembled model-input row, reused across seconds.
    pub(crate) assembled: AssembledRow,
    /// Gathered column subset / intercept-augmented row for adapted
    /// predicts and the batched row block.
    pub(crate) aug: Vec<f64>,
    /// Inner design row for [`FittedModel`] predicts.
    pub(crate) design: Vec<f64>,
}

impl MachineScratch {
    pub(crate) fn new() -> Self {
        MachineScratch {
            assembled: AssembledRow {
                row: Vec::new(),
                available: Vec::new(),
                imputed: 0,
            },
            aug: Vec::new(),
            design: Vec::new(),
        }
    }
}

/// Engine-level scratch for the structure-of-arrays batched predict:
/// per tick, every machine whose adapted model is a full-width linear
/// fit on a complete row is gathered into one column-major coefficient
/// block and scored with a single dot-product loop
/// ([`CoefBlock::predict_into`]), instead of one strided `predict_row`
/// call per machine. Machines outside that shape (no adapted model,
/// pruned columns, technique models, incomplete rows) take the scalar
/// path — never zero-padded into the block, which would change bits
/// (`0.0 × NaN`, `-0.0 + 0.0`). All buffers are reused tick to tick.
#[derive(Debug)]
pub(crate) struct BatchScratch {
    /// Per-machine: whether the machine emits a sample this second.
    participates: Vec<bool>,
    /// Column-major coefficient block (`[intercept | coefs]` rows).
    coefs: CoefBlock,
    /// Column-major feature block (`[1 | model-input row]` rows).
    rows: CoefBlock,
    /// Machine index of each block entry, ascending.
    idx: Vec<usize>,
    /// Batched predictions, aligned with `idx`.
    out: Vec<f64>,
}

impl BatchScratch {
    pub(crate) fn new(k: usize) -> Self {
        BatchScratch {
            participates: Vec::new(),
            coefs: CoefBlock::new(k),
            rows: CoefBlock::new(k),
            idx: Vec::new(),
            out: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.participates.clear();
        self.coefs.clear();
        self.rows.clear();
        self.idx.clear();
        self.out.clear();
    }
}

/// The streaming online-inference engine. See the module docs.
#[derive(Debug)]
pub struct StreamEngine {
    pub(crate) estimator: RobustEstimator,
    pub(crate) config: StreamConfig,
    pub(crate) machines: Vec<MachineState>,
    pub(crate) t: usize,
    /// Per-machine scratch, aligned with `machines`. Not serialized.
    pub(crate) scratch: Vec<MachineScratch>,
    /// Batched-predict scratch. Not serialized.
    pub(crate) batch: BatchScratch,
}

impl StreamEngine {
    /// Creates an engine for `machines` parallel streams over a trained
    /// estimator. `power_max_w`/`power_idle_w` define the per-machine
    /// dynamic range the rolling DRE normalizes by (Eq. 6), and
    /// `baseline_dre` is the held-out DRE the drift detector compares
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Stats`] for a zero machine count, a zero
    /// window, or drift parameters rejected by [`DriftDetector::new`].
    pub fn new(
        estimator: RobustEstimator,
        machines: usize,
        power_max_w: f64,
        power_idle_w: f64,
        baseline_dre: f64,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        if machines == 0 {
            return Err(StreamError::Stats(StatsError::InvalidParameter {
                context: "stream engine: need at least one machine stream".into(),
            }));
        }
        let width = estimator.spec().width();
        let states = (0..machines)
            .map(|_| {
                Ok(MachineState {
                    imputer: estimator.new_imputer(),
                    window: SlidingWindow::new(config.window_s, width)?,
                    wols: WindowedOls::new(width),
                    drift: DriftDetector::new(
                        config.drift,
                        baseline_dre,
                        power_max_w,
                        power_idle_w,
                    )?,
                    adapted: None,
                    refits: Vec::new(),
                    active: true,
                    health: MachineHealth::Healthy,
                    consecutive_failures: 0,
                    retry: None,
                    quarantine_left: 0,
                    quarantines: 0,
                    rejoins: 0,
                    retries: 0,
                })
            })
            .collect::<Result<Vec<_>, StatsError>>()?;
        Ok(StreamEngine {
            estimator,
            config,
            machines: states,
            t: 0,
            scratch: (0..machines).map(|_| MachineScratch::new()).collect(),
            batch: BatchScratch::new(width + 1),
        })
    }

    /// Processes second `t` of `run` across all machine streams and
    /// returns the cluster-composed output. Seconds must be fed strictly
    /// in order starting at 0 (or at the snapshot's cursor after
    /// [`restore`](StreamEngine::restore)). Membership events scheduled
    /// at `t` are applied before any machine advances.
    ///
    /// # Errors
    ///
    /// * [`StreamError::OutOfOrder`] if `t` is out of order.
    /// * [`StreamError::BeyondTrace`] if `t` is past the run's length.
    /// * [`StreamError::MachineCountMismatch`] if the run's machine
    ///   count does not match the engine's.
    /// * [`StreamError::Membership`] for an invalid membership schedule.
    // chaos-lint: hot — per-second fleet tick; alloc_regression pins it
    pub fn push_second(&mut self, run: &RunTrace, t: usize) -> Result<StreamOutput, StreamError> {
        let mut out = StreamOutput {
            t,
            cluster_power_w: 0.0,
            worst_tier: EstimateTier::Full,
            active_machines: 0,
            // chaos-lint: allow(R6) — the convenience wrapper owns its output; the alloc-free contract is push_second_into with a caller-reused buffer
            machines: Vec::new(),
        };
        self.push_second_into(run, t, &mut out)?;
        Ok(out)
    }

    /// [`push_second`](StreamEngine::push_second) into a caller-owned
    /// [`StreamOutput`], reusing its sample vector so a steady-state
    /// tick allocates nothing. The output is bit-identical to
    /// `push_second`; on error `out` holds no samples for this second.
    ///
    /// Internally the tick runs in three phases so the fleet is scored
    /// as a block: (1) every machine assembles its model-input row,
    /// (2) machines whose adapted model is a full-width linear fit on a
    /// complete row are gathered into a column-major [`CoefBlock`] and
    /// scored with one dot-product loop, (3) each machine finishes its
    /// second (training ingest, drift, refits) in machine order. Phase
    /// interleaving is unobservable: machine states are independent
    /// within a second, and the batched kernel is bit-identical to the
    /// per-machine scalar predict (see [`chaos_stats::batch`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_second`](StreamEngine::push_second).
    // chaos-lint: hot — alloc-free steady-state tick (alloc_regression)
    pub fn push_second_into(
        &mut self,
        run: &RunTrace,
        t: usize,
        out: &mut StreamOutput,
    ) -> Result<(), StreamError> {
        out.t = t;
        out.cluster_power_w = 0.0;
        out.worst_tier = EstimateTier::Full;
        out.active_machines = 0;
        out.machines.clear();
        if t != self.t {
            return Err(StreamError::OutOfOrder {
                expected: self.t,
                got: t,
            });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StreamError::MachineCountMismatch {
                run: run.machines.len(),
                engine: self.machines.len(),
            });
        }
        if t >= run.seconds() {
            return Err(StreamError::BeyondTrace {
                t,
                seconds: run.seconds(),
            });
        }
        if t == 0 {
            membership::validate(run)?;
            membership::apply_initial_activity(&mut self.machines, run);
        }
        membership::apply_events_at(&self.estimator, &mut self.machines, run, t);

        let estimator = &self.estimator;
        let config = &self.config;

        // Phase 1: quarantine accounting + row assembly per machine.
        self.batch.clear();
        for ((state, scratch), m) in self
            .machines
            .iter_mut()
            .zip(self.scratch.iter_mut())
            .zip(&run.machines)
        {
            let participates = Self::pre_advance(estimator, state, scratch, m, t);
            // chaos-lint: allow(R6) — pushes into a per-engine buffer cleared each tick; clear() keeps capacity, so steady state never grows it
            self.batch.participates.push(participates);
        }

        // Phase 2: gather the SoA block. Eligible machines have an
        // adapted linear fit spanning every spec column (the dominant
        // steady state after a CoefficientRefresh) and a complete row.
        // `columns.len() == width` implies the identity selection:
        // selections are ascending unique indices into `0..width`.
        let width = estimator.spec().width();
        for (i, state) in self.machines.iter().enumerate() {
            if !self.batch.participates[i] || !self.scratch[i].assembled.complete() {
                continue;
            }
            let Some(AdaptedModel::Linear { columns, fit }) = state.adapted.as_ref() else {
                continue;
            };
            if columns.len() != width || fit.coefficients().len() != width + 1 {
                continue;
            }
            let s = &mut self.scratch[i];
            s.aug.clear();
            // chaos-lint: allow(R6) — recycled per-machine scratch; cleared above with capacity kept
            s.aug.push(1.0);
            // chaos-lint: allow(R6) — same recycled scratch, fixed row width
            s.aug.extend_from_slice(&s.assembled.row);
            // chaos-lint: allow(R6) — CoefBlock::push stages into preallocated storage and rejects overflow instead of growing
            if self.batch.coefs.push(fit.coefficients()).is_ok()
                && self.batch.rows.push(&s.aug).is_ok()
            {
                // chaos-lint: allow(R6) — cleared-per-tick index buffer, capacity kept
                self.batch.idx.push(i);
            }
        }
        self.batch.coefs.seal();
        self.batch.rows.seal();
        // chaos-lint: allow(R6) — bounded by machine count; the output buffer's capacity is retained across ticks
        self.batch.out.resize(self.batch.idx.len(), 0.0);
        if !self.batch.idx.is_empty()
            && self
                .batch
                .coefs
                .predict_into(&self.batch.rows, &mut self.batch.out)
                .is_err()
        {
            // Unreachable by construction (widths are validated at
            // gather time); degrade to the scalar path, never drop a
            // sample.
            self.batch.idx.clear();
        }

        // Phase 3: finish every machine's second in machine order,
        // composing as we go — the same accumulation order as
        // `compose`, preserving bit-identity.
        let mut bi = 0usize;
        for (i, ((state, scratch), m)) in self
            .machines
            .iter_mut()
            .zip(self.scratch.iter_mut())
            .zip(&run.machines)
            .enumerate()
        {
            if !self.batch.participates[i] {
                continue;
            }
            let adapted_power = if bi < self.batch.idx.len() && self.batch.idx[bi] == i {
                let p = self.batch.out[bi];
                bi += 1;
                Some(p).filter(|p| p.is_finite())
            } else {
                Self::scalar_adapted_power(state, scratch)
            };
            if let Some(sample) =
                Self::finish_advance(estimator, config, state, scratch, m, t, adapted_power)
            {
                out.cluster_power_w += sample.power_w;
                out.worst_tier = out.worst_tier.max(sample.tier);
                // chaos-lint: allow(R6) — out.machines is cleared (capacity kept) at tick start; bounded by machine count
                out.machines.push(sample);
            }
        }
        out.active_machines = out.machines.len();
        self.t += 1;
        Ok(())
    }

    /// Replays a whole run through a fresh engine, fanning machine
    /// streams out under `config.exec` and merging per-second sums in
    /// machine order — bit-identical to calling
    /// [`push_second`](StreamEngine::push_second) for every second
    /// serially.
    ///
    /// Membership events split the run into segments; events apply
    /// serially at segment boundaries (donor warm-starts read other
    /// machines' state) and machine streams fan out within each segment,
    /// where they are independent.
    ///
    /// # Errors
    ///
    /// * [`StreamError::NotPristine`] if the engine has already consumed
    ///   seconds.
    /// * [`StreamError::MachineCountMismatch`] on a machine-count
    ///   mismatch.
    /// * [`StreamError::Membership`] for an invalid membership schedule.
    pub fn replay(&mut self, run: &RunTrace) -> Result<Vec<StreamOutput>, StreamError> {
        if self.t != 0 {
            return Err(StreamError::NotPristine { consumed: self.t });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StreamError::MachineCountMismatch {
                run: run.machines.len(),
                engine: self.machines.len(),
            });
        }
        membership::validate(run)?;
        let _span = chaos_obs::span("stream.replay");
        let n = run.seconds();
        membership::apply_initial_activity(&mut self.machines, run);

        // Segment boundaries: second 0, every event second, end of run.
        let mut boundaries: Vec<usize> = std::iter::once(0)
            .chain(run.membership.iter().map(|e| e.t))
            .filter(|&t| t < n)
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.push(n);

        let estimator = &self.estimator;
        let config = self.config;
        let mut per_machine_samples: Vec<Vec<Option<StreamSample>>> =
            vec![Vec::with_capacity(n); self.machines.len()];
        for w in boundaries.windows(2) {
            let &[lo, hi] = w else { continue };
            membership::apply_events_at(estimator, &mut self.machines, run, lo);
            let machines = &self.machines;
            let segment: Vec<(MachineState, Vec<Option<StreamSample>>)> =
                config.exec.par_map_indices(machines.len(), |i| {
                    let mut state = machines[i].clone();
                    let mut scratch = MachineScratch::new();
                    let m = &run.machines[i];
                    let samples: Vec<Option<StreamSample>> = (lo..hi)
                        .map(|t| Self::advance(estimator, &config, &mut state, &mut scratch, m, t))
                        .collect();
                    (state, samples)
                });
            for ((state, (new_state, samples)), acc) in self
                .machines
                .iter_mut()
                .zip(segment)
                .zip(per_machine_samples.iter_mut())
            {
                *state = new_state;
                acc.extend(samples);
            }
        }

        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let samples: Vec<Option<StreamSample>> =
                per_machine_samples.iter().map(|s| s[t].clone()).collect();
            outputs.push(Self::compose(t, samples));
        }
        self.t = n;
        Ok(outputs)
    }

    /// Replays a whole run drawn from any [`SampleSource`] — an
    /// in-memory trace or a CHAOSCOL file — bit-identical to
    /// [`replay`](StreamEngine::replay) on the equivalent in-memory
    /// [`RunTrace`], at any `CHAOS_THREADS` setting.
    ///
    /// Streaming replay needs global access the chunk interface cannot
    /// provide — donor warm-starts at membership boundaries read *other*
    /// machines' state, and window-adapted models reach back across
    /// arbitrary spans — so this path materializes the source once and
    /// hands it to [`replay`](StreamEngine::replay). Chunk-at-a-time
    /// consumption with bounded memory lives in the offline path
    /// (`RobustEstimator::estimate_source`).
    ///
    /// # Errors
    ///
    /// [`StreamError::Source`] if the source cannot be drained, plus
    /// every condition of [`replay`](StreamEngine::replay).
    pub fn replay_source<S: SampleSource>(
        &mut self,
        src: &mut S,
    ) -> Result<Vec<StreamOutput>, StreamError> {
        let run = src.materialize()?;
        self.replay(&run)
    }

    /// Processes every not-yet-consumed second of `run` in order —
    /// the restart path after [`restore`](StreamEngine::restore). See
    /// [`snapshot`](StreamEngine::snapshot) for the full
    /// kill/restore/resume round trip.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_second`](StreamEngine::push_second).
    pub fn resume(&mut self, run: &RunTrace) -> Result<Vec<StreamOutput>, StreamError> {
        let n = run.seconds();
        let mut outputs = Vec::with_capacity(n.saturating_sub(self.t));
        while self.t < n {
            let t = self.t;
            outputs.push(self.push_second(run, t)?);
        }
        Ok(outputs)
    }

    /// Serializes the complete engine state (every machine's window,
    /// solver, drift baseline, supervision state, and the sample cursor)
    /// into the versioned binary snapshot format of
    /// [`crate::checkpoint`]. Restoring the snapshot and resuming yields
    /// byte-identical predictions to an uninterrupted run.
    ///
    /// The estimator is deliberately *not* serialized: it is a
    /// deterministic function of training data and configuration, so a
    /// restart retrains (or reloads) it and hands it back to
    /// [`restore`](StreamEngine::restore).
    ///
    /// # Example: kill at an arbitrary second, restore, resume
    ///
    /// ```
    /// use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
    /// use chaos_core::FeatureSpec;
    /// use chaos_counters::{collect_run, CounterCatalog};
    /// use chaos_sim::{Cluster, Platform};
    /// use chaos_stream::{StreamConfig, StreamEngine};
    /// use chaos_workloads::{SimConfig, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Train a small offline estimator (deterministic from the seed).
    /// let cluster = Cluster::homogeneous(Platform::Core2, 2, 9);
    /// let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    /// let sim = SimConfig::quick();
    /// let train = vec![collect_run(&cluster, &catalog, Workload::Prime, &sim, 800)?];
    /// let spec = FeatureSpec::general(&catalog);
    /// let cfg = RobustConfig {
    ///     fit: RobustConfig::fast().fit.with_freq_column(spec.freq_column(&catalog)),
    ///     ..RobustConfig::fast()
    /// };
    /// let cpu = strawman_position(&spec, &catalog);
    /// let idle = cluster.idle_power() / 2.0;
    /// let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg)?;
    ///
    /// // Stream half a run, snapshot, and "kill" the engine.
    /// let run = collect_run(&cluster, &catalog, Workload::Prime, &sim, 801)?;
    /// let max = cluster.max_power() / 2.0;
    /// let mut engine = StreamEngine::new(est.clone(), 2, max, idle, 0.05, StreamConfig::fast())?;
    /// let kill_at = run.seconds() / 2;
    /// let mut outputs = Vec::new();
    /// for t in 0..kill_at {
    ///     outputs.push(engine.push_second(&run, t)?);
    /// }
    /// let snapshot = engine.snapshot();
    /// drop(engine);
    ///
    /// // Restore around a freshly constructed estimator and resume.
    /// let mut restored = StreamEngine::restore(est.clone(), &snapshot)?;
    /// assert_eq!(restored.seconds_processed(), kill_at);
    /// outputs.extend(restored.resume(&run)?);
    ///
    /// // The stitched stream is bit-identical to an uninterrupted run.
    /// let mut uninterrupted = StreamEngine::new(est, 2, max, idle, 0.05, StreamConfig::fast())?;
    /// let expected = uninterrupted.replay(&run)?;
    /// assert_eq!(outputs, expected);
    /// # Ok(())
    /// # }
    /// ```
    pub fn snapshot(&self) -> Vec<u8> {
        checkpoint::encode_engine(self)
    }

    /// Rebuilds an engine from a snapshot around a freshly constructed
    /// `estimator` (the estimator itself is deterministic from training
    /// and is deliberately not part of the snapshot). See
    /// [`snapshot`](StreamEngine::snapshot) for the full
    /// kill/restore/resume round trip.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Snapshot`] for a corrupted, truncated,
    /// version-skewed, or estimator-incompatible snapshot.
    pub fn restore(estimator: RobustEstimator, bytes: &[u8]) -> Result<Self, StreamError> {
        checkpoint::decode_engine(estimator, bytes)
    }

    /// Advances one machine stream by one second — the scalar
    /// (non-batched) path used by replay workers. Associated function
    /// (no `&mut self`) so parallel replay can run it on cloned states.
    /// Returns `None` for machines outside the composition this second
    /// (left, not yet joined, or quarantined). Bit-identical to the
    /// batched phases of [`push_second_into`](StreamEngine::push_second_into).
    fn advance(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        scratch: &mut MachineScratch,
        m: &MachineRunTrace,
        t: usize,
    ) -> Option<StreamSample> {
        if !Self::pre_advance(estimator, state, scratch, m, t) {
            return None;
        }
        let adapted_power = Self::scalar_adapted_power(state, scratch);
        Self::finish_advance(estimator, config, state, scratch, m, t, adapted_power)
    }

    /// First phase of one machine-second: quarantine accounting and row
    /// assembly into `scratch.assembled`. Returns whether the machine
    /// participates in the composition this second.
    fn pre_advance(
        estimator: &RobustEstimator,
        state: &mut MachineState,
        scratch: &mut MachineScratch,
        m: &MachineRunTrace,
        t: usize,
    ) -> bool {
        if !state.active {
            return false;
        }
        if state.health == MachineHealth::Quarantined {
            if state.quarantine_left > 0 {
                state.quarantine_left -= 1;
                chaos_obs::add("stream.supervisor.quarantined_seconds", 1);
                return false;
            }
            // Countdown expired: readmit through the ramp path with the
            // machine's own last adapted model (self-warm-start) and a
            // cleared training window.
            state.health = MachineHealth::Ramping;
            state.window.clear();
            state.wols = WindowedOls::new(state.window.width());
            state.drift.reset_window();
            state.rejoins += 1;
            chaos_obs::add("stream.supervisor.rejoins", 1);
            chaos_obs::event(
                "stream.supervisor.rejoin",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(m.machine_id as u64)),
                ],
            );
        }

        chaos_obs::add("stream.samples", 1);
        estimator.assemble_row_into(m, t, &mut state.imputer, &mut scratch.assembled);
        true
    }

    /// Scalar adapted predict over the assembled row — the per-machine
    /// counterpart of the batched [`CoefBlock`] kernel.
    fn scalar_adapted_power(state: &MachineState, scratch: &mut MachineScratch) -> Option<f64> {
        if !scratch.assembled.complete() {
            return None;
        }
        let MachineScratch {
            assembled,
            aug,
            design,
        } = scratch;
        state
            .adapted
            .as_ref()
            .and_then(|model| model.predict_with(&assembled.row, aug, design))
    }

    /// Final phase of one machine-second: fallback-chain estimation when
    /// no adapted model answered, training ingest, drift scoring, and
    /// the refit ladder. `adapted_power` is the (already
    /// finiteness-filtered) adapted prediction from the batched or
    /// scalar kernel.
    fn finish_advance(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        scratch: &mut MachineScratch,
        m: &MachineRunTrace,
        t: usize,
        adapted_power: Option<f64>,
    ) -> Option<StreamSample> {
        let assembled = &scratch.assembled;

        // Prediction: a window-adapted model answers on complete rows;
        // anything it cannot answer falls through to the offline
        // fallback chain, which reuses the estimator's tiers so faulted
        // counters degrade exactly as they do offline.
        let (power_w, tier, adapted) = match adapted_power {
            Some(p) => (p, EstimateTier::Full, true),
            None => {
                let est = estimator.estimate_from_row_with(assembled, &mut scratch.design);
                (est.power_w, est.tier, false)
            }
        };
        let assembled = &scratch.assembled;

        // The metered power for this second, kept typed: `None` means
        // the meter cannot be trusted (absent, faulted, machine dead, or
        // non-finite) and neither training nor drift scoring sees it.
        let measured = m
            .measured_power_w
            .get(t)
            .copied()
            .filter(|v| v.is_finite() && m.meter_ok(t) && m.alive_at(t));

        // Training ingest: only pristine seconds (complete row, nothing
        // imputed, trusted meter) enter the window, so adapted models
        // never train on reconstructed data.
        let mut ingested = false;
        if let Some(y) = measured {
            if assembled.complete() && assembled.imputed == 0 {
                // chaos-lint: allow(R6) — WindowedOls::push is a rank-1 update into preallocated Gram storage (aug_scratch is reused)
                if state.wols.push(&assembled.row, y).is_ok() {
                    ingested = true;
                    // A full window evicts its oldest row: hand it to
                    // the solver's pop *before* the push recycles its
                    // storage. A failed downdate inside pop falls back
                    // internally; any other pop failure means the
                    // solver and window desynchronized, so rebuild the
                    // solver from the window deterministically.
                    let mut desync = false;
                    if state.window.is_full() {
                        if let Some((old_row, old_y)) = state.window.peek_oldest() {
                            desync = state.wols.pop(old_row, old_y).is_err();
                        }
                    }
                    if state.window.push_recycle(&assembled.row, y).is_err() {
                        // The solver push above validated the same
                        // width, so this cannot fail; count it if the
                        // impossible happens rather than panic.
                        chaos_obs::add("stream.window_push_failed", 1);
                    }
                    if desync {
                        Self::resync_wols(state);
                    }
                }
            }
        }
        chaos_obs::record("stream.window_occupancy", state.window.len() as u64);

        // Ramp completion: a (re)joined machine graduates once its own
        // window has refilled.
        if state.health == MachineHealth::Ramping && state.window.is_full() {
            state.health = MachineHealth::Healthy;
            chaos_obs::add("stream.supervisor.ramp_complete", 1);
            chaos_obs::event(
                "stream.supervisor.ramp_complete",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(m.machine_id as u64)),
                ],
            );
        }

        let mut rolling_dre = None;
        let mut applied_refit = None;

        // Pending bounded retry: re-walk the ladder when fresh clean
        // evidence arrives (a new training sample), never on a timer.
        if let Some(pending) = state.retry {
            if ingested && state.window.len() >= config.min_refit_samples.max(1) {
                state.retries += 1;
                chaos_obs::add("stream.supervisor.retries", 1);
                let requested = Self::capped_tier(state, config, pending.requested);
                let outcome = Self::run_refit(estimator, config, state, requested, t, m.machine_id);
                let succeeded = outcome.applied.is_some();
                applied_refit = outcome.applied;
                // chaos-lint: allow(R6) — refit bookkeeping on the event-driven retry branch, not the quiet tick
                state.refits.push(outcome);
                state.drift.note_refit();
                if succeeded {
                    state.retry = None;
                    state.consecutive_failures = 0;
                } else if pending.attempts_left <= 1 {
                    state.retry = None;
                    Self::note_exhausted(state, config, t, m.machine_id);
                } else {
                    state.retry = Some(RetryState {
                        requested: pending.requested,
                        attempts_left: pending.attempts_left - 1,
                    });
                }
            }
        }

        // Drift: score the emitted prediction against the meter when the
        // meter is trustworthy, and escalate through refit tiers.
        if let Some(y) = measured {
            let decision = state.drift.observe(power_w, y);
            rolling_dre = decision.rolling_dre;
            if let Some(requested) = decision.trigger {
                if state.retry.is_none()
                    && applied_refit.is_none()
                    && state.window.len() >= config.min_refit_samples.max(1)
                {
                    let (dre_field, ratio_field) = match (decision.rolling_dre, decision.ratio) {
                        (Some(d), Some(r)) => (Value::F64(d), Value::F64(r)),
                        // A trigger implies a warm window, so both are
                        // present; keep the event well-formed regardless.
                        _ => (Value::Str("cold".into()), Value::Str("cold".into())),
                    };
                    chaos_obs::event(
                        "stream.drift",
                        &[
                            ("t", Value::U64(t as u64)),
                            ("machine", Value::U64(m.machine_id as u64)),
                            ("rolling_dre", dre_field),
                            ("ratio", ratio_field),
                            // chaos-lint: allow(R6) — drift-event field; this branch fires only on drift detection
                            ("requested", Value::Str(requested.label().to_string())),
                        ],
                    );
                    let capped = Self::capped_tier(state, config, requested);
                    let outcome =
                        Self::run_refit(estimator, config, state, capped, t, m.machine_id);
                    let succeeded = outcome.applied.is_some();
                    applied_refit = outcome.applied;
                    // chaos-lint: allow(R6) — refit bookkeeping on the drift branch, not the quiet tick
                    state.refits.push(outcome);
                    state.drift.note_refit();
                    if succeeded {
                        state.consecutive_failures = 0;
                    } else if config.supervise.max_attempts > 1 {
                        state.retry = Some(RetryState {
                            requested: capped,
                            attempts_left: config.supervise.max_attempts - 1,
                        });
                    } else {
                        Self::note_exhausted(state, config, t, m.machine_id);
                    }
                }
            }
        }

        Some(StreamSample {
            machine_id: m.machine_id,
            power_w,
            tier,
            imputed: assembled.imputed,
            adapted,
            rolling_dre,
            refit: applied_refit,
            health: state.health,
        })
    }

    /// The refit tier actually requested after the ramp cap: a machine
    /// still refilling its window may not run tiers its window cannot
    /// support.
    fn capped_tier(
        state: &MachineState,
        _config: &StreamConfig,
        requested: RefitTier,
    ) -> RefitTier {
        if state.health == MachineHealth::Ramping {
            requested.min(supervise::ramp_cap(
                state.window.len(),
                state.window.capacity(),
            ))
        } else {
            requested
        }
    }

    /// Registers one exhausted refit request (every attempt failed) and
    /// quarantines the machine when the configured threshold of
    /// consecutive exhaustions is reached.
    fn note_exhausted(
        state: &mut MachineState,
        config: &StreamConfig,
        t: usize,
        machine_id: usize,
    ) {
        state.consecutive_failures += 1;
        chaos_obs::add("stream.supervisor.exhausted", 1);
        let threshold = config.supervise.quarantine_after;
        if threshold > 0 && state.consecutive_failures >= threshold {
            state.health = MachineHealth::Quarantined;
            state.quarantine_left = config.supervise.quarantine_s.max(1);
            state.quarantines += 1;
            state.consecutive_failures = 0;
            state.retry = None;
            chaos_obs::add("stream.supervisor.quarantines", 1);
            chaos_obs::event(
                "stream.supervisor.quarantine",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(machine_id as u64)),
                    (
                        "quarantine_s",
                        Value::U64(config.supervise.quarantine_s.max(1) as u64),
                    ),
                ],
            );
        }
    }

    /// Rebuilds the incremental solver from the sliding window after a
    /// desynchronizing pop failure — a deterministic resync instead of a
    /// silently wrong solver.
    // chaos-lint: cold — deterministic recovery from a desynchronizing pop failure; never runs on a healthy steady tick
    fn resync_wols(state: &mut MachineState) {
        chaos_obs::add("stream.wols_resync", 1);
        let mut solver = WindowedOls::new(state.window.width());
        for (row, y) in state.window.iter() {
            if solver.push(row, y).is_err() {
                // Window rows were validated on entry, so a re-push
                // cannot fail; count it if the impossible happens rather
                // than panic in library code.
                chaos_obs::add("stream.wols_resync_skipped", 1);
            }
        }
        state.wols = solver;
    }

    /// Walks the refit ladder from `requested` downward until a tier
    /// succeeds, installing the adapted model on success.
    // chaos-lint: cold — refits are rare, drift/retry-triggered, and explicitly excluded from the steady-state alloc contract
    fn run_refit(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        requested: RefitTier,
        t: usize,
        machine_id: usize,
    ) -> RefitOutcome {
        let stepwise = StepwiseConfig {
            alpha: config.stepwise_alpha,
            min_features: config.stepwise_min_features,
        };
        let technique = estimator.config().technique;
        let fit_opts = estimator.config().fit;
        let mut tier = Some(requested);
        while let Some(current) = tier {
            let _span = chaos_obs::span(current.span_name());
            match refit::execute(
                current,
                &state.window,
                &mut state.wols,
                technique,
                &fit_opts,
                &stepwise,
            ) {
                Ok(model) => {
                    let selected = Some(model.columns().to_vec());
                    state.adapted = Some(model);
                    chaos_obs::add(&format!("stream.refits.{}", current.label()), 1);
                    return RefitOutcome {
                        t,
                        machine_id,
                        requested,
                        applied: Some(current),
                        selected,
                    };
                }
                Err(_) => {
                    chaos_obs::add("stream.refit_failed", 1);
                    tier = current.downgrade();
                }
            }
        }
        RefitOutcome {
            t,
            machine_id,
            requested,
            applied: None,
            selected: None,
        }
    }

    /// Sums present machine samples into the cluster output (Eq. 5), in
    /// machine order — the same accumulation order as
    /// [`RobustEstimator::estimate_cluster`], preserving bit-identity.
    /// Absent machines (left, unjoined, quarantined) contribute nothing.
    fn compose(t: usize, samples: Vec<Option<StreamSample>>) -> StreamOutput {
        let mut cluster_power_w = 0.0;
        let mut worst_tier = EstimateTier::Full;
        let mut machines = Vec::with_capacity(samples.len());
        for s in samples.into_iter().flatten() {
            cluster_power_w += s.power_w;
            worst_tier = worst_tier.max(s.tier);
            machines.push(s);
        }
        StreamOutput {
            t,
            cluster_power_w,
            worst_tier,
            active_machines: machines.len(),
            machines,
        }
    }

    /// Shifts the engine's stream cursor back by `delta` seconds without
    /// touching any model state.
    ///
    /// This is the compaction hook for serving layers that keep a
    /// *bounded rolling buffer* of trace seconds instead of the full run
    /// history: after dropping `delta` leading seconds from the buffer,
    /// rebase the engine by the same amount and the next
    /// [`push_second`](StreamEngine::push_second) call lines up with the
    /// compacted index space. The engine stores no absolute time besides
    /// the cursor, so rebasing is exact — **provided the caller keeps at
    /// least the final consumed second in the buffer**, because feature
    /// assembly reads the previous row for lagged counters. Compacting
    /// down to one retained second (cursor 1) and rebasing every tick is
    /// bit-identical to feeding the uncompacted run (pinned by
    /// `rolling_rebase.rs` in this crate's tests).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Rebase`] if `delta` exceeds the seconds
    /// consumed so far, or if it would drop the lag row (leave the
    /// cursor at 0 after consuming at least one second).
    pub fn rebase(&mut self, delta: usize) -> Result<(), StreamError> {
        if delta > self.t || (self.t > 0 && delta == self.t) {
            return Err(StreamError::Rebase {
                consumed: self.t,
                delta,
            });
        }
        self.t -= delta;
        Ok(())
    }

    /// Removes and returns every refit outcome accumulated since the
    /// last drain, machine order then time order.
    ///
    /// [`refit_outcomes`](StreamEngine::refit_outcomes) keeps the full
    /// log alive inside the engine, which is right for bounded offline
    /// replays but grows without bound in a long-running server. A
    /// serving layer drains instead, keeping engine memory flat and
    /// aggregating tallies on its own side. Outcome `t` values are in
    /// the engine's (possibly rebased) index space.
    pub fn drain_refit_outcomes(&mut self) -> Vec<RefitOutcome> {
        let mut out = Vec::new();
        for state in &mut self.machines {
            out.append(&mut state.refits);
        }
        out
    }

    /// Seconds consumed so far.
    pub fn seconds_processed(&self) -> usize {
        self.t
    }

    /// Every refit outcome so far, machine order then time order.
    pub fn refit_outcomes(&self) -> Vec<&RefitOutcome> {
        self.machines.iter().flat_map(|s| s.refits.iter()).collect()
    }

    /// Applied-refit counts by tier label (downgraded-to-nothing
    /// attempts count under `"none"`).
    pub fn refit_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for outcome in self.machines.iter().flat_map(|s| s.refits.iter()) {
            let key = outcome.applied.map_or("none", RefitTier::label);
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }

    /// Per-machine supervision state, machine order.
    pub fn health(&self) -> Vec<MachineHealth> {
        self.machines.iter().map(|s| s.health).collect()
    }

    /// Machines currently inside the composition (active and not
    /// quarantined).
    pub fn active_count(&self) -> usize {
        self.machines
            .iter()
            .filter(|s| s.active && s.health != MachineHealth::Quarantined)
            .count()
    }

    /// Aggregate supervision counters across all machines.
    pub fn supervision_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        out.insert(
            "quarantines",
            self.machines.iter().map(|s| s.quarantines).sum(),
        );
        out.insert("rejoins", self.machines.iter().map(|s| s.rejoins).sum());
        out.insert("retries", self.machines.iter().map(|s| s.retries).sum());
        out
    }

    /// The wrapped offline estimator.
    pub fn estimator(&self) -> &RobustEstimator {
        &self.estimator
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}
