//! The streaming inference engine.
//!
//! [`StreamEngine`] wraps a trained offline [`RobustEstimator`] and
//! consumes a cluster run one second at a time, producing per-machine
//! and cluster-composed (Eq. 5) power estimates with bounded per-sample
//! work, while adapting online:
//!
//! * Every clean second (complete row, valid meter, nothing imputed) is
//!   ingested into a per-machine [`SlidingWindow`] mirrored by an
//!   incrementally factorized [`WindowedOls`], so a coefficient-level
//!   refit costs O(k²), not O(n·k²).
//! * A [`DriftDetector`] tracks rolling DRE against the held-out
//!   baseline and requests tiered refits; failures downgrade along the
//!   [`RefitTier`] ladder, and — under a [`SupervisorConfig`] — are
//!   retried a bounded number of times and escalate to per-machine
//!   quarantine when they keep failing (see [`crate::supervise`]).
//! * Faulted seconds flow through the *offline* fallback chain
//!   ([`RobustEstimator::estimate_from_row`]) with the exact imputer
//!   state evolution of batch estimation — so until a refit installs an
//!   adapted model, streaming output is bit-identical to
//!   [`RobustEstimator::estimate_cluster`].
//! * Fleet membership may change mid-run: the run's membership schedule
//!   (join / leave / replace, see [`crate::membership`]) is applied at
//!   event seconds before any machine advances, and joining machines
//!   warm-start from a donor and ramp through the refit ladder.
//! * The full engine state snapshots to a versioned binary format
//!   ([`StreamEngine::snapshot`] / [`StreamEngine::restore`], format in
//!   [`crate::checkpoint`]); a process killed at any second and resumed
//!   from its snapshot emits byte-identical predictions.
//!
//! Per-machine streams are independent between membership events;
//! [`StreamEngine::replay`] fans them out under the configured
//! [`ExecPolicy`] within each membership segment and merges per-second
//! sums in machine order, so serial and parallel replay are
//! bit-identical.

use crate::checkpoint;
use crate::drift::{DriftConfig, DriftDetector};
use crate::membership;
use crate::refit::{self, AdaptedModel, RefitOutcome, RefitTier};
use crate::supervise::{self, MachineHealth, RetryState, StreamError, SupervisorConfig};
use crate::window::SlidingWindow;
use chaos_core::robust::{EstimateTier, ImputerState};
use chaos_core::RobustEstimator;
use chaos_counters::store::SampleSource;
use chaos_counters::{MachineRunTrace, RunTrace};
use chaos_obs::Value;
use chaos_stats::ols::WindowedOls;
use chaos_stats::stepwise::StepwiseConfig;
use chaos_stats::{ExecPolicy, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for a [`StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Sliding-window capacity in clean seconds per machine.
    pub window_s: usize,
    /// Drift thresholds and pacing.
    pub drift: DriftConfig,
    /// Wald alpha for windowed stepwise reruns.
    pub stepwise_alpha: f64,
    /// Minimum features a windowed stepwise rerun retains.
    pub stepwise_min_features: usize,
    /// Minimum window occupancy before any refit is attempted.
    pub min_refit_samples: usize,
    /// Supervision policy for refit failures (retry budget and
    /// quarantine thresholds). Defaults to disabled, which reproduces
    /// the unsupervised engine bit-identically.
    #[serde(default)]
    pub supervise: SupervisorConfig,
    /// Execution policy for [`StreamEngine::replay`]'s per-machine
    /// fan-out. Results are bit-identical across policies.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl StreamConfig {
    /// Deployment-shaped defaults: five minutes of window, conservative
    /// drift response.
    pub fn paper() -> Self {
        StreamConfig {
            window_s: 300,
            drift: DriftConfig::paper(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 60,
            supervise: SupervisorConfig::disabled(),
            exec: ExecPolicy::Serial,
        }
    }

    /// Short-horizon variant for tests and quick experiments.
    pub fn fast() -> Self {
        StreamConfig {
            window_s: 60,
            drift: DriftConfig::fast(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 20,
            supervise: SupervisorConfig::disabled(),
            exec: ExecPolicy::Serial,
        }
    }

    /// Drift response disabled: the engine replays the offline fallback
    /// chain bit-identically (used by the equivalence tests and as a
    /// safe deployment floor).
    pub fn offline() -> Self {
        StreamConfig {
            drift: DriftConfig::disabled(),
            ..StreamConfig::fast()
        }
    }

    /// Returns a copy with a different execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Returns a copy with a different supervision policy.
    pub fn with_supervise(mut self, supervise: SupervisorConfig) -> Self {
        self.supervise = supervise;
        self
    }
}

/// One machine's streaming estimate for one second.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSample {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// Estimated power, watts. Always finite.
    pub power_w: f64,
    /// Fallback-chain tier that answered (adapted models report
    /// [`EstimateTier::Full`]).
    pub tier: EstimateTier,
    /// Features the imputation policy bridged this second.
    pub imputed: usize,
    /// Whether a window-adapted model produced the estimate.
    pub adapted: bool,
    /// Rolling DRE after this second, once the drift window is warm.
    pub rolling_dre: Option<f64>,
    /// Refit tier applied this second, if one fired.
    pub refit: Option<RefitTier>,
    /// Supervision state the machine held while producing this sample.
    pub health: MachineHealth,
}

/// Cluster-composed streaming output for one second (Eq. 5 with
/// per-machine degradation provenance).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamOutput {
    /// Second this output describes.
    pub t: usize,
    /// Summed cluster power, watts — over *present* machines only.
    pub cluster_power_w: f64,
    /// Least capable tier any present machine needed this second.
    pub worst_tier: EstimateTier,
    /// Machines contributing to the composition this second (left,
    /// not-yet-joined, and quarantined machines are absent).
    pub active_machines: usize,
    /// Per-machine samples for present machines, machine order.
    pub machines: Vec<StreamSample>,
}

/// Per-machine streaming state. Cloneable so parallel replay can work on
/// a private copy per worker and the engine can write results back.
#[derive(Debug, Clone)]
pub(crate) struct MachineState {
    pub(crate) imputer: ImputerState,
    pub(crate) window: SlidingWindow,
    pub(crate) wols: WindowedOls,
    pub(crate) drift: DriftDetector,
    pub(crate) adapted: Option<AdaptedModel>,
    pub(crate) refits: Vec<RefitOutcome>,
    /// Whether the machine is currently a fleet member (joined, not
    /// left). Inactive machines produce no sample at all.
    pub(crate) active: bool,
    /// Supervision state (healthy / ramping / quarantined).
    pub(crate) health: MachineHealth,
    /// Consecutive exhausted refit requests (quarantine trigger).
    pub(crate) consecutive_failures: usize,
    /// Pending bounded retry of a failed refit request.
    pub(crate) retry: Option<RetryState>,
    /// Seconds left outside the composition while quarantined.
    pub(crate) quarantine_left: usize,
    /// Times this machine entered quarantine.
    pub(crate) quarantines: usize,
    /// Times this machine re-entered the composition after quarantine.
    pub(crate) rejoins: usize,
    /// Retry attempts performed.
    pub(crate) retries: usize,
}

/// The streaming online-inference engine. See the module docs.
#[derive(Debug)]
pub struct StreamEngine {
    pub(crate) estimator: RobustEstimator,
    pub(crate) config: StreamConfig,
    pub(crate) machines: Vec<MachineState>,
    pub(crate) t: usize,
}

impl StreamEngine {
    /// Creates an engine for `machines` parallel streams over a trained
    /// estimator. `power_max_w`/`power_idle_w` define the per-machine
    /// dynamic range the rolling DRE normalizes by (Eq. 6), and
    /// `baseline_dre` is the held-out DRE the drift detector compares
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Stats`] for a zero machine count, a zero
    /// window, or drift parameters rejected by [`DriftDetector::new`].
    pub fn new(
        estimator: RobustEstimator,
        machines: usize,
        power_max_w: f64,
        power_idle_w: f64,
        baseline_dre: f64,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        if machines == 0 {
            return Err(StreamError::Stats(StatsError::InvalidParameter {
                context: "stream engine: need at least one machine stream".into(),
            }));
        }
        let width = estimator.spec().width();
        let states = (0..machines)
            .map(|_| {
                Ok(MachineState {
                    imputer: estimator.new_imputer(),
                    window: SlidingWindow::new(config.window_s, width)?,
                    wols: WindowedOls::new(width),
                    drift: DriftDetector::new(
                        config.drift,
                        baseline_dre,
                        power_max_w,
                        power_idle_w,
                    )?,
                    adapted: None,
                    refits: Vec::new(),
                    active: true,
                    health: MachineHealth::Healthy,
                    consecutive_failures: 0,
                    retry: None,
                    quarantine_left: 0,
                    quarantines: 0,
                    rejoins: 0,
                    retries: 0,
                })
            })
            .collect::<Result<Vec<_>, StatsError>>()?;
        Ok(StreamEngine {
            estimator,
            config,
            machines: states,
            t: 0,
        })
    }

    /// Processes second `t` of `run` across all machine streams and
    /// returns the cluster-composed output. Seconds must be fed strictly
    /// in order starting at 0 (or at the snapshot's cursor after
    /// [`restore`](StreamEngine::restore)). Membership events scheduled
    /// at `t` are applied before any machine advances.
    ///
    /// # Errors
    ///
    /// * [`StreamError::OutOfOrder`] if `t` is out of order.
    /// * [`StreamError::BeyondTrace`] if `t` is past the run's length.
    /// * [`StreamError::MachineCountMismatch`] if the run's machine
    ///   count does not match the engine's.
    /// * [`StreamError::Membership`] for an invalid membership schedule.
    pub fn push_second(&mut self, run: &RunTrace, t: usize) -> Result<StreamOutput, StreamError> {
        if t != self.t {
            return Err(StreamError::OutOfOrder {
                expected: self.t,
                got: t,
            });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StreamError::MachineCountMismatch {
                run: run.machines.len(),
                engine: self.machines.len(),
            });
        }
        if t >= run.seconds() {
            return Err(StreamError::BeyondTrace {
                t,
                seconds: run.seconds(),
            });
        }
        if t == 0 {
            membership::validate(run)?;
            membership::apply_initial_activity(&mut self.machines, run);
        }
        membership::apply_events_at(&self.estimator, &mut self.machines, run, t);
        let mut samples = Vec::with_capacity(self.machines.len());
        for (state, m) in self.machines.iter_mut().zip(&run.machines) {
            samples.push(Self::advance(&self.estimator, &self.config, state, m, t));
        }
        self.t += 1;
        Ok(Self::compose(t, samples))
    }

    /// Replays a whole run through a fresh engine, fanning machine
    /// streams out under `config.exec` and merging per-second sums in
    /// machine order — bit-identical to calling
    /// [`push_second`](StreamEngine::push_second) for every second
    /// serially.
    ///
    /// Membership events split the run into segments; events apply
    /// serially at segment boundaries (donor warm-starts read other
    /// machines' state) and machine streams fan out within each segment,
    /// where they are independent.
    ///
    /// # Errors
    ///
    /// * [`StreamError::NotPristine`] if the engine has already consumed
    ///   seconds.
    /// * [`StreamError::MachineCountMismatch`] on a machine-count
    ///   mismatch.
    /// * [`StreamError::Membership`] for an invalid membership schedule.
    pub fn replay(&mut self, run: &RunTrace) -> Result<Vec<StreamOutput>, StreamError> {
        if self.t != 0 {
            return Err(StreamError::NotPristine { consumed: self.t });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StreamError::MachineCountMismatch {
                run: run.machines.len(),
                engine: self.machines.len(),
            });
        }
        membership::validate(run)?;
        let _span = chaos_obs::span("stream.replay");
        let n = run.seconds();
        membership::apply_initial_activity(&mut self.machines, run);

        // Segment boundaries: second 0, every event second, end of run.
        let mut boundaries: Vec<usize> = std::iter::once(0)
            .chain(run.membership.iter().map(|e| e.t))
            .filter(|&t| t < n)
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.push(n);

        let estimator = &self.estimator;
        let config = self.config;
        let mut per_machine_samples: Vec<Vec<Option<StreamSample>>> =
            vec![Vec::with_capacity(n); self.machines.len()];
        for w in boundaries.windows(2) {
            let &[lo, hi] = w else { continue };
            membership::apply_events_at(estimator, &mut self.machines, run, lo);
            let machines = &self.machines;
            let segment: Vec<(MachineState, Vec<Option<StreamSample>>)> =
                config.exec.par_map_indices(machines.len(), |i| {
                    let mut state = machines[i].clone();
                    let m = &run.machines[i];
                    let samples: Vec<Option<StreamSample>> = (lo..hi)
                        .map(|t| Self::advance(estimator, &config, &mut state, m, t))
                        .collect();
                    (state, samples)
                });
            for ((state, (new_state, samples)), acc) in self
                .machines
                .iter_mut()
                .zip(segment)
                .zip(per_machine_samples.iter_mut())
            {
                *state = new_state;
                acc.extend(samples);
            }
        }

        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let samples: Vec<Option<StreamSample>> =
                per_machine_samples.iter().map(|s| s[t].clone()).collect();
            outputs.push(Self::compose(t, samples));
        }
        self.t = n;
        Ok(outputs)
    }

    /// Replays a whole run drawn from any [`SampleSource`] — an
    /// in-memory trace or a CHAOSCOL file — bit-identical to
    /// [`replay`](StreamEngine::replay) on the equivalent in-memory
    /// [`RunTrace`], at any `CHAOS_THREADS` setting.
    ///
    /// Streaming replay needs global access the chunk interface cannot
    /// provide — donor warm-starts at membership boundaries read *other*
    /// machines' state, and window-adapted models reach back across
    /// arbitrary spans — so this path materializes the source once and
    /// hands it to [`replay`](StreamEngine::replay). Chunk-at-a-time
    /// consumption with bounded memory lives in the offline path
    /// (`RobustEstimator::estimate_source`).
    ///
    /// # Errors
    ///
    /// [`StreamError::Source`] if the source cannot be drained, plus
    /// every condition of [`replay`](StreamEngine::replay).
    pub fn replay_source<S: SampleSource>(
        &mut self,
        src: &mut S,
    ) -> Result<Vec<StreamOutput>, StreamError> {
        let run = src.materialize()?;
        self.replay(&run)
    }

    /// Processes every not-yet-consumed second of `run` in order —
    /// the restart path after [`restore`](StreamEngine::restore). See
    /// [`snapshot`](StreamEngine::snapshot) for the full
    /// kill/restore/resume round trip.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push_second`](StreamEngine::push_second).
    pub fn resume(&mut self, run: &RunTrace) -> Result<Vec<StreamOutput>, StreamError> {
        let n = run.seconds();
        let mut outputs = Vec::with_capacity(n.saturating_sub(self.t));
        while self.t < n {
            let t = self.t;
            outputs.push(self.push_second(run, t)?);
        }
        Ok(outputs)
    }

    /// Serializes the complete engine state (every machine's window,
    /// solver, drift baseline, supervision state, and the sample cursor)
    /// into the versioned binary snapshot format of
    /// [`crate::checkpoint`]. Restoring the snapshot and resuming yields
    /// byte-identical predictions to an uninterrupted run.
    ///
    /// The estimator is deliberately *not* serialized: it is a
    /// deterministic function of training data and configuration, so a
    /// restart retrains (or reloads) it and hands it back to
    /// [`restore`](StreamEngine::restore).
    ///
    /// # Example: kill at an arbitrary second, restore, resume
    ///
    /// ```
    /// use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
    /// use chaos_core::FeatureSpec;
    /// use chaos_counters::{collect_run, CounterCatalog};
    /// use chaos_sim::{Cluster, Platform};
    /// use chaos_stream::{StreamConfig, StreamEngine};
    /// use chaos_workloads::{SimConfig, Workload};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // Train a small offline estimator (deterministic from the seed).
    /// let cluster = Cluster::homogeneous(Platform::Core2, 2, 9);
    /// let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    /// let sim = SimConfig::quick();
    /// let train = vec![collect_run(&cluster, &catalog, Workload::Prime, &sim, 800)?];
    /// let spec = FeatureSpec::general(&catalog);
    /// let cfg = RobustConfig {
    ///     fit: RobustConfig::fast().fit.with_freq_column(spec.freq_column(&catalog)),
    ///     ..RobustConfig::fast()
    /// };
    /// let cpu = strawman_position(&spec, &catalog);
    /// let idle = cluster.idle_power() / 2.0;
    /// let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg)?;
    ///
    /// // Stream half a run, snapshot, and "kill" the engine.
    /// let run = collect_run(&cluster, &catalog, Workload::Prime, &sim, 801)?;
    /// let max = cluster.max_power() / 2.0;
    /// let mut engine = StreamEngine::new(est.clone(), 2, max, idle, 0.05, StreamConfig::fast())?;
    /// let kill_at = run.seconds() / 2;
    /// let mut outputs = Vec::new();
    /// for t in 0..kill_at {
    ///     outputs.push(engine.push_second(&run, t)?);
    /// }
    /// let snapshot = engine.snapshot();
    /// drop(engine);
    ///
    /// // Restore around a freshly constructed estimator and resume.
    /// let mut restored = StreamEngine::restore(est.clone(), &snapshot)?;
    /// assert_eq!(restored.seconds_processed(), kill_at);
    /// outputs.extend(restored.resume(&run)?);
    ///
    /// // The stitched stream is bit-identical to an uninterrupted run.
    /// let mut uninterrupted = StreamEngine::new(est, 2, max, idle, 0.05, StreamConfig::fast())?;
    /// let expected = uninterrupted.replay(&run)?;
    /// assert_eq!(outputs, expected);
    /// # Ok(())
    /// # }
    /// ```
    pub fn snapshot(&self) -> Vec<u8> {
        checkpoint::encode_engine(self)
    }

    /// Rebuilds an engine from a snapshot around a freshly constructed
    /// `estimator` (the estimator itself is deterministic from training
    /// and is deliberately not part of the snapshot). See
    /// [`snapshot`](StreamEngine::snapshot) for the full
    /// kill/restore/resume round trip.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Snapshot`] for a corrupted, truncated,
    /// version-skewed, or estimator-incompatible snapshot.
    pub fn restore(estimator: RobustEstimator, bytes: &[u8]) -> Result<Self, StreamError> {
        checkpoint::decode_engine(estimator, bytes)
    }

    /// Advances one machine stream by one second. Associated function
    /// (no `&mut self`) so parallel replay can run it on cloned states.
    /// Returns `None` for machines outside the composition this second
    /// (left, not yet joined, or quarantined).
    fn advance(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        m: &MachineRunTrace,
        t: usize,
    ) -> Option<StreamSample> {
        if !state.active {
            return None;
        }
        if state.health == MachineHealth::Quarantined {
            if state.quarantine_left > 0 {
                state.quarantine_left -= 1;
                chaos_obs::add("stream.supervisor.quarantined_seconds", 1);
                return None;
            }
            // Countdown expired: readmit through the ramp path with the
            // machine's own last adapted model (self-warm-start) and a
            // cleared training window.
            state.health = MachineHealth::Ramping;
            state.window.clear();
            state.wols = WindowedOls::new(state.window.width());
            state.drift.reset_window();
            state.rejoins += 1;
            chaos_obs::add("stream.supervisor.rejoins", 1);
            chaos_obs::event(
                "stream.supervisor.rejoin",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(m.machine_id as u64)),
                ],
            );
        }

        chaos_obs::add("stream.samples", 1);
        let assembled = estimator.assemble_row(m, t, &mut state.imputer);

        // Prediction: a window-adapted model answers on complete rows;
        // anything it cannot answer falls through to the offline
        // fallback chain, which reuses the estimator's tiers so faulted
        // counters degrade exactly as they do offline.
        let adapted_power = if assembled.complete() {
            state
                .adapted
                .as_ref()
                .and_then(|model| model.predict(&assembled.row))
        } else {
            None
        };
        let (power_w, tier, adapted) = match adapted_power {
            Some(p) => (p, EstimateTier::Full, true),
            None => {
                let est = estimator.estimate_from_row(&assembled);
                (est.power_w, est.tier, false)
            }
        };

        // The metered power for this second, kept typed: `None` means
        // the meter cannot be trusted (absent, faulted, machine dead, or
        // non-finite) and neither training nor drift scoring sees it.
        let measured = m
            .measured_power_w
            .get(t)
            .copied()
            .filter(|v| v.is_finite() && m.meter_ok(t) && m.alive_at(t));

        // Training ingest: only pristine seconds (complete row, nothing
        // imputed, trusted meter) enter the window, so adapted models
        // never train on reconstructed data.
        let mut ingested = false;
        if let Some(y) = measured {
            if assembled.complete() && assembled.imputed == 0 {
                if state.wols.push(&assembled.row, y).is_ok() {
                    ingested = true;
                    if let Ok(Some((old_row, old_y))) = state.window.push(&assembled.row, y) {
                        // A failed downdate inside pop falls back
                        // internally; any other pop failure means the
                        // solver and window desynchronized, so rebuild
                        // the solver from the window deterministically.
                        if state.wols.pop(&old_row, old_y).is_err() {
                            Self::resync_wols(state);
                        }
                    }
                }
            }
        }
        chaos_obs::record("stream.window_occupancy", state.window.len() as u64);

        // Ramp completion: a (re)joined machine graduates once its own
        // window has refilled.
        if state.health == MachineHealth::Ramping && state.window.is_full() {
            state.health = MachineHealth::Healthy;
            chaos_obs::add("stream.supervisor.ramp_complete", 1);
            chaos_obs::event(
                "stream.supervisor.ramp_complete",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(m.machine_id as u64)),
                ],
            );
        }

        let mut rolling_dre = None;
        let mut applied_refit = None;

        // Pending bounded retry: re-walk the ladder when fresh clean
        // evidence arrives (a new training sample), never on a timer.
        if let Some(pending) = state.retry {
            if ingested && state.window.len() >= config.min_refit_samples.max(1) {
                state.retries += 1;
                chaos_obs::add("stream.supervisor.retries", 1);
                let requested = Self::capped_tier(state, config, pending.requested);
                let outcome = Self::run_refit(estimator, config, state, requested, t, m.machine_id);
                let succeeded = outcome.applied.is_some();
                applied_refit = outcome.applied;
                state.refits.push(outcome);
                state.drift.note_refit();
                if succeeded {
                    state.retry = None;
                    state.consecutive_failures = 0;
                } else if pending.attempts_left <= 1 {
                    state.retry = None;
                    Self::note_exhausted(state, config, t, m.machine_id);
                } else {
                    state.retry = Some(RetryState {
                        requested: pending.requested,
                        attempts_left: pending.attempts_left - 1,
                    });
                }
            }
        }

        // Drift: score the emitted prediction against the meter when the
        // meter is trustworthy, and escalate through refit tiers.
        if let Some(y) = measured {
            let decision = state.drift.observe(power_w, y);
            rolling_dre = decision.rolling_dre;
            if let Some(requested) = decision.trigger {
                if state.retry.is_none()
                    && applied_refit.is_none()
                    && state.window.len() >= config.min_refit_samples.max(1)
                {
                    let (dre_field, ratio_field) = match (decision.rolling_dre, decision.ratio) {
                        (Some(d), Some(r)) => (Value::F64(d), Value::F64(r)),
                        // A trigger implies a warm window, so both are
                        // present; keep the event well-formed regardless.
                        _ => (Value::Str("cold".into()), Value::Str("cold".into())),
                    };
                    chaos_obs::event(
                        "stream.drift",
                        &[
                            ("t", Value::U64(t as u64)),
                            ("machine", Value::U64(m.machine_id as u64)),
                            ("rolling_dre", dre_field),
                            ("ratio", ratio_field),
                            ("requested", Value::Str(requested.label().to_string())),
                        ],
                    );
                    let capped = Self::capped_tier(state, config, requested);
                    let outcome =
                        Self::run_refit(estimator, config, state, capped, t, m.machine_id);
                    let succeeded = outcome.applied.is_some();
                    applied_refit = outcome.applied;
                    state.refits.push(outcome);
                    state.drift.note_refit();
                    if succeeded {
                        state.consecutive_failures = 0;
                    } else if config.supervise.max_attempts > 1 {
                        state.retry = Some(RetryState {
                            requested: capped,
                            attempts_left: config.supervise.max_attempts - 1,
                        });
                    } else {
                        Self::note_exhausted(state, config, t, m.machine_id);
                    }
                }
            }
        }

        Some(StreamSample {
            machine_id: m.machine_id,
            power_w,
            tier,
            imputed: assembled.imputed,
            adapted,
            rolling_dre,
            refit: applied_refit,
            health: state.health,
        })
    }

    /// The refit tier actually requested after the ramp cap: a machine
    /// still refilling its window may not run tiers its window cannot
    /// support.
    fn capped_tier(
        state: &MachineState,
        _config: &StreamConfig,
        requested: RefitTier,
    ) -> RefitTier {
        if state.health == MachineHealth::Ramping {
            requested.min(supervise::ramp_cap(
                state.window.len(),
                state.window.capacity(),
            ))
        } else {
            requested
        }
    }

    /// Registers one exhausted refit request (every attempt failed) and
    /// quarantines the machine when the configured threshold of
    /// consecutive exhaustions is reached.
    fn note_exhausted(
        state: &mut MachineState,
        config: &StreamConfig,
        t: usize,
        machine_id: usize,
    ) {
        state.consecutive_failures += 1;
        chaos_obs::add("stream.supervisor.exhausted", 1);
        let threshold = config.supervise.quarantine_after;
        if threshold > 0 && state.consecutive_failures >= threshold {
            state.health = MachineHealth::Quarantined;
            state.quarantine_left = config.supervise.quarantine_s.max(1);
            state.quarantines += 1;
            state.consecutive_failures = 0;
            state.retry = None;
            chaos_obs::add("stream.supervisor.quarantines", 1);
            chaos_obs::event(
                "stream.supervisor.quarantine",
                &[
                    ("t", Value::U64(t as u64)),
                    ("machine", Value::U64(machine_id as u64)),
                    (
                        "quarantine_s",
                        Value::U64(config.supervise.quarantine_s.max(1) as u64),
                    ),
                ],
            );
        }
    }

    /// Rebuilds the incremental solver from the sliding window after a
    /// desynchronizing pop failure — a deterministic resync instead of a
    /// silently wrong solver.
    fn resync_wols(state: &mut MachineState) {
        chaos_obs::add("stream.wols_resync", 1);
        let mut solver = WindowedOls::new(state.window.width());
        for (row, y) in state.window.iter() {
            if solver.push(row, y).is_err() {
                // Window rows were validated on entry, so a re-push
                // cannot fail; count it if the impossible happens rather
                // than panic in library code.
                chaos_obs::add("stream.wols_resync_skipped", 1);
            }
        }
        state.wols = solver;
    }

    /// Walks the refit ladder from `requested` downward until a tier
    /// succeeds, installing the adapted model on success.
    fn run_refit(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        requested: RefitTier,
        t: usize,
        machine_id: usize,
    ) -> RefitOutcome {
        let stepwise = StepwiseConfig {
            alpha: config.stepwise_alpha,
            min_features: config.stepwise_min_features,
        };
        let technique = estimator.config().technique;
        let fit_opts = estimator.config().fit;
        let mut tier = Some(requested);
        while let Some(current) = tier {
            let _span = chaos_obs::span(current.span_name());
            match refit::execute(
                current,
                &state.window,
                &mut state.wols,
                technique,
                &fit_opts,
                &stepwise,
            ) {
                Ok(model) => {
                    let selected = Some(model.columns().to_vec());
                    state.adapted = Some(model);
                    chaos_obs::add(&format!("stream.refits.{}", current.label()), 1);
                    return RefitOutcome {
                        t,
                        machine_id,
                        requested,
                        applied: Some(current),
                        selected,
                    };
                }
                Err(_) => {
                    chaos_obs::add("stream.refit_failed", 1);
                    tier = current.downgrade();
                }
            }
        }
        RefitOutcome {
            t,
            machine_id,
            requested,
            applied: None,
            selected: None,
        }
    }

    /// Sums present machine samples into the cluster output (Eq. 5), in
    /// machine order — the same accumulation order as
    /// [`RobustEstimator::estimate_cluster`], preserving bit-identity.
    /// Absent machines (left, unjoined, quarantined) contribute nothing.
    fn compose(t: usize, samples: Vec<Option<StreamSample>>) -> StreamOutput {
        let mut cluster_power_w = 0.0;
        let mut worst_tier = EstimateTier::Full;
        let mut machines = Vec::with_capacity(samples.len());
        for s in samples.into_iter().flatten() {
            cluster_power_w += s.power_w;
            worst_tier = worst_tier.max(s.tier);
            machines.push(s);
        }
        StreamOutput {
            t,
            cluster_power_w,
            worst_tier,
            active_machines: machines.len(),
            machines,
        }
    }

    /// Shifts the engine's stream cursor back by `delta` seconds without
    /// touching any model state.
    ///
    /// This is the compaction hook for serving layers that keep a
    /// *bounded rolling buffer* of trace seconds instead of the full run
    /// history: after dropping `delta` leading seconds from the buffer,
    /// rebase the engine by the same amount and the next
    /// [`push_second`](StreamEngine::push_second) call lines up with the
    /// compacted index space. The engine stores no absolute time besides
    /// the cursor, so rebasing is exact — **provided the caller keeps at
    /// least the final consumed second in the buffer**, because feature
    /// assembly reads the previous row for lagged counters. Compacting
    /// down to one retained second (cursor 1) and rebasing every tick is
    /// bit-identical to feeding the uncompacted run (pinned by
    /// `rolling_rebase.rs` in this crate's tests).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Rebase`] if `delta` exceeds the seconds
    /// consumed so far, or if it would drop the lag row (leave the
    /// cursor at 0 after consuming at least one second).
    pub fn rebase(&mut self, delta: usize) -> Result<(), StreamError> {
        if delta > self.t || (self.t > 0 && delta == self.t) {
            return Err(StreamError::Rebase {
                consumed: self.t,
                delta,
            });
        }
        self.t -= delta;
        Ok(())
    }

    /// Removes and returns every refit outcome accumulated since the
    /// last drain, machine order then time order.
    ///
    /// [`refit_outcomes`](StreamEngine::refit_outcomes) keeps the full
    /// log alive inside the engine, which is right for bounded offline
    /// replays but grows without bound in a long-running server. A
    /// serving layer drains instead, keeping engine memory flat and
    /// aggregating tallies on its own side. Outcome `t` values are in
    /// the engine's (possibly rebased) index space.
    pub fn drain_refit_outcomes(&mut self) -> Vec<RefitOutcome> {
        let mut out = Vec::new();
        for state in &mut self.machines {
            out.append(&mut state.refits);
        }
        out
    }

    /// Seconds consumed so far.
    pub fn seconds_processed(&self) -> usize {
        self.t
    }

    /// Every refit outcome so far, machine order then time order.
    pub fn refit_outcomes(&self) -> Vec<&RefitOutcome> {
        self.machines.iter().flat_map(|s| s.refits.iter()).collect()
    }

    /// Applied-refit counts by tier label (downgraded-to-nothing
    /// attempts count under `"none"`).
    pub fn refit_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for outcome in self.machines.iter().flat_map(|s| s.refits.iter()) {
            let key = outcome.applied.map_or("none", RefitTier::label);
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }

    /// Per-machine supervision state, machine order.
    pub fn health(&self) -> Vec<MachineHealth> {
        self.machines.iter().map(|s| s.health).collect()
    }

    /// Machines currently inside the composition (active and not
    /// quarantined).
    pub fn active_count(&self) -> usize {
        self.machines
            .iter()
            .filter(|s| s.active && s.health != MachineHealth::Quarantined)
            .count()
    }

    /// Aggregate supervision counters across all machines.
    pub fn supervision_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        out.insert(
            "quarantines",
            self.machines.iter().map(|s| s.quarantines).sum(),
        );
        out.insert("rejoins", self.machines.iter().map(|s| s.rejoins).sum());
        out.insert("retries", self.machines.iter().map(|s| s.retries).sum());
        out
    }

    /// The wrapped offline estimator.
    pub fn estimator(&self) -> &RobustEstimator {
        &self.estimator
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}
