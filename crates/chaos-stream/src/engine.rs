//! The streaming inference engine.
//!
//! [`StreamEngine`] wraps a trained offline [`RobustEstimator`] and
//! consumes a cluster run one second at a time, producing per-machine
//! and cluster-composed (Eq. 5) power estimates with bounded per-sample
//! work, while adapting online:
//!
//! * Every clean second (complete row, valid meter, nothing imputed) is
//!   ingested into a per-machine [`SlidingWindow`] mirrored by an
//!   incrementally factorized [`WindowedOls`], so a coefficient-level
//!   refit costs O(k²), not O(n·k²).
//! * A [`DriftDetector`] tracks rolling DRE against the held-out
//!   baseline and requests tiered refits; failures downgrade along the
//!   [`RefitTier`] ladder.
//! * Faulted seconds flow through the *offline* fallback chain
//!   ([`RobustEstimator::estimate_from_row`]) with the exact imputer
//!   state evolution of batch estimation — so until a refit installs an
//!   adapted model, streaming output is bit-identical to
//!   [`RobustEstimator::estimate_cluster`].
//!
//! Per-machine streams are independent; [`StreamEngine::replay`] fans
//! them out under the configured [`ExecPolicy`] and merges per-second
//! sums in machine order, so serial and parallel replay are
//! bit-identical.

use crate::drift::{DriftConfig, DriftDetector};
use crate::refit::{self, AdaptedModel, RefitOutcome, RefitTier};
use crate::window::SlidingWindow;
use chaos_core::robust::{EstimateTier, ImputerState};
use chaos_core::RobustEstimator;
use chaos_counters::{MachineRunTrace, RunTrace};
use chaos_obs::Value;
use chaos_stats::ols::WindowedOls;
use chaos_stats::stepwise::StepwiseConfig;
use chaos_stats::{ExecPolicy, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for a [`StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Sliding-window capacity in clean seconds per machine.
    pub window_s: usize,
    /// Drift thresholds and pacing.
    pub drift: DriftConfig,
    /// Wald alpha for windowed stepwise reruns.
    pub stepwise_alpha: f64,
    /// Minimum features a windowed stepwise rerun retains.
    pub stepwise_min_features: usize,
    /// Minimum window occupancy before any refit is attempted.
    pub min_refit_samples: usize,
    /// Execution policy for [`StreamEngine::replay`]'s per-machine
    /// fan-out. Results are bit-identical across policies.
    #[serde(default)]
    pub exec: ExecPolicy,
}

impl StreamConfig {
    /// Deployment-shaped defaults: five minutes of window, conservative
    /// drift response.
    pub fn paper() -> Self {
        StreamConfig {
            window_s: 300,
            drift: DriftConfig::paper(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 60,
            exec: ExecPolicy::Serial,
        }
    }

    /// Short-horizon variant for tests and quick experiments.
    pub fn fast() -> Self {
        StreamConfig {
            window_s: 60,
            drift: DriftConfig::fast(),
            stepwise_alpha: 0.05,
            stepwise_min_features: 2,
            min_refit_samples: 20,
            exec: ExecPolicy::Serial,
        }
    }

    /// Drift response disabled: the engine replays the offline fallback
    /// chain bit-identically (used by the equivalence tests and as a
    /// safe deployment floor).
    pub fn offline() -> Self {
        StreamConfig {
            drift: DriftConfig::disabled(),
            ..StreamConfig::fast()
        }
    }

    /// Returns a copy with a different execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// One machine's streaming estimate for one second.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSample {
    /// Machine id within the cluster.
    pub machine_id: usize,
    /// Estimated power, watts. Always finite.
    pub power_w: f64,
    /// Fallback-chain tier that answered (adapted models report
    /// [`EstimateTier::Full`]).
    pub tier: EstimateTier,
    /// Features the imputation policy bridged this second.
    pub imputed: usize,
    /// Whether a window-adapted model produced the estimate.
    pub adapted: bool,
    /// Rolling DRE after this second, once the drift window is warm.
    pub rolling_dre: Option<f64>,
    /// Refit tier applied this second, if one fired.
    pub refit: Option<RefitTier>,
}

/// Cluster-composed streaming output for one second (Eq. 5 with
/// per-machine degradation provenance).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamOutput {
    /// Second this output describes.
    pub t: usize,
    /// Summed cluster power, watts.
    pub cluster_power_w: f64,
    /// Least capable tier any machine needed this second.
    pub worst_tier: EstimateTier,
    /// Per-machine samples, machine order.
    pub machines: Vec<StreamSample>,
}

/// Per-machine streaming state. Cloneable so parallel replay can work on
/// a private copy per worker and the engine can write results back.
#[derive(Debug, Clone)]
struct MachineState {
    imputer: ImputerState,
    window: SlidingWindow,
    wols: WindowedOls,
    drift: DriftDetector,
    adapted: Option<AdaptedModel>,
    refits: Vec<RefitOutcome>,
}

/// The streaming online-inference engine. See the module docs.
#[derive(Debug)]
pub struct StreamEngine {
    estimator: RobustEstimator,
    config: StreamConfig,
    machines: Vec<MachineState>,
    t: usize,
}

impl StreamEngine {
    /// Creates an engine for `machines` parallel streams over a trained
    /// estimator. `power_max_w`/`power_idle_w` define the per-machine
    /// dynamic range the rolling DRE normalizes by (Eq. 6), and
    /// `baseline_dre` is the held-out DRE the drift detector compares
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for a zero machine
    /// count, a zero window, or drift parameters rejected by
    /// [`DriftDetector::new`].
    pub fn new(
        estimator: RobustEstimator,
        machines: usize,
        power_max_w: f64,
        power_idle_w: f64,
        baseline_dre: f64,
        config: StreamConfig,
    ) -> Result<Self, StatsError> {
        if machines == 0 {
            return Err(StatsError::InvalidParameter {
                context: "stream engine: need at least one machine stream".into(),
            });
        }
        let width = estimator.spec().width();
        let states = (0..machines)
            .map(|_| {
                Ok(MachineState {
                    imputer: estimator.new_imputer(),
                    window: SlidingWindow::new(config.window_s, width)?,
                    wols: WindowedOls::new(width),
                    drift: DriftDetector::new(
                        config.drift,
                        baseline_dre,
                        power_max_w,
                        power_idle_w,
                    )?,
                    adapted: None,
                    refits: Vec::new(),
                })
            })
            .collect::<Result<Vec<_>, StatsError>>()?;
        Ok(StreamEngine {
            estimator,
            config,
            machines: states,
            t: 0,
        })
    }

    /// Processes second `t` of `run` across all machine streams and
    /// returns the cluster-composed output. Seconds must be fed strictly
    /// in order starting at 0.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if `t` is out of order or
    ///   beyond the run's length.
    /// * [`StatsError::DimensionMismatch`] if the run's machine count
    ///   does not match the engine's.
    pub fn push_second(&mut self, run: &RunTrace, t: usize) -> Result<StreamOutput, StatsError> {
        if t != self.t {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "stream engine: expected second {} next, got {t} (feed seconds in order)",
                    self.t
                ),
            });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "stream engine: run has {} machines, engine has {}",
                    run.machines.len(),
                    self.machines.len()
                ),
            });
        }
        if t >= run.seconds() {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "stream engine: second {t} beyond run length {}",
                    run.seconds()
                ),
            });
        }
        let mut samples = Vec::with_capacity(self.machines.len());
        for (state, m) in self.machines.iter_mut().zip(&run.machines) {
            samples.push(Self::advance(&self.estimator, &self.config, state, m, t));
        }
        self.t += 1;
        Ok(Self::compose(t, samples))
    }

    /// Replays a whole run through a fresh engine, fanning machine
    /// streams out under `config.exec` and merging per-second sums in
    /// machine order — bit-identical to calling
    /// [`push_second`](StreamEngine::push_second) for every second
    /// serially.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidParameter`] if the engine has already
    ///   consumed seconds (replay needs pristine per-machine state).
    /// * [`StatsError::DimensionMismatch`] on a machine-count mismatch.
    pub fn replay(&mut self, run: &RunTrace) -> Result<Vec<StreamOutput>, StatsError> {
        if self.t != 0 {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "stream engine: replay needs a fresh engine, {} seconds already consumed",
                    self.t
                ),
            });
        }
        if run.machines.len() != self.machines.len() {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "stream engine: run has {} machines, engine has {}",
                    run.machines.len(),
                    self.machines.len()
                ),
            });
        }
        let _span = chaos_obs::span("stream.replay");
        let n = run.seconds();
        let estimator = &self.estimator;
        let config = &self.config;
        let machines = &self.machines;
        let per_machine: Vec<(MachineState, Vec<StreamSample>)> =
            config.exec.par_map_indices(machines.len(), |i| {
                let mut state = machines[i].clone();
                let m = &run.machines[i];
                let samples: Vec<StreamSample> = (0..n)
                    .map(|t| Self::advance(estimator, config, &mut state, m, t))
                    .collect();
                (state, samples)
            });
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let samples: Vec<StreamSample> =
                per_machine.iter().map(|(_, s)| s[t].clone()).collect();
            outputs.push(Self::compose(t, samples));
        }
        for (state, (new_state, _)) in self.machines.iter_mut().zip(per_machine) {
            *state = new_state;
        }
        self.t = n;
        Ok(outputs)
    }

    /// Advances one machine stream by one second. Associated function
    /// (no `&mut self`) so parallel replay can run it on cloned states.
    fn advance(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        m: &MachineRunTrace,
        t: usize,
    ) -> StreamSample {
        chaos_obs::add("stream.samples", 1);
        let assembled = estimator.assemble_row(m, t, &mut state.imputer);

        // Prediction: a window-adapted model answers on complete rows;
        // anything it cannot answer falls through to the offline
        // fallback chain, which reuses the estimator's tiers so faulted
        // counters degrade exactly as they do offline.
        let adapted_power = if assembled.complete() {
            state
                .adapted
                .as_ref()
                .and_then(|model| model.predict(&assembled.row))
        } else {
            None
        };
        let (power_w, tier, adapted) = match adapted_power {
            Some(p) => (p, EstimateTier::Full, true),
            None => {
                let est = estimator.estimate_from_row(&assembled);
                (est.power_w, est.tier, false)
            }
        };

        // Training ingest: only pristine seconds (complete row, nothing
        // imputed, live machine, valid finite meter) enter the window,
        // so adapted models never train on reconstructed data.
        let measured = m.measured_power_w.get(t).copied().unwrap_or(f64::NAN);
        let meter_valid = m.meter_ok(t) && m.alive_at(t) && measured.is_finite();
        if meter_valid && assembled.complete() && assembled.imputed == 0 {
            if state.wols.push(&assembled.row, measured).is_ok() {
                if let Ok(Some((old_row, old_y))) = state.window.push(&assembled.row, measured) {
                    // A failed downdate inside pop falls back internally
                    // (full refactorization on next solve); other errors
                    // are impossible given the lockstep invariant.
                    let _ = state.wols.pop(&old_row, old_y);
                }
            }
        }
        chaos_obs::record("stream.window_occupancy", state.window.len() as u64);

        // Drift: score the emitted prediction against the meter when the
        // meter is trustworthy, and escalate through refit tiers.
        let mut rolling_dre = None;
        let mut applied_refit = None;
        if meter_valid {
            let decision = state.drift.observe(power_w, measured);
            rolling_dre = decision.rolling_dre;
            if let Some(requested) = decision.trigger {
                if state.window.len() >= config.min_refit_samples.max(1) {
                    chaos_obs::event(
                        "stream.drift",
                        &[
                            ("t", Value::U64(t as u64)),
                            ("machine", Value::U64(m.machine_id as u64)),
                            (
                                "rolling_dre",
                                Value::F64(decision.rolling_dre.unwrap_or(f64::NAN)),
                            ),
                            ("ratio", Value::F64(decision.ratio.unwrap_or(f64::NAN))),
                            ("requested", Value::Str(requested.label().to_string())),
                        ],
                    );
                    let outcome =
                        Self::run_refit(estimator, config, state, requested, t, m.machine_id);
                    applied_refit = outcome.applied;
                    state.refits.push(outcome);
                    state.drift.note_refit();
                }
            }
        }

        StreamSample {
            machine_id: m.machine_id,
            power_w,
            tier,
            imputed: assembled.imputed,
            adapted,
            rolling_dre,
            refit: applied_refit,
        }
    }

    /// Walks the refit ladder from `requested` downward until a tier
    /// succeeds, installing the adapted model on success.
    fn run_refit(
        estimator: &RobustEstimator,
        config: &StreamConfig,
        state: &mut MachineState,
        requested: RefitTier,
        t: usize,
        machine_id: usize,
    ) -> RefitOutcome {
        let stepwise = StepwiseConfig {
            alpha: config.stepwise_alpha,
            min_features: config.stepwise_min_features,
        };
        let technique = estimator.config().technique;
        let fit_opts = estimator.config().fit;
        let mut tier = Some(requested);
        while let Some(current) = tier {
            let _span = chaos_obs::span(current.span_name());
            match refit::execute(
                current,
                &state.window,
                &mut state.wols,
                technique,
                &fit_opts,
                &stepwise,
            ) {
                Ok(model) => {
                    let selected = Some(model.columns().to_vec());
                    state.adapted = Some(model);
                    chaos_obs::add(&format!("stream.refits.{}", current.label()), 1);
                    return RefitOutcome {
                        t,
                        machine_id,
                        requested,
                        applied: Some(current),
                        selected,
                    };
                }
                Err(_) => {
                    chaos_obs::add("stream.refit_failed", 1);
                    tier = current.downgrade();
                }
            }
        }
        RefitOutcome {
            t,
            machine_id,
            requested,
            applied: None,
            selected: None,
        }
    }

    /// Sums machine samples into the cluster output (Eq. 5), in machine
    /// order — the same accumulation order as
    /// [`RobustEstimator::estimate_cluster`], preserving bit-identity.
    fn compose(t: usize, samples: Vec<StreamSample>) -> StreamOutput {
        let mut cluster_power_w = 0.0;
        let mut worst_tier = EstimateTier::Full;
        for s in &samples {
            cluster_power_w += s.power_w;
            worst_tier = worst_tier.max(s.tier);
        }
        StreamOutput {
            t,
            cluster_power_w,
            worst_tier,
            machines: samples,
        }
    }

    /// Seconds consumed so far.
    pub fn seconds_processed(&self) -> usize {
        self.t
    }

    /// Every refit outcome so far, machine order then time order.
    pub fn refit_outcomes(&self) -> Vec<&RefitOutcome> {
        self.machines.iter().flat_map(|s| s.refits.iter()).collect()
    }

    /// Applied-refit counts by tier label (downgraded-to-nothing
    /// attempts count under `"none"`).
    pub fn refit_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for outcome in self.machines.iter().flat_map(|s| s.refits.iter()) {
            let key = outcome.applied.map_or("none", RefitTier::label);
            *out.entry(key).or_insert(0) += 1;
        }
        out
    }

    /// The wrapped offline estimator.
    pub fn estimator(&self) -> &RobustEstimator {
        &self.estimator
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}
