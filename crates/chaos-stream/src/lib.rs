//! Streaming online inference for CHAOS power models.
//!
//! The paper's deployment story (Section V: "the model can be used
//! online with negligible overhead") needs more than a fast
//! `predict_row`: a deployed estimator consumes counter samples *one
//! second at a time*, composes machine estimates into cluster power
//! (Eq. 5) with bounded per-sample latency, and must notice when its
//! frozen model stops matching the workload. This crate is that layer:
//!
//! * [`StreamEngine`] — the per-second ingestion loop over a trained
//!   [`chaos_core::RobustEstimator`]. Until a refit fires, its output is
//!   bit-identical to offline batch estimation — same imputer evolution,
//!   same fallback tiers, same machine-order summation.
//! * [`SlidingWindow`] + [`chaos_stats::ols::WindowedOls`] — the most
//!   recent clean observations per machine, with a rank-1
//!   Cholesky-updated Gram factorization so sliding one sample costs
//!   O(k²) instead of O(n·k²).
//! * [`DriftDetector`] — rolling DRE (Eq. 6) against the held-out
//!   baseline, escalating through [`RefitTier`]s: coefficient refresh →
//!   windowed stepwise rerun → full reselection.
//!
//! The engine also survives deployment reality:
//!
//! * [`checkpoint`] — versioned binary snapshots of the full engine
//!   state ([`StreamEngine::snapshot`] / [`StreamEngine::restore`],
//!   atomic persistence via [`Checkpointer`]). Kill the process at any
//!   second, restore, and replay the remainder: the predictions are
//!   byte-identical to an uninterrupted run.
//! * [`membership`] — join / leave / replace fleet-churn events applied
//!   deterministically; joining machines warm-start from a donor and
//!   ramp through the refit ladder.
//! * [`supervise`] — typed [`StreamError`]s, a bounded attempt-counted
//!   retry policy for failed refits, and per-machine quarantine
//!   ([`MachineHealth`]) that drops a persistently failing model out of
//!   the Eq. 5 composition.
//!
//! Input arrives either as whole traces replayed second-by-second
//! ([`StreamEngine::replay`]) or via [`StreamEngine::push_second`]; the
//! per-sample surface over raw traces is
//! [`chaos_counters::RunTrace::sample_stream`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod drift;
pub mod engine;
pub mod membership;
pub mod refit;
pub mod supervise;
pub mod window;

pub use checkpoint::{Checkpointer, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use drift::{DriftConfig, DriftDecision, DriftDetector};
pub use engine::{StreamConfig, StreamEngine, StreamOutput, StreamSample};
pub use refit::{AdaptedModel, RefitOutcome, RefitTier};
pub use supervise::{MachineHealth, StreamError, SupervisorConfig};
pub use window::SlidingWindow;
