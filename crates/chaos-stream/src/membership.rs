//! Fleet-membership churn: join, leave, and replace events applied to
//! live engine state.
//!
//! A cluster's composition (Eq. 5) is not static in deployment: machines
//! get decommissioned, rebooted, and swapped. The engine consumes the
//! membership schedule attached to a
//! [`RunTrace`](chaos_counters::RunTrace) and applies each event at the
//! second it names, *before* advancing any machine stream for that
//! second — the same ordering whether seconds arrive one at a time
//! ([`StreamEngine::push_second`](crate::StreamEngine::push_second)) or
//! through the segmented parallel fan-out of
//! [`StreamEngine::replay`](crate::StreamEngine::replay), which is what
//! keeps composition deterministic under any membership sequence.
//!
//! A joining machine does not start cold: it *warm-starts* from a donor
//! machine's adapted model when one is named (falling back to a linear
//! fit of the donor's sliding-window solver, then to no adapted model at
//! all), and ramps back through the refit ladder — window occupancy caps
//! the refit tier it may request until its own window fills (see
//! [`crate::supervise`]).

use crate::engine::MachineState;
use crate::refit::AdaptedModel;
use crate::supervise::{MachineHealth, StreamError};
use chaos_core::RobustEstimator;
use chaos_counters::{MembershipKind, RunTrace};
use chaos_obs::Value;
use chaos_stats::ols::WindowedOls;

/// Validates a run's membership schedule for streaming consumption.
// chaos-lint: cold — runs once at t = 0, inside warmup; the alloc_regression contract starts counting after warmup
pub(crate) fn validate(run: &RunTrace) -> Result<(), StreamError> {
    run.validate_membership()
        .map_err(|e| StreamError::Membership {
            context: e.to_string(),
        })
}

/// Applies the initial-activity rule: a machine whose first membership
/// event is a join starts outside the composition and enters it when
/// the join fires.
pub(crate) fn apply_initial_activity(states: &mut [MachineState], run: &RunTrace) {
    for (i, state) in states.iter_mut().enumerate() {
        state.active = run.initially_active(i);
    }
}

/// Applies every membership event scheduled at second `t`, in schedule
/// order. Donor reads happen here, serially, against post-`t − 1`
/// state — which is why replay fans out between membership boundaries
/// rather than across them.
// chaos-lint: cold — membership churn (join/leave/warm-start) is event-driven and excluded from the steady-state alloc contract
pub(crate) fn apply_events_at(
    estimator: &RobustEstimator,
    states: &mut [MachineState],
    run: &RunTrace,
    t: usize,
) {
    for event in run.membership.iter().filter(|e| e.t == t) {
        let id = event.machine_id;
        if id >= states.len() {
            // validate() rejects this before any event applies; skip
            // defensively rather than index out of range.
            continue;
        }
        match event.kind {
            MembershipKind::Leave => {
                states[id].active = false;
                chaos_obs::add("stream.membership.leave", 1);
                chaos_obs::event(
                    "stream.membership.leave",
                    &[
                        ("t", Value::U64(t as u64)),
                        ("machine", Value::U64(id as u64)),
                    ],
                );
            }
            MembershipKind::Join { donor } => {
                join(estimator, states, id, donor, false);
                chaos_obs::add("stream.membership.join", 1);
                chaos_obs::event(
                    "stream.membership.join",
                    &[
                        ("t", Value::U64(t as u64)),
                        ("machine", Value::U64(id as u64)),
                        (
                            "donor",
                            Value::Str(donor.map_or("none".to_string(), |d| d.to_string())),
                        ),
                    ],
                );
            }
            MembershipKind::Replace { donor } => {
                join(estimator, states, id, donor, true);
                chaos_obs::add("stream.membership.replace", 1);
                chaos_obs::event(
                    "stream.membership.replace",
                    &[
                        ("t", Value::U64(t as u64)),
                        ("machine", Value::U64(id as u64)),
                        (
                            "donor",
                            Value::Str(donor.map_or("none".to_string(), |d| d.to_string())),
                        ),
                    ],
                );
            }
        }
    }
}

/// Brings machine `id` into the composition as a ramping member:
/// training state is reset, the adapted model warm-starts from `donor`
/// when possible, and — for a hardware replacement — the imputer history
/// is discarded too (the new machine never produced it).
fn join(
    estimator: &RobustEstimator,
    states: &mut [MachineState],
    id: usize,
    donor: Option<usize>,
    fresh_imputer: bool,
) {
    let warm = donor
        .filter(|&d| d != id && d < states.len() && states[d].active)
        .and_then(|d| warm_start_from(&states[d]));
    let state = &mut states[id];
    state.active = true;
    state.health = MachineHealth::Ramping;
    state.window.clear();
    state.wols = WindowedOls::new(state.window.width());
    state.drift.reset_window();
    state.retry = None;
    state.consecutive_failures = 0;
    state.quarantine_left = 0;
    if warm.is_some() {
        state.adapted = warm;
        chaos_obs::add("stream.membership.warm_starts", 1);
    } else {
        state.adapted = None;
    }
    if fresh_imputer {
        state.imputer = estimator.new_imputer();
    }
}

/// The donor's transferable knowledge: its adapted model, or a linear
/// fit of its sliding-window solver (fitted on a clone so the donor's
/// own numeric path is untouched), or nothing.
fn warm_start_from(donor: &MachineState) -> Option<AdaptedModel> {
    if let Some(model) = donor.adapted.clone() {
        return Some(model);
    }
    let mut solver = donor.wols.clone();
    let width = solver.n_features();
    solver.fit().ok().map(|fit| AdaptedModel::Linear {
        columns: (0..width).collect(),
        fit,
    })
}
