//! Tiered refits: what the engine does about detected drift.
//!
//! Three responses, ordered by cost:
//!
//! 1. **Coefficient refresh** — solve the sliding window's OLS problem
//!    from the incrementally maintained Cholesky factor
//!    ([`chaos_stats::ols::WindowedOls`]). O(k²) given the factor; no
//!    selection change.
//! 2. **Stepwise rerun** — rebuild a Gram cache over the window and
//!    rerun backward elimination (Algorithm 1, steps 4/6), letting the
//!    retained column set shift with the workload.
//! 3. **Full reselection** — stepwise selection followed by refitting
//!    the configured model technique (e.g. quadratic MARS) on the
//!    selected columns — the heavyweight response to severe drift.
//!
//! A refit that fails (e.g. a rank-deficient window) *downgrades* to the
//! next cheaper tier rather than aborting the stream; if every tier
//! fails the engine simply keeps the frozen offline model. All tiers
//! read the same spec-width model-input rows the offline estimator
//! consumes, so an adapted model drops in wherever the full model did.

use crate::window::SlidingWindow;
use chaos_core::models::FitOptions;
use chaos_core::{FittedModel, ModelTechnique};
use chaos_stats::gram::GramCache;
use chaos_stats::ols::{OlsFit, WindowedOls};
use chaos_stats::stepwise::{backward_eliminate_cached, StepwiseConfig};
use chaos_stats::StatsError;
use serde::{Deserialize, Serialize};

/// The escalating refit ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RefitTier {
    /// Re-solve window OLS coefficients; keep the column selection.
    CoefficientRefresh,
    /// Rerun backward stepwise elimination over the window.
    StepwiseRerun,
    /// Stepwise selection plus a full technique refit on the survivors.
    FullReselect,
}

impl RefitTier {
    /// Short label for metrics and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            RefitTier::CoefficientRefresh => "coefficient",
            RefitTier::StepwiseRerun => "stepwise",
            RefitTier::FullReselect => "reselect",
        }
    }

    /// Span name under which the refit's wall time is recorded.
    pub fn span_name(self) -> &'static str {
        match self {
            RefitTier::CoefficientRefresh => "stream.refit.coefficient",
            RefitTier::StepwiseRerun => "stream.refit.stepwise",
            RefitTier::FullReselect => "stream.refit.reselect",
        }
    }

    /// The next cheaper tier to try after a failure, if any.
    pub fn downgrade(self) -> Option<RefitTier> {
        match self {
            RefitTier::FullReselect => Some(RefitTier::StepwiseRerun),
            RefitTier::StepwiseRerun => Some(RefitTier::CoefficientRefresh),
            RefitTier::CoefficientRefresh => None,
        }
    }
}

/// Record of one refit attempt on one machine stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefitOutcome {
    /// Second the refit fired at.
    pub t: usize,
    /// Machine the refit applied to.
    pub machine_id: usize,
    /// Tier the drift detector asked for.
    pub requested: RefitTier,
    /// Tier that actually succeeded after downgrades, if any.
    pub applied: Option<RefitTier>,
    /// Columns the applied model reads (spec-order indices), when a
    /// selection ran.
    pub selected: Option<Vec<usize>>,
}

/// A window-adapted model that answers in place of the frozen full
/// model. `columns` always indexes into the spec-width model-input row.
#[derive(Debug, Clone)]
pub enum AdaptedModel {
    /// A linear fit over `columns` (intercept handled internally).
    Linear {
        /// Spec-order column indices the fit reads.
        columns: Vec<usize>,
        /// The OLS fit: coefficients are `[intercept, columns…]`.
        fit: OlsFit,
    },
    /// A full-technique model over `columns`.
    Technique {
        /// Spec-order column indices the model reads.
        columns: Vec<usize>,
        /// The fitted model (e.g. quadratic MARS).
        model: FittedModel,
    },
}

impl AdaptedModel {
    /// Predicts power for one complete spec-width row, or `None` when
    /// the model cannot produce a finite answer — the engine then falls
    /// through to the offline chain.
    pub fn predict(&self, row: &[f64]) -> Option<f64> {
        let (mut aug, mut design) = (Vec::new(), Vec::new());
        self.predict_with(row, &mut aug, &mut design)
    }

    /// [`predict`](AdaptedModel::predict) with caller-owned scratch
    /// buffers (`aug` for the gathered column subset, `design` for the
    /// inner model's intercept-augmented row), so the streaming hot
    /// path predicts without per-sample allocation. Bit-identical to
    /// `predict`.
    pub fn predict_with(
        &self,
        row: &[f64],
        aug: &mut Vec<f64>,
        design: &mut Vec<f64>,
    ) -> Option<f64> {
        match self {
            AdaptedModel::Linear { columns, fit } => {
                aug.clear();
                // chaos-lint: allow(R6) — pushes into the caller's recycled scratch; capacity persists after the first tick (doc contract above)
                aug.push(1.0);
                for &c in columns {
                    // chaos-lint: allow(R6) — same recycled scratch, bounded by the column count
                    aug.push(*row.get(c)?);
                }
                fit.predict_row(aug).ok().filter(|p| p.is_finite())
            }
            AdaptedModel::Technique { columns, model } => {
                aug.clear();
                for &c in columns {
                    // chaos-lint: allow(R6) — caller's recycled scratch, cleared above with capacity kept
                    aug.push(*row.get(c)?);
                }
                model
                    .predict_row_with(aug, design)
                    .ok()
                    .filter(|p| p.is_finite())
            }
        }
    }

    /// The spec-order columns the model reads.
    pub fn columns(&self) -> &[usize] {
        match self {
            AdaptedModel::Linear { columns, .. } => columns,
            AdaptedModel::Technique { columns, .. } => columns,
        }
    }
}

/// Runs one refit tier over the window. `wols` is the incrementally
/// maintained solver kept in lockstep with `window`; only the
/// coefficient tier uses it, the heavier tiers rebuild from the window's
/// rows.
pub(crate) fn execute(
    tier: RefitTier,
    window: &SlidingWindow,
    wols: &mut WindowedOls,
    technique: ModelTechnique,
    fit_opts: &FitOptions,
    stepwise: &StepwiseConfig,
) -> Result<AdaptedModel, StatsError> {
    match tier {
        RefitTier::CoefficientRefresh => {
            let fit = wols.fit()?;
            Ok(AdaptedModel::Linear {
                columns: (0..window.width()).collect(),
                fit,
            })
        }
        RefitTier::StepwiseRerun => {
            let (x, y) = window.design()?;
            let mut cache = GramCache::new(&x, &y)?;
            let res = backward_eliminate_cached(&mut cache, stepwise)?;
            Ok(AdaptedModel::Linear {
                columns: res.selected,
                fit: res.fit,
            })
        }
        RefitTier::FullReselect => {
            let (x, y) = window.design()?;
            let mut cache = GramCache::new(&x, &y)?;
            let res = backward_eliminate_cached(&mut cache, stepwise)?;
            let xs = x.select_cols(&res.selected);
            // The frozen options' frequency column indexes the full spec
            // row; remap it into the selected subset (absent if pruned).
            let mut opts = *fit_opts;
            opts.freq_column = fit_opts
                .freq_column
                .and_then(|f| res.selected.iter().position(|&c| c == f));
            let model = FittedModel::fit(technique, &xs, &y, &opts)?;
            Ok(AdaptedModel::Technique {
                columns: res.selected,
                model,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_window(n: usize, p: usize) -> (SlidingWindow, WindowedOls) {
        let det = |i: usize| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
        let mut window = SlidingWindow::new(n, p).unwrap();
        let mut wols = WindowedOls::new(p);
        for i in 0..n {
            let row: Vec<f64> = (0..p).map(|j| 4.0 * det(i * p + j + 1)).collect();
            // Column 0 carries all the signal; the rest is noise for
            // stepwise to prune.
            let y = 50.0 + 10.0 * row[0] + 0.01 * det(i * 13 + 5);
            wols.push(&row, y).unwrap();
            window.push(&row, y).unwrap();
        }
        (window, wols)
    }

    #[test]
    fn coefficient_refresh_reads_the_incremental_solver() {
        let (window, mut wols) = seeded_window(40, 3);
        let opts = FitOptions::fast();
        let cfg = StepwiseConfig {
            alpha: 0.05,
            min_features: 1,
        };
        let adapted = execute(
            RefitTier::CoefficientRefresh,
            &window,
            &mut wols,
            ModelTechnique::Linear,
            &opts,
            &cfg,
        )
        .unwrap();
        assert_eq!(adapted.columns(), &[0, 1, 2]);
        let p = adapted.predict(&[1.0, 0.0, 0.0]).unwrap();
        assert!((p - 60.0).abs() < 1.0, "predicted {p}");
    }

    #[test]
    fn stepwise_rerun_prunes_noise_columns() {
        let (window, mut wols) = seeded_window(60, 3);
        let opts = FitOptions::fast();
        let cfg = StepwiseConfig {
            alpha: 0.05,
            min_features: 1,
        };
        let adapted = execute(
            RefitTier::StepwiseRerun,
            &window,
            &mut wols,
            ModelTechnique::Linear,
            &opts,
            &cfg,
        )
        .unwrap();
        // The signal column must survive; noise columns usually get
        // pruned but their survival is a p-value draw, so only the
        // guaranteed part is asserted.
        assert!(adapted.columns().contains(&0), "signal column retained");
        let p = adapted.predict(&[2.0, 0.3, -0.4]).unwrap();
        assert!((p - 70.0).abs() < 1.0, "predicted {p}");
    }

    #[test]
    fn full_reselect_fits_the_requested_technique() {
        let (window, mut wols) = seeded_window(80, 3);
        let opts = FitOptions::fast();
        let cfg = StepwiseConfig {
            alpha: 0.05,
            min_features: 1,
        };
        let adapted = execute(
            RefitTier::FullReselect,
            &window,
            &mut wols,
            ModelTechnique::Quadratic,
            &opts,
            &cfg,
        )
        .unwrap();
        assert!(matches!(adapted, AdaptedModel::Technique { .. }));
        let p = adapted.predict(&[1.0, 0.1, 0.1]).unwrap();
        assert!(p.is_finite());
    }

    #[test]
    fn downgrade_ladder_terminates() {
        assert_eq!(
            RefitTier::FullReselect.downgrade(),
            Some(RefitTier::StepwiseRerun)
        );
        assert_eq!(
            RefitTier::StepwiseRerun.downgrade(),
            Some(RefitTier::CoefficientRefresh)
        );
        assert_eq!(RefitTier::CoefficientRefresh.downgrade(), None);
        // Ord follows cost, so the drift detector's max() escalates.
        assert!(RefitTier::FullReselect > RefitTier::CoefficientRefresh);
    }

    #[test]
    fn empty_window_fails_cleanly() {
        let window = SlidingWindow::new(8, 2).unwrap();
        let mut wols = WindowedOls::new(2);
        let opts = FitOptions::fast();
        let cfg = StepwiseConfig {
            alpha: 0.05,
            min_features: 1,
        };
        for tier in [
            RefitTier::CoefficientRefresh,
            RefitTier::StepwiseRerun,
            RefitTier::FullReselect,
        ] {
            assert!(execute(
                tier,
                &window,
                &mut wols,
                ModelTechnique::Linear,
                &opts,
                &cfg
            )
            .is_err());
        }
    }
}
