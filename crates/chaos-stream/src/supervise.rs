//! Typed stream errors and the supervised refit ladder.
//!
//! The streaming engine runs unattended: machines fault, refits fail,
//! snapshots arrive corrupted. This module gives every failure a typed
//! name ([`StreamError`]) and a deterministic response policy
//! ([`SupervisorConfig`]): a failed refit can be retried a bounded
//! number of times (attempt-counted, never wall-clocked), and a machine
//! whose refits keep failing is *quarantined* — dropped out of the Eq. 5
//! composition so a broken per-machine model cannot poison the cluster
//! estimate — then readmitted through the same ramp-up path a newly
//! joined machine takes.
//!
//! Everything here is counted in samples, not seconds of wall time, so
//! a resumed or replayed run takes exactly the transitions the original
//! did.

use crate::checkpoint::SnapshotError;
use crate::refit::RefitTier;
use chaos_counters::store::StoreError;
use chaos_stats::StatsError;
use serde::{Deserialize, Serialize};

/// Errors from the streaming engine: usage errors, propagated numeric
/// errors, membership-schedule errors, and snapshot errors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StreamError {
    /// Seconds must be fed strictly in order.
    OutOfOrder {
        /// Second the engine expected next.
        expected: usize,
        /// Second the caller supplied.
        got: usize,
    },
    /// The run's machine count does not match the engine's.
    MachineCountMismatch {
        /// Machines in the supplied run.
        run: usize,
        /// Machine streams in the engine.
        engine: usize,
    },
    /// The requested second lies beyond the run's length.
    BeyondTrace {
        /// Requested second.
        t: usize,
        /// Seconds in the run.
        seconds: usize,
    },
    /// Replay needs an engine that has not consumed any seconds.
    NotPristine {
        /// Seconds already consumed.
        consumed: usize,
    },
    /// A cursor rebase would rewind past consumed history or drop the
    /// lag row (see [`crate::StreamEngine::rebase`]).
    Rebase {
        /// Seconds consumed at the time of the rebase request.
        consumed: usize,
        /// Requested rebase delta.
        delta: usize,
    },
    /// The run's membership schedule is invalid.
    Membership {
        /// What was wrong with the schedule.
        context: String,
    },
    /// A numeric or parameter error from the statistics layer.
    Stats(StatsError),
    /// A snapshot could not be decoded or persisted.
    Snapshot(SnapshotError),
    /// The sample source backing a replay failed (corrupt trace file,
    /// shape mismatch, unknown platform).
    Source(StoreError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfOrder { expected, got } => write!(
                f,
                "stream engine: expected second {expected} next, got {got} (feed seconds in order)"
            ),
            StreamError::MachineCountMismatch { run, engine } => write!(
                f,
                "stream engine: run has {run} machines, engine has {engine}"
            ),
            StreamError::BeyondTrace { t, seconds } => {
                write!(f, "stream engine: second {t} beyond run length {seconds}")
            }
            StreamError::NotPristine { consumed } => write!(
                f,
                "stream engine: replay needs a fresh engine, {consumed} seconds already consumed"
            ),
            StreamError::Rebase { consumed, delta } => write!(
                f,
                "stream engine: cannot rebase cursor by {delta} with {consumed} seconds consumed \
                 (the rebased buffer must retain the last consumed second)"
            ),
            StreamError::Membership { context } => {
                write!(f, "stream engine: invalid membership schedule: {context}")
            }
            StreamError::Stats(e) => write!(f, "stream engine: {e}"),
            StreamError::Snapshot(e) => write!(f, "stream engine: {e}"),
            StreamError::Source(e) => write!(f, "stream engine: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Stats(e) => Some(e),
            StreamError::Snapshot(e) => Some(e),
            StreamError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for StreamError {
    fn from(e: StatsError) -> Self {
        StreamError::Stats(e)
    }
}

impl From<SnapshotError> for StreamError {
    fn from(e: SnapshotError) -> Self {
        StreamError::Snapshot(e)
    }
}

impl From<StoreError> for StreamError {
    fn from(e: StoreError) -> Self {
        StreamError::Source(e)
    }
}

/// Supervision policy for the refit ladder. All knobs count samples or
/// attempts — never wall time — so supervision is replay-deterministic.
///
/// The default is [`SupervisorConfig::disabled`], which reproduces the
/// unsupervised engine bit-identically; [`SupervisorConfig::paper`] is
/// the deployment-shaped policy:
///
/// ```
/// use chaos_stream::SupervisorConfig;
///
/// let policy = SupervisorConfig::paper();
/// assert_eq!(policy.max_attempts, 2); // one retry per refit request
/// assert_eq!(policy.quarantine_after, 3); // quarantine on the 3rd exhaustion
/// assert_eq!(policy.quarantine_s, 60); // a minute out of the composition
///
/// // Disabled supervision is the `Default`, so `StreamConfig`s that
/// // never mention supervision behave exactly as before it existed.
/// assert_eq!(SupervisorConfig::default(), SupervisorConfig::disabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Total attempts a requested refit gets before it counts as a
    /// failure: the initial walk down the ladder plus `max_attempts − 1`
    /// retries, each re-armed by the next clean training sample.
    pub max_attempts: usize,
    /// Consecutive exhausted refit requests after which a machine is
    /// quarantined. `0` disables quarantine entirely.
    pub quarantine_after: usize,
    /// Seconds a quarantined machine sits out of the composition before
    /// re-entering through the ramp-up path.
    pub quarantine_s: usize,
}

impl SupervisorConfig {
    /// Supervision off: one attempt per request, never quarantine.
    /// Engine behaviour is bit-identical to the unsupervised engine.
    pub fn disabled() -> Self {
        SupervisorConfig {
            max_attempts: 1,
            quarantine_after: 0,
            quarantine_s: 0,
        }
    }

    /// Deployment-shaped supervision: one retry, quarantine after three
    /// consecutive exhausted requests, a minute in quarantine.
    pub fn paper() -> Self {
        SupervisorConfig {
            max_attempts: 2,
            quarantine_after: 3,
            quarantine_s: 60,
        }
    }

    /// Short-horizon supervision for tests and quick experiments.
    pub fn fast() -> Self {
        SupervisorConfig {
            max_attempts: 2,
            quarantine_after: 2,
            quarantine_s: 15,
        }
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::disabled()
    }
}

/// A machine stream's supervision state.
///
/// Health travels with every [`crate::StreamSample`], so downstream
/// consumers (dashboards, the `chaos-serve` status endpoints) can tell
/// a trustworthy estimate from one produced by a machine still
/// refilling its training window:
///
/// ```
/// use chaos_stream::MachineHealth;
///
/// // Labels are stable wire/report strings.
/// assert_eq!(MachineHealth::Healthy.label(), "healthy");
/// assert_eq!(MachineHealth::Ramping.label(), "ramping");
/// assert_eq!(MachineHealth::Quarantined.label(), "quarantined");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineHealth {
    /// Full member: trains, adapts, and refits at any tier.
    Healthy,
    /// Recently (re)joined: contributes to the composition but its refit
    /// requests are capped by window occupancy until the window fills.
    Ramping,
    /// Out of the composition after repeated refit failures; re-enters
    /// through the ramp-up path after the quarantine countdown.
    Quarantined,
}

impl MachineHealth {
    /// Short label for observability and reports.
    pub fn label(self) -> &'static str {
        match self {
            MachineHealth::Healthy => "healthy",
            MachineHealth::Ramping => "ramping",
            MachineHealth::Quarantined => "quarantined",
        }
    }
}

/// A pending bounded retry of a failed refit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RetryState {
    /// Tier the drift detector originally asked for.
    pub requested: RefitTier,
    /// Retries remaining before the request counts as exhausted.
    pub attempts_left: usize,
}

/// The refit tier a ramping machine is allowed to request, given how
/// much of its sliding window has refilled. A thin window only supports
/// the cheap coefficient refresh; stepwise needs half a window; a full
/// reselection waits for a full one.
pub(crate) fn ramp_cap(window_len: usize, window_capacity: usize) -> RefitTier {
    if window_len >= window_capacity {
        RefitTier::FullReselect
    } else if window_len >= window_capacity / 2 {
        RefitTier::StepwiseRerun
    } else {
        RefitTier::CoefficientRefresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        assert_eq!(SupervisorConfig::default(), SupervisorConfig::disabled());
        assert_eq!(SupervisorConfig::default().max_attempts, 1);
        assert_eq!(SupervisorConfig::default().quarantine_after, 0);
    }

    #[test]
    fn ramp_cap_escalates_with_occupancy() {
        assert_eq!(ramp_cap(0, 60), RefitTier::CoefficientRefresh);
        assert_eq!(ramp_cap(29, 60), RefitTier::CoefficientRefresh);
        assert_eq!(ramp_cap(30, 60), RefitTier::StepwiseRerun);
        assert_eq!(ramp_cap(59, 60), RefitTier::StepwiseRerun);
        assert_eq!(ramp_cap(60, 60), RefitTier::FullReselect);
    }

    #[test]
    fn errors_display_their_context() {
        let e = StreamError::OutOfOrder {
            expected: 3,
            got: 7,
        };
        assert!(e.to_string().contains("expected second 3"));
        let e = StreamError::Membership {
            context: "donor 9 out of range".into(),
        };
        assert!(e.to_string().contains("donor 9"));
        let e: StreamError = StatsError::Singular.into();
        assert!(matches!(e, StreamError::Stats(StatsError::Singular)));
    }

    #[test]
    fn config_serde_round_trips() {
        let c = SupervisorConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: SupervisorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
