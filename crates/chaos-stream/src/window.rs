//! The sliding sample window a streaming model adapts over.
//!
//! The window holds the most recent *clean* training observations of one
//! machine stream — complete, unimputed model-input rows paired with the
//! metered power for that second. It is deliberately dumb: eviction is
//! strictly FIFO and the window neither fits nor predicts. The numeric
//! state that makes per-sample refits cheap (the incrementally maintained
//! Cholesky factor) lives in [`chaos_stats::ols::WindowedOls`]; the
//! engine keeps both in lockstep by feeding every push/evict pair to
//! both.

use chaos_stats::{Matrix, StatsError};
use std::collections::VecDeque;

/// A FIFO window of `(model-input row, measured power)` observations with
/// a fixed capacity.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    width: usize,
    rows: VecDeque<(Vec<f64>, f64)>,
}

impl SlidingWindow {
    /// Creates an empty window.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` or `width`
    /// is zero.
    pub fn new(capacity: usize, width: usize) -> Result<Self, StatsError> {
        if capacity == 0 {
            return Err(StatsError::InvalidParameter {
                context: "sliding window: capacity must be at least 1".into(),
            });
        }
        if width == 0 {
            return Err(StatsError::InvalidParameter {
                context: "sliding window: row width must be at least 1".into(),
            });
        }
        Ok(SlidingWindow {
            capacity,
            width,
            rows: VecDeque::with_capacity(capacity),
        })
    }

    /// Appends one observation, evicting and returning the oldest one
    /// when the window is full.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row` has the wrong
    /// width. The window is unchanged on error.
    pub fn push(&mut self, row: &[f64], y: f64) -> Result<Option<(Vec<f64>, f64)>, StatsError> {
        if row.len() != self.width {
            return Err(StatsError::DimensionMismatch {
                context: format!(
                    "sliding window: row has {} entries, window width is {}",
                    row.len(),
                    self.width
                ),
            });
        }
        let evicted = if self.rows.len() == self.capacity {
            self.rows.pop_front()
        } else {
            None
        };
        self.rows.push_back((row.to_vec(), y));
        Ok(evicted)
    }

    /// The oldest retained observation — the one
    /// [`push_recycle`](SlidingWindow::push_recycle) will evict when the
    /// window is full. Borrowed, so a caller can hand it to the
    /// incremental solver's `pop` before overwriting its storage.
    pub fn peek_oldest(&self) -> Option<(&[f64], f64)> {
        self.rows.front().map(|(r, y)| (r.as_slice(), *y))
    }

    /// Appends one observation like [`push`](SlidingWindow::push), but
    /// recycles the evicted row's heap storage into the new entry
    /// instead of returning it — the steady-state (full-window) path
    /// allocates nothing. Returns whether an eviction happened; callers
    /// that need the evicted observation read it first via
    /// [`peek_oldest`](SlidingWindow::peek_oldest).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `row` has the wrong
    /// width. The window is unchanged on error.
    pub fn push_recycle(&mut self, row: &[f64], y: f64) -> Result<bool, StatsError> {
        if row.len() != self.width {
            return Err(StatsError::DimensionMismatch {
                // chaos-lint: allow(R6) — constructs the width-mismatch error; the steady tick never takes this branch
                context: format!(
                    "sliding window: row has {} entries, window width is {}",
                    row.len(),
                    self.width
                ),
            });
        }
        if self.rows.len() == self.capacity {
            // chaos-lint: allow(R4, R7) — capacity >= 1 is enforced at
            // construction, so a window at capacity has a front row.
            let (mut buf, _) = self.rows.pop_front().expect("full window has a front row");
            buf.clear();
            // chaos-lint: allow(R6) — the recycled front buffer already holds `width` capacity; clear() kept it
            buf.extend_from_slice(row);
            self.rows.push_back((buf, y));
            Ok(true)
        } else {
            // chaos-lint: allow(R6) — fill phase only; a full window takes the recycle branch above
            self.rows.push_back((row.to_vec(), y));
            Ok(false)
        }
    }

    /// Rebuilds a window from previously exported rows (oldest first) —
    /// the checkpoint-restore path.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `capacity` or `width`
    /// is zero or `rows.len()` exceeds `capacity`, and
    /// [`StatsError::DimensionMismatch`] if any row has the wrong width.
    pub fn from_parts(
        capacity: usize,
        width: usize,
        rows: Vec<(Vec<f64>, f64)>,
    ) -> Result<Self, StatsError> {
        let mut w = SlidingWindow::new(capacity, width)?;
        if rows.len() > capacity {
            return Err(StatsError::InvalidParameter {
                context: format!(
                    "sliding window: {} restored rows exceed capacity {capacity}",
                    rows.len()
                ),
            });
        }
        for (row, y) in rows {
            if row.len() != width {
                return Err(StatsError::DimensionMismatch {
                    context: format!(
                        "sliding window: restored row has {} entries, window width is {width}",
                        row.len()
                    ),
                });
            }
            w.rows.push_back((row, y));
        }
        Ok(w)
    }

    /// Drops every retained observation, keeping capacity and width —
    /// used when a machine's training history stops describing it (e.g.
    /// a post-quarantine rejoin).
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the window is at capacity (the steady streaming state).
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.capacity
    }

    /// Maximum number of retained observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Width of every retained row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Iterates retained observations oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.rows.iter().map(|(r, y)| (r.as_slice(), *y))
    }

    /// Materializes the window as a design matrix (no intercept column)
    /// and response vector, oldest row first — the input shape
    /// [`chaos_stats::gram::GramCache`] and stepwise elimination expect.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the window is empty.
    pub fn design(&self) -> Result<(Matrix, Vec<f64>), StatsError> {
        let rows: Vec<Vec<f64>> = self.rows.iter().map(|(r, _)| r.clone()).collect();
        let y: Vec<f64> = self.rows.iter().map(|(_, y)| *y).collect();
        let x = Matrix::from_rows(&rows)?;
        Ok((x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut w = SlidingWindow::new(3, 2).unwrap();
        assert!(w.is_empty());
        for i in 0..3 {
            let evicted = w.push(&[i as f64, 1.0], i as f64).unwrap();
            assert!(evicted.is_none());
        }
        assert!(w.is_full());
        let evicted = w.push(&[3.0, 1.0], 3.0).unwrap().unwrap();
        assert_eq!(evicted, (vec![0.0, 1.0], 0.0));
        assert_eq!(w.len(), 3);
        let oldest = w.iter().next().unwrap();
        assert_eq!(oldest.0, &[1.0, 1.0]);
    }

    #[test]
    fn design_matches_contents() {
        let mut w = SlidingWindow::new(4, 2).unwrap();
        for i in 0..4 {
            w.push(&[i as f64, -(i as f64)], 10.0 + i as f64).unwrap();
        }
        let (x, y) = w.design().unwrap();
        assert_eq!(x.rows(), 4);
        assert_eq!(x.cols(), 2);
        assert_eq!(y, vec![10.0, 11.0, 12.0, 13.0]);
        assert_eq!(x.get(2, 0), 2.0);
        assert_eq!(x.get(2, 1), -2.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(SlidingWindow::new(0, 2).is_err());
        assert!(SlidingWindow::new(2, 0).is_err());
        let mut w = SlidingWindow::new(2, 2).unwrap();
        assert!(matches!(
            w.push(&[1.0], 0.0),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(w.is_empty());
        assert!(matches!(
            w.design(),
            Err(StatsError::InvalidParameter { .. })
        ));
    }
}
