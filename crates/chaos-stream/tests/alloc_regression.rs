//! Alloc-regression harness: steady-state streaming must not touch the
//! heap.
//!
//! A counting global allocator wraps [`std::alloc::System`]; after the
//! engine has warmed past window fill (every scratch buffer, ring, and
//! window at final capacity), each [`StreamEngine::push_second_into`]
//! tick must perform **zero** heap allocations. Any new allocation on
//! the per-sample path — a `Vec` literal, a `to_vec`, a formatted
//! string — fails this test, which is the point: the alloc-free
//! property is load-bearing for fleet-scale serving throughput and
//! easy to lose to an innocent-looking edit.
//!
//! The file holds exactly one `#[test]` so no sibling test thread can
//! pollute the counter, and the trace is deterministic (no `rand`).

use chaos_core::robust::{EstimateTier, RobustConfig, RobustEstimator};
use chaos_core::{FeatureSpec, ModelTechnique};
use chaos_counters::{MachineRunTrace, RunTrace, ValidityMask};
use chaos_sim::Platform;
use chaos_stream::{StreamConfig, StreamEngine, StreamOutput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-random double in [-0.5, 0.5).
fn det(i: usize) -> f64 {
    ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
}

const WIDTH: usize = 3;

/// Synthetic all-valid trace: counters in a plausible range, measured
/// power a noisy linear function of them so the offline fit is sane.
fn synthetic_trace(machines: usize, seconds: usize, salt: usize) -> RunTrace {
    let machine = |id: usize| {
        let mut counters = Vec::with_capacity(seconds);
        let mut measured = Vec::with_capacity(seconds);
        for t in 0..seconds {
            let s = salt + id * 100_000 + t * WIDTH;
            let row: Vec<f64> = (0..WIDTH).map(|j| 50.0 + 40.0 * det(s + j)).collect();
            let y = 60.0 + 0.5 * row[0] + 0.3 * row[1] + 0.2 * row[2] + det(s + 77);
            counters.push(row);
            measured.push(y);
        }
        MachineRunTrace {
            machine_id: id,
            platform: Platform::Core2,
            counters,
            measured_power_w: measured,
            true_power_w: vec![0.0; seconds],
            validity: ValidityMask {
                counters: vec![vec![true; WIDTH]; seconds],
                meter: vec![true; seconds],
                alive: vec![true; seconds],
            },
        }
    };
    RunTrace {
        workload: "alloc-regression".to_string(),
        run_seed: 0,
        machines: (0..machines).map(machine).collect(),
        membership: Vec::new(),
    }
}

#[test]
fn steady_state_push_second_allocates_nothing() {
    const MACHINES: usize = 3;
    const SECONDS: usize = 240;
    // Offline config: drift response disabled, so the engine exercises
    // the tier-1 estimator path plus window/solver ingest every second —
    // the full steady-state hot loop minus (rare, allocating) refits.
    let config = StreamConfig::offline();
    let warmup = config.window_s * 2;
    assert!(
        warmup + 60 <= SECONDS,
        "trace too short for warmup + measurement"
    );

    let train = synthetic_trace(2, 180, 9001);
    let spec = FeatureSpec::new((0..WIDTH).collect());
    let estimator = RobustEstimator::fit(
        &[train],
        &spec,
        None,
        10.0,
        RobustConfig {
            technique: ModelTechnique::Linear,
            ..RobustConfig::fast()
        },
    )
    .expect("offline fit");

    let run = synthetic_trace(MACHINES, SECONDS, 424_242);
    let mut engine =
        StreamEngine::new(estimator, MACHINES, 200.0, 10.0, 0.05, config).expect("engine");
    let mut out = StreamOutput {
        t: 0,
        cluster_power_w: 0.0,
        worst_tier: EstimateTier::Full,
        active_machines: 0,
        machines: Vec::new(),
    };

    // Warmup: fill windows, solvers, DRE rings, and every scratch buffer
    // to their steady-state capacity.
    for t in 0..warmup {
        engine
            .push_second_into(&run, t, &mut out)
            .expect("warmup tick");
        assert_eq!(out.active_machines, MACHINES);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut measured_ticks = 0u64;
    for t in warmup..SECONDS {
        engine
            .push_second_into(&run, t, &mut out)
            .expect("steady tick");
        measured_ticks += 1;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(out.active_machines, MACHINES);
    assert!(
        out.machines.iter().all(|s| s.power_w.is_finite()),
        "steady-state estimates must stay finite"
    );
    assert_eq!(
        allocs, 0,
        "steady-state push_second_into performed {allocs} heap allocations \
         over {measured_ticks} ticks — the hot loop must be alloc-free after warmup"
    );
}
