//! Checkpoint/restore round-trip suite (ISSUE 6 acceptance bar): kill
//! the engine at any second, restore from the snapshot, replay the
//! remainder — the prediction stream must be *byte-identical* to an
//! uninterrupted run, under fault injection and fleet churn alike.
//! Corrupted and truncated snapshots must be rejected with typed
//! errors, never garbage state.
//!
//! The round-trip logic lives in plain helper functions; `proptest!`
//! wrappers randomize over traces, fault plans, and kill points.

use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, ChurnPlan, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stream::{
    Checkpointer, DriftConfig, SnapshotError, StreamConfig, StreamEngine, StreamError,
    StreamOutput, SupervisorConfig, SNAPSHOT_MAGIC,
};
use chaos_workloads::{SimConfig, Workload};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Shared fixture: building a `RobustEstimator` dominates test time, so
/// every case clones one trained instance.
fn fixture() -> &'static (RobustEstimator, Cluster, CounterCatalog) {
    static FIXTURE: OnceLock<(RobustEstimator, Cluster, CounterCatalog)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 21);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let train: Vec<RunTrace> = (0..2)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::Prime,
                    &SimConfig::quick(),
                    700 + r,
                )
                .unwrap()
            })
            .collect();
        let spec = FeatureSpec::general(&catalog);
        let cpu = strawman_position(&spec, &catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let cfg = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(&catalog)),
            ..RobustConfig::fast()
        };
        let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).unwrap();
        (est, cluster, catalog)
    })
}

fn engine(config: StreamConfig) -> StreamEngine {
    let (est, cluster, _) = fixture();
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est.clone(),
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        config,
    )
    .unwrap()
}

/// An adaptive config with supervision on, so snapshots cover retry and
/// quarantine state, not just the passive windows.
fn config() -> StreamConfig {
    StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_supervise(SupervisorConfig::fast())
}

/// A test trace under `plan`, with a late power shift so the drift /
/// refit path genuinely runs before and after the kill point.
fn build_trace(trace_seed: u64, plan: &FaultPlan) -> RunTrace {
    let (_, cluster, catalog) = fixture();
    let mut test = collect_run(
        cluster,
        catalog,
        Workload::Prime,
        &SimConfig::quick(),
        790 + trace_seed,
    )
    .unwrap();
    let start = 40.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    plan.apply(&test)
}

/// A fault plan mixing dropout and churn, parameterized so proptest can
/// sweep the space.
fn build_plan(fault_seed: u64, dropout: bool, churn_kind: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(fault_seed);
    if dropout {
        plan = plan.with_counter_dropout(0.15);
    }
    let churn = match churn_kind % 4 {
        1 => Some(ChurnPlan::new(fault_seed).with_leave_rejoin(1)),
        2 => Some(
            ChurnPlan::new(fault_seed)
                .with_late_joins(1)
                .with_replaces(1),
        ),
        3 => Some(
            ChurnPlan::new(fault_seed)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        ),
        _ => None,
    };
    match churn {
        Some(c) => plan.with_churn(c),
        None => plan,
    }
}

fn assert_outputs_identical(a: &[StreamOutput], b: &[StreamOutput], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: output length");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.cluster_power_w.to_bits(),
            y.cluster_power_w.to_bits(),
            "{what}: cluster power bits at second {}",
            x.t
        );
        assert_eq!(x, y, "{what}: full output at second {}", x.t);
    }
}

/// The tentpole invariant: run uninterrupted; run again but snapshot at
/// `kill_t`, drop the engine, restore from bytes, and resume. Both
/// prediction streams must match bit-for-bit, as must the refit logs.
fn check_kill_roundtrip(
    trace_seed: u64,
    fault_seed: u64,
    frac: usize,
    dropout: bool,
    churn_kind: usize,
) {
    let (est, _, _) = fixture();
    let plan = build_plan(fault_seed, dropout, churn_kind);
    let test = build_trace(trace_seed, &plan);
    let n = test.seconds();
    let kill_t = (n * (frac % 10).max(1) / 10).clamp(1, n - 1);

    let mut uninterrupted = engine(config());
    let full = uninterrupted.replay(&test).unwrap();

    let mut first = engine(config());
    let mut outputs = Vec::with_capacity(n);
    for t in 0..kill_t {
        outputs.push(first.push_second(&test, t).unwrap());
    }
    let bytes = first.snapshot();
    drop(first);

    let mut restored = StreamEngine::restore(est.clone(), &bytes).unwrap();
    assert_eq!(restored.seconds_processed(), kill_t);
    outputs.extend(restored.resume(&test).unwrap());

    assert_outputs_identical(&full, &outputs, "killed-vs-uninterrupted");
    assert_eq!(
        serde_json::to_string(&uninterrupted.refit_outcomes()).unwrap(),
        serde_json::to_string(&restored.refit_outcomes()).unwrap(),
        "refit logs diverged"
    );
    assert_eq!(uninterrupted.health(), restored.health());
    assert_eq!(
        uninterrupted.supervision_counts(),
        restored.supervision_counts()
    );
}

/// Corruption helper: every mutation of a valid snapshot must yield a
/// typed `SnapshotError`, mapped through `StreamError::Snapshot`.
fn check_corruption_rejected(bytes: &[u8], flip_at: usize) {
    let (est, _, _) = fixture();
    let mut bad = bytes.to_vec();
    let i = flip_at % bad.len();
    bad[i] ^= 0xff;
    match StreamEngine::restore(est.clone(), &bad) {
        Ok(_) => panic!("corrupted snapshot (byte {i}) accepted"),
        Err(StreamError::Snapshot(_)) => {}
        Err(other) => panic!("corrupted snapshot (byte {i}) gave non-snapshot error {other}"),
    }
}

#[test]
fn kill_points_round_trip_across_fault_and_churn_mix() {
    // Deterministic sweep of the same space the proptest wrappers
    // randomize: early / mid / late kills, with and without faults.
    check_kill_roundtrip(0, 11, 1, false, 0);
    check_kill_roundtrip(0, 11, 5, true, 0);
    check_kill_roundtrip(1, 23, 2, true, 1);
    check_kill_roundtrip(2, 31, 7, false, 2);
    check_kill_roundtrip(3, 41, 9, true, 3);
}

#[test]
fn snapshot_restore_is_stable_across_repeated_kills() {
    // Kill, restore, kill again, restore again — state survives chained
    // snapshots, not just one.
    let plan = build_plan(55, true, 3);
    let test = build_trace(4, &plan);
    let (est, _, _) = fixture();
    let n = test.seconds();

    let mut uninterrupted = engine(config());
    let full = uninterrupted.replay(&test).unwrap();

    let mut eng = engine(config());
    let mut outputs = Vec::new();
    for t in 0..n / 3 {
        outputs.push(eng.push_second(&test, t).unwrap());
    }
    let eng2 = StreamEngine::restore(est.clone(), &eng.snapshot()).unwrap();
    let mut eng2 = eng2;
    for t in n / 3..2 * n / 3 {
        outputs.push(eng2.push_second(&test, t).unwrap());
    }
    let mut eng3 = StreamEngine::restore(est.clone(), &eng2.snapshot()).unwrap();
    outputs.extend(eng3.resume(&test).unwrap());
    assert_outputs_identical(&full, &outputs, "double-kill");
}

#[test]
fn corrupted_snapshots_are_rejected_with_typed_errors() {
    let (est, _, _) = fixture();
    let test = build_trace(0, &build_plan(11, true, 1));
    let mut eng = engine(config());
    for t in 0..20.min(test.seconds()) {
        eng.push_second(&test, t).unwrap();
    }
    let bytes = eng.snapshot();

    // Truncations: envelope too short, then payload shorter than the
    // declared length.
    match StreamEngine::restore(est.clone(), &bytes[..4]) {
        Err(StreamError::Snapshot(SnapshotError::TooShort { .. })) => {}
        other => panic!("4-byte snapshot: {other:?}"),
    }
    match StreamEngine::restore(est.clone(), &bytes[..bytes.len() / 2]) {
        Err(StreamError::Snapshot(
            SnapshotError::LengthMismatch { .. } | SnapshotError::TooShort { .. },
        )) => {}
        other => panic!("half snapshot: {other:?}"),
    }

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] = !SNAPSHOT_MAGIC[0];
    match StreamEngine::restore(est.clone(), &bad) {
        Err(StreamError::Snapshot(SnapshotError::BadMagic)) => {}
        other => panic!("bad magic: {other:?}"),
    }

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[8] = 0xfe;
    match StreamEngine::restore(est.clone(), &bad) {
        Err(StreamError::Snapshot(SnapshotError::UnsupportedVersion { .. })) => {}
        other => panic!("bad version: {other:?}"),
    }

    // Payload bit-flip trips the checksum.
    let mut bad = bytes.clone();
    let mid = 20 + (bytes.len() - 28) / 2;
    bad[mid] ^= 0x01;
    match StreamEngine::restore(est.clone(), &bad) {
        Err(StreamError::Snapshot(SnapshotError::ChecksumMismatch)) => {}
        other => panic!("flipped payload: {other:?}"),
    }

    // Appended garbage changes the checksummed region's framing.
    let mut bad = bytes.clone();
    bad.extend_from_slice(&[0u8; 7]);
    assert!(StreamEngine::restore(est.clone(), &bad).is_err());

    // Deterministic spot-checks of the randomized corruption sweep.
    for flip_at in [0, 9, 17, bytes.len() / 2, bytes.len() - 1] {
        check_corruption_rejected(&bytes, flip_at);
    }
}

#[test]
fn checkpointer_persists_and_loads_atomically() {
    let dir = std::env::temp_dir().join(format!("chaos-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.snap");
    let ckpt = Checkpointer::new(&path, 10);
    assert_eq!(ckpt.every_s(), 10);

    let test = build_trace(0, &build_plan(11, false, 0));
    let mut uninterrupted = engine(config());
    let full = uninterrupted.replay(&test).unwrap();

    let mut eng = engine(config());
    let mut persisted_at = None;
    for t in 0..test.seconds() / 2 {
        eng.push_second(&test, t).unwrap();
        if ckpt.maybe_persist(&eng).unwrap() {
            persisted_at = Some(eng.seconds_processed());
        }
    }
    let kill_t = persisted_at.expect("cadence fired inside half the trace");

    let (est, _, _) = fixture();
    let saved = ckpt.load().unwrap();
    let mut restored = StreamEngine::restore(est.clone(), &saved).unwrap();
    assert_eq!(restored.seconds_processed(), kill_t);
    let tail = restored.resume(&test).unwrap();
    assert_outputs_identical(&full[kill_t..], &tail, "checkpointer reload");

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random trace x random fault plan x random kill point: the
    /// restored run's prediction bytes equal the uninterrupted run's.
    #[test]
    fn killed_runs_match_uninterrupted(
        trace_seed in 0u64..4,
        fault_seed in 0u64..1000,
        frac in 1usize..10,
        dropout in proptest::bool::ANY,
        churn_kind in 0usize..4,
    ) {
        check_kill_roundtrip(trace_seed, fault_seed, frac, dropout, churn_kind);
    }

    /// Random single-byte corruption anywhere in a snapshot is rejected
    /// with a typed snapshot error.
    #[test]
    fn corrupted_snapshots_never_restore(flip_at in 0usize..100_000) {
        let test = build_trace(0, &build_plan(11, true, 1));
        let mut eng = engine(config());
        for t in 0..15.min(test.seconds()) {
            eng.push_second(&test, t).unwrap();
        }
        check_corruption_rejected(&eng.snapshot(), flip_at);
    }
}
