//! Determinism suite for the streaming engine, extending the workspace
//! contract (`crates/chaos-core/tests/determinism.rs`) to streaming:
//!
//! * Replay under `CHAOS_THREADS`-style parallel fan-out must be
//!   bit-identical to serial replay — machine streams are independent
//!   and per-second sums merge in machine order.
//! * `CHAOS_OBS=full` (which additionally emits the new `stream.drift`
//!   events and refit spans) must be bit-identical to `off` — the
//!   observability layer is a pure side channel.

use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, ChurnPlan, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::ExecPolicy;
use chaos_stream::{DriftConfig, StreamConfig, StreamEngine, StreamOutput, SupervisorConfig};
use chaos_workloads::{SimConfig, Workload};

const PAR: ExecPolicy = ExecPolicy::Parallel { threads: 4 };

/// A shifted test trace that reliably drives drift-triggered refits, so
/// determinism is pinned on the *adaptive* path, not just pass-through.
fn setup() -> (RobustEstimator, RunTrace, Cluster) {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 33);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let train: Vec<RunTrace> = (0..2)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::quick(),
                800 + r,
            )
            .unwrap()
        })
        .collect();
    let mut test = collect_run(
        &cluster,
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        890,
    )
    .unwrap();
    let start = 40.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).unwrap();
    (est, test, cluster)
}

fn config() -> StreamConfig {
    StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
}

fn replay(
    est: &RobustEstimator,
    test: &RunTrace,
    cluster: &Cluster,
    exec: ExecPolicy,
) -> (Vec<StreamOutput>, String) {
    let n = cluster.machines().len() as f64;
    let mut eng = StreamEngine::new(
        est.clone(),
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        config().with_exec(exec),
    )
    .unwrap();
    let outputs = eng.replay(test).unwrap();
    let refits = serde_json::to_string(&eng.refit_outcomes()).unwrap();
    (outputs, refits)
}

#[test]
fn streaming_replay_is_policy_invariant() {
    let (est, test, cluster) = setup();
    let (serial, serial_refits) = replay(&est, &test, &cluster, ExecPolicy::Serial);
    let (parallel, parallel_refits) = replay(&est, &test, &cluster, PAR);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.cluster_power_w.to_bits(),
            p.cluster_power_w.to_bits(),
            "second {}",
            s.t
        );
        assert_eq!(s, p, "second {}", s.t);
    }
    // Refit decisions (timing, tier, selected columns) match too.
    assert_eq!(serial_refits, parallel_refits);
    // The adaptive path actually ran — otherwise this pins nothing new.
    assert!(serial.iter().flat_map(|o| &o.machines).any(|s| s.adapted));
}

#[test]
fn streaming_observability_full_is_bit_identical_to_off() {
    let (est, test, cluster) = setup();

    chaos_obs::set_level(chaos_obs::ObsLevel::Off);
    let (off, off_refits) = replay(&est, &test, &cluster, PAR);

    // Full additionally walks the drift-event, refit-span, and
    // window-occupancy histogram paths added for streaming.
    chaos_obs::set_level(chaos_obs::ObsLevel::Full);
    let (full, full_refits) = replay(&est, &test, &cluster, PAR);
    let recorded_samples = chaos_obs::counters()
        .iter()
        .any(|(name, v)| name == "stream.samples" && *v > 0);
    let recorded_refits = chaos_obs::counters()
        .iter()
        .any(|(name, v)| name.starts_with("stream.refits.") && *v > 0);
    let recorded_occupancy = chaos_obs::histograms()
        .iter()
        .any(|(name, _)| name == "stream.window_occupancy");
    chaos_obs::set_level(chaos_obs::ObsLevel::Off);

    assert_eq!(off.len(), full.len());
    for (a, b) in off.iter().zip(&full) {
        assert_eq!(a, b, "second {}", a.t);
    }
    assert_eq!(off_refits, full_refits);
    // The side channel really recorded under Full; it just cannot feed
    // back into the estimates.
    assert!(recorded_samples, "stream.samples counter missing");
    assert!(recorded_refits, "stream.refits.* counters missing");
    assert!(recorded_occupancy, "window-occupancy histogram missing");
}

/// The churn scenario from ISSUE 6's acceptance bar: leaves, late joins
/// with donor warm-starts, and hardware replacements, replayed under
/// supervision. The composition must stay bit-identical between serial
/// and 4-thread fan-out — membership boundaries segment the parallel
/// replay, they must not reorder it.
#[test]
fn churned_replay_is_policy_invariant() {
    let (est, test, cluster) = setup();
    let churned = FaultPlan::new(77)
        .with_counter_dropout(0.1)
        .with_churn(
            ChurnPlan::new(9)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&test);
    let cfg = config().with_supervise(SupervisorConfig::fast());
    let run = |exec| {
        let n = cluster.machines().len() as f64;
        let mut eng = StreamEngine::new(
            est.clone(),
            cluster.machines().len(),
            cluster.max_power() / n,
            cluster.idle_power() / n,
            0.05,
            cfg.clone().with_exec(exec),
        )
        .unwrap();
        let outputs = eng.replay(&churned).unwrap();
        let refits = serde_json::to_string(&eng.refit_outcomes()).unwrap();
        (outputs, refits)
    };
    let (serial, serial_refits) = run(ExecPolicy::Serial);
    let (parallel, parallel_refits) = run(PAR);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.cluster_power_w.to_bits(),
            p.cluster_power_w.to_bits(),
            "second {}",
            s.t
        );
        assert_eq!(s, p, "second {}", s.t);
    }
    assert_eq!(serial_refits, parallel_refits);
    // The membership schedule really perturbed the composition.
    assert!(
        !churned.membership.is_empty(),
        "churn plan generated no events"
    );
    let machines = cluster.machines().len();
    assert!(
        serial.iter().any(|o| o.active_machines < machines),
        "no second ran with a reduced fleet"
    );
}

/// Same churn scenario, observability full vs off: the supervisor and
/// membership transitions emit counters and events, and none of it may
/// feed back into the estimates.
#[test]
fn churned_replay_obs_full_is_bit_identical_to_off() {
    let (est, test, cluster) = setup();
    let churned = FaultPlan::new(78)
        .with_churn(
            ChurnPlan::new(10)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&test);
    let cfg = config().with_supervise(SupervisorConfig::fast());
    let run = || {
        let n = cluster.machines().len() as f64;
        let mut eng = StreamEngine::new(
            est.clone(),
            cluster.machines().len(),
            cluster.max_power() / n,
            cluster.idle_power() / n,
            0.05,
            cfg.clone().with_exec(PAR),
        )
        .unwrap();
        eng.replay(&churned).unwrap()
    };

    chaos_obs::set_level(chaos_obs::ObsLevel::Off);
    let off = run();
    chaos_obs::set_level(chaos_obs::ObsLevel::Full);
    let full = run();
    let recorded_membership = chaos_obs::counters()
        .iter()
        .any(|(name, v)| name.starts_with("stream.membership.") && *v > 0);
    chaos_obs::set_level(chaos_obs::ObsLevel::Off);

    assert_eq!(off.len(), full.len());
    for (a, b) in off.iter().zip(&full) {
        assert_eq!(a, b, "second {}", a.t);
    }
    assert!(recorded_membership, "stream.membership.* counters missing");
}
