//! Rolling-buffer compaction equivalence (the `chaos-serve` contract):
//! feeding the engine through a bounded two-row rolling buffer with
//! [`StreamEngine::rebase`] after every second must be *bit-identical*
//! to feeding the uncompacted run — under clean traces, fault
//! injection, and an adaptive config whose refits genuinely fire.
//!
//! The buffer retains exactly one consumed second (the lag row feature
//! assembly reads) plus the incoming one; anything less is rejected
//! with a typed [`StreamError::Rebase`].

use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, MachineRunTrace, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stream::{
    DriftConfig, RefitOutcome, StreamConfig, StreamEngine, StreamError, StreamOutput,
    SupervisorConfig,
};
use chaos_workloads::{SimConfig, Workload};
use std::sync::OnceLock;

fn fixture() -> &'static (RobustEstimator, Cluster, CounterCatalog) {
    static FIXTURE: OnceLock<(RobustEstimator, Cluster, CounterCatalog)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cluster = Cluster::homogeneous(Platform::Core2, 3, 37);
        let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
        let train: Vec<RunTrace> = (0..2)
            .map(|r| {
                collect_run(
                    &cluster,
                    &catalog,
                    Workload::Prime,
                    &SimConfig::quick(),
                    910 + r,
                )
                .unwrap()
            })
            .collect();
        let spec = FeatureSpec::general(&catalog);
        let cpu = strawman_position(&spec, &catalog);
        let idle = cluster.idle_power() / cluster.machines().len() as f64;
        let cfg = RobustConfig {
            fit: RobustConfig::fast()
                .fit
                .with_freq_column(spec.freq_column(&catalog)),
            ..RobustConfig::fast()
        };
        let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).unwrap();
        (est, cluster, catalog)
    })
}

fn engine() -> StreamEngine {
    let (est, cluster, _) = fixture();
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est.clone(),
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        // Adaptive + supervised, so compaction equivalence covers the
        // refit/retry paths, not just passive prediction.
        StreamConfig {
            window_s: 40,
            drift: DriftConfig {
                window_s: 15,
                cooldown_s: 5,
                ..DriftConfig::fast()
            },
            min_refit_samples: 12,
            ..StreamConfig::fast()
        }
        .with_supervise(SupervisorConfig::fast()),
    )
    .unwrap()
}

/// A test trace with a late meter shift so drift-triggered refits fire.
fn build_trace(seed: u64, faulted: bool) -> RunTrace {
    let (_, cluster, catalog) = fixture();
    let mut test = collect_run(cluster, catalog, Workload::Prime, &SimConfig::quick(), seed)
        .expect("collect test run");
    let start = 40.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    if faulted {
        FaultPlan::new(seed).with_counter_dropout(0.15).apply(&test)
    } else {
        test
    }
}

/// An empty rolling buffer shaped like `run` (same machines, no rows).
fn empty_buffer(run: &RunTrace) -> RunTrace {
    RunTrace {
        workload: run.workload.clone(),
        run_seed: run.run_seed,
        machines: run
            .machines
            .iter()
            .map(|m| MachineRunTrace {
                machine_id: m.machine_id,
                platform: m.platform,
                counters: Vec::new(),
                measured_power_w: Vec::new(),
                true_power_w: Vec::new(),
                validity: Default::default(),
            })
            .collect(),
        membership: Vec::new(),
    }
}

/// Appends second `t` of every machine in `run` to the rolling buffer,
/// materializing per-second validity explicitly.
fn append_second(buf: &mut RunTrace, run: &RunTrace, t: usize) {
    for (bm, m) in buf.machines.iter_mut().zip(&run.machines) {
        bm.counters.push(m.counters[t].clone());
        bm.measured_power_w.push(m.measured_power_w[t]);
        bm.true_power_w.push(m.true_power_w[t]);
        let width = m.width();
        bm.validity
            .counters
            .push((0..width).map(|c| m.counter_ok(t, c)).collect());
        bm.validity.meter.push(m.meter_ok(t));
        bm.validity.alive.push(m.alive_at(t));
    }
}

/// Drops all but the last row from the buffer.
fn compact(buf: &mut RunTrace, keep_from: usize) {
    for bm in &mut buf.machines {
        bm.counters.drain(..keep_from);
        bm.measured_power_w.drain(..keep_from);
        bm.true_power_w.drain(..keep_from);
        bm.validity.counters.drain(..keep_from);
        bm.validity.meter.drain(..keep_from);
        bm.validity.alive.drain(..keep_from);
    }
}

/// Replays `run` through a two-row rolling buffer, rebasing the engine
/// after every consumed second, draining refit outcomes as it goes.
/// Returns outputs and the drained outcomes translated to absolute time.
fn rolling_replay(
    engine: &mut StreamEngine,
    run: &RunTrace,
) -> (Vec<StreamOutput>, Vec<RefitOutcome>) {
    let mut buf = empty_buffer(run);
    let mut outputs = Vec::new();
    let mut refits = Vec::new();
    let mut base_t = 0usize;
    for t in 0..run.seconds() {
        append_second(&mut buf, run, t);
        let rel = buf.seconds() - 1;
        assert_eq!(
            base_t + rel,
            t,
            "buffer index space must track absolute time"
        );
        outputs.push(engine.push_second(&buf, rel).unwrap());
        for mut outcome in engine.drain_refit_outcomes() {
            outcome.t += base_t;
            refits.push(outcome);
        }
        if rel >= 1 {
            compact(&mut buf, rel);
            engine.rebase(rel).unwrap();
            base_t += rel;
        }
    }
    (outputs, refits)
}

fn assert_equivalent(full: &[StreamOutput], rolling: &[StreamOutput], what: &str) {
    assert_eq!(full.len(), rolling.len(), "{what}: output count");
    for (t, (a, b)) in full.iter().zip(rolling).enumerate() {
        // `t` is index-space-relative by design; everything else must
        // match bit for bit.
        assert_eq!(a.t, t, "{what}: full replay t");
        assert_eq!(
            a.cluster_power_w.to_bits(),
            b.cluster_power_w.to_bits(),
            "{what}: cluster power at {t}"
        );
        assert_eq!(a.worst_tier, b.worst_tier, "{what}: worst tier at {t}");
        assert_eq!(
            a.active_machines, b.active_machines,
            "{what}: active machines at {t}"
        );
        assert_eq!(a.machines, b.machines, "{what}: machine samples at {t}");
    }
}

#[test]
fn rolling_rebase_matches_full_replay_clean() {
    let run = build_trace(911, false);
    let mut full = engine();
    let expected: Vec<StreamOutput> = (0..run.seconds())
        .map(|t| full.push_second(&run, t).unwrap())
        .collect();
    let mut rolled = engine();
    let (got, drained) = rolling_replay(&mut rolled, &run);
    assert_equivalent(&expected, &got, "clean");

    // Drained outcomes (translated to absolute time) must match the
    // full engine's retained log, and draining must have emptied the
    // rolling engine's own log.
    let retained: Vec<RefitOutcome> = full.refit_outcomes().into_iter().cloned().collect();
    assert_eq!(drained, retained, "clean: refit outcomes");
    assert!(
        rolled.refit_outcomes().is_empty(),
        "drain leaves no residue"
    );
    assert!(
        !retained.is_empty(),
        "fixture must exercise the refit path for the equivalence to mean anything"
    );
}

#[test]
fn rolling_rebase_matches_full_replay_faulted() {
    let run = build_trace(912, true);
    let mut full = engine();
    let expected: Vec<StreamOutput> = (0..run.seconds())
        .map(|t| full.push_second(&run, t).unwrap())
        .collect();
    let mut rolled = engine();
    let (got, _) = rolling_replay(&mut rolled, &run);
    assert_equivalent(&expected, &got, "faulted");
}

#[test]
fn rolling_rebase_survives_snapshot_restore() {
    // Snapshot a rebased engine mid-stream, restore, and keep rolling:
    // the stitched stream must equal the uninterrupted rolling stream.
    let (est, _, _) = fixture();
    let run = build_trace(913, true);
    let kill_at = run.seconds() / 2;

    let mut uninterrupted = engine();
    let (expected, _) = rolling_replay(&mut uninterrupted, &run);

    let mut eng = engine();
    let mut buf = empty_buffer(&run);
    let mut outputs = Vec::new();
    for t in 0..kill_at {
        append_second(&mut buf, &run, t);
        let rel = buf.seconds() - 1;
        outputs.push(eng.push_second(&buf, rel).unwrap());
        if rel >= 1 {
            compact(&mut buf, rel);
            eng.rebase(rel).unwrap();
        }
    }
    let snapshot = eng.snapshot();
    drop(eng);

    let mut eng = StreamEngine::restore(est.clone(), &snapshot).unwrap();
    assert_eq!(eng.seconds_processed(), 1.min(kill_at));
    for t in kill_at..run.seconds() {
        append_second(&mut buf, &run, t);
        let rel = buf.seconds() - 1;
        outputs.push(eng.push_second(&buf, rel).unwrap());
        if rel >= 1 {
            compact(&mut buf, rel);
            eng.rebase(rel).unwrap();
        }
    }
    assert_equivalent(&expected, &outputs, "kill/restore under compaction");
}

#[test]
fn rebase_rejects_dropping_the_lag_row() {
    let run = build_trace(914, false);
    let mut eng = engine();
    // Pristine engine: rebase(0) is the only legal rebase.
    assert!(eng.rebase(0).is_ok());
    assert!(matches!(
        eng.rebase(1),
        Err(StreamError::Rebase {
            consumed: 0,
            delta: 1
        })
    ));
    eng.push_second(&run, 0).unwrap();
    eng.push_second(&run, 1).unwrap();
    // Rewinding past consumed history is rejected…
    assert!(matches!(
        eng.rebase(3),
        Err(StreamError::Rebase {
            consumed: 2,
            delta: 3
        })
    ));
    // …and so is compacting away the final consumed second.
    assert!(matches!(
        eng.rebase(2),
        Err(StreamError::Rebase {
            consumed: 2,
            delta: 2
        })
    ));
    // Keeping the lag row is fine, and the cursor actually moves.
    eng.rebase(1).unwrap();
    assert_eq!(eng.seconds_processed(), 1);
}
