//! End-to-end tests for the streaming engine: offline bit-identity,
//! push/replay agreement, drift-triggered adaptation, and graceful
//! degradation under faults.

use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stats::StatsError;
use chaos_stream::{DriftConfig, StreamConfig, StreamEngine};
use chaos_workloads::{SimConfig, Workload};

fn setup() -> (Vec<RunTrace>, RunTrace, Cluster, CounterCatalog) {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 21);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let train: Vec<RunTrace> = (0..2)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::quick(),
                700 + r,
            )
            .unwrap()
        })
        .collect();
    let test = collect_run(
        &cluster,
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        790,
    )
    .unwrap();
    (train, test, cluster, catalog)
}

fn estimator(train: &[RunTrace], cluster: &Cluster, catalog: &CounterCatalog) -> RobustEstimator {
    let spec = FeatureSpec::general(catalog);
    let cpu = strawman_position(&spec, catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(catalog)),
        ..RobustConfig::fast()
    };
    RobustEstimator::fit(train, &spec, cpu, idle, cfg).unwrap()
}

fn engine(est: RobustEstimator, cluster: &Cluster, config: StreamConfig) -> StreamEngine {
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est,
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        config,
    )
    .unwrap()
}

/// ISSUE 4's acceptance bar: with drift response disabled, replaying a
/// run through the streaming engine yields predictions *bit-identical*
/// to the offline batch estimator — same imputer evolution, same tiers,
/// same machine-order summation.
#[test]
fn offline_equivalence_is_bit_exact() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let offline = est.estimate_cluster(&test);
    let mut eng = engine(est, &cluster, StreamConfig::offline());
    let outputs = eng.replay(&test).unwrap();
    assert_eq!(outputs.len(), offline.power_w.len());
    for (out, (&p, &tier)) in outputs
        .iter()
        .zip(offline.power_w.iter().zip(&offline.worst_tier))
    {
        assert_eq!(
            out.cluster_power_w.to_bits(),
            p.to_bits(),
            "second {}: stream {} vs offline {p}",
            out.t,
            out.cluster_power_w
        );
        assert_eq!(out.worst_tier, tier, "second {}", out.t);
        assert!(!out.machines.iter().any(|s| s.adapted));
    }
    assert_eq!(eng.seconds_processed(), test.seconds());
    assert!(eng.refit_outcomes().is_empty());
}

/// Feeding seconds one at a time is the same computation as replay.
#[test]
fn push_second_matches_replay() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let mut replayed = engine(est.clone(), &cluster, StreamConfig::fast());
    let outputs = replayed.replay(&test).unwrap();
    let mut pushed = engine(est, &cluster, StreamConfig::fast());
    for t in 0..test.seconds() {
        let out = pushed.push_second(&test, t).unwrap();
        assert_eq!(out, outputs[t], "second {t}");
    }
    assert_eq!(pushed.refit_counts(), replayed.refit_counts());
}

/// A sustained shift in measured power (e.g. a firmware change moving
/// the power curve) must push rolling DRE past its thresholds, trigger
/// refits, and leave the engine tracking the *new* relationship better
/// than the frozen model does.
#[test]
fn drift_triggers_refits_and_adapts() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    // Shift the plant: from t=40 on, every meter reads 30% high.
    let mut shifted = test.clone();
    let start = 40.min(shifted.seconds());
    for m in &mut shifted.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    };
    let mut eng = engine(est, &cluster, config);
    let outputs = eng.replay(&shifted).unwrap();
    assert!(
        !eng.refit_outcomes().is_empty(),
        "a 30% power shift must trigger at least one refit"
    );
    assert!(outputs.iter().flat_map(|o| &o.machines).any(|s| s.adapted));
    // After adaptation, late-run predictions should sit close to the
    // shifted meter, not the original curve.
    let n = outputs.len();
    let late = &outputs[n - n / 4..];
    let measured = shifted.cluster_measured_power();
    let mean_err: f64 = late
        .iter()
        .map(|o| (o.cluster_power_w - measured[o.t]).abs())
        .sum::<f64>()
        / late.len() as f64;
    let frozen_err: f64 = late
        .iter()
        .map(|o| (measured[o.t] - measured[o.t] / 1.3).abs())
        .sum::<f64>()
        / late.len() as f64;
    assert!(
        mean_err < frozen_err,
        "adapted error {mean_err} W should beat the frozen-model gap {frozen_err} W"
    );
}

/// Faulted streams degrade gracefully mid-stream: output stays finite
/// every second and the fallback tiers do the answering, exactly as
/// they do offline.
#[test]
fn faulted_stream_degrades_gracefully() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let faulted = FaultPlan::new(41).with_counter_dropout(0.25).apply(&test);
    let offline = est.estimate_cluster(&faulted);
    let mut eng = engine(est, &cluster, StreamConfig::offline());
    let outputs = eng.replay(&faulted).unwrap();
    for (out, &p) in outputs.iter().zip(&offline.power_w) {
        assert!(out.cluster_power_w.is_finite());
        assert_eq!(
            out.cluster_power_w.to_bits(),
            p.to_bits(),
            "second {}",
            out.t
        );
    }
    // Dropouts force the chain below Full somewhere.
    assert!(outputs
        .iter()
        .any(|o| o.worst_tier > chaos_core::robust::EstimateTier::Full));
}

#[test]
fn usage_errors_are_rejected() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let mut eng = engine(est.clone(), &cluster, StreamConfig::offline());
    // Out-of-order seconds.
    assert!(matches!(
        eng.push_second(&test, 5),
        Err(StatsError::InvalidParameter { .. })
    ));
    eng.push_second(&test, 0).unwrap();
    // Replay requires a pristine engine.
    assert!(matches!(
        eng.replay(&test),
        Err(StatsError::InvalidParameter { .. })
    ));
    // Machine-count mismatch.
    let small = Cluster::homogeneous(Platform::Core2, 2, 21);
    let mut wrong = engine(est.clone(), &small, StreamConfig::offline());
    assert!(matches!(
        wrong.replay(&test),
        Err(StatsError::DimensionMismatch { .. })
    ));
    // Zero machines rejected at construction.
    assert!(StreamEngine::new(est, 0, 250.0, 100.0, 0.05, StreamConfig::offline()).is_err());
}
