//! End-to-end tests for the streaming engine: offline bit-identity,
//! push/replay agreement, drift-triggered adaptation, and graceful
//! degradation under faults.

use chaos_core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos_core::FeatureSpec;
use chaos_counters::{collect_run, CounterCatalog, FaultPlan, MembershipEvent, RunTrace};
use chaos_sim::{Cluster, Platform};
use chaos_stream::{
    DriftConfig, MachineHealth, StreamConfig, StreamEngine, StreamError, SupervisorConfig,
};
use chaos_workloads::{SimConfig, Workload};

fn setup() -> (Vec<RunTrace>, RunTrace, Cluster, CounterCatalog) {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 21);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let train: Vec<RunTrace> = (0..2)
        .map(|r| {
            collect_run(
                &cluster,
                &catalog,
                Workload::Prime,
                &SimConfig::quick(),
                700 + r,
            )
            .unwrap()
        })
        .collect();
    let test = collect_run(
        &cluster,
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        790,
    )
    .unwrap();
    (train, test, cluster, catalog)
}

fn estimator(train: &[RunTrace], cluster: &Cluster, catalog: &CounterCatalog) -> RobustEstimator {
    let spec = FeatureSpec::general(catalog);
    let cpu = strawman_position(&spec, catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(catalog)),
        ..RobustConfig::fast()
    };
    RobustEstimator::fit(train, &spec, cpu, idle, cfg).unwrap()
}

fn engine(est: RobustEstimator, cluster: &Cluster, config: StreamConfig) -> StreamEngine {
    let n = cluster.machines().len() as f64;
    StreamEngine::new(
        est,
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        config,
    )
    .unwrap()
}

/// ISSUE 4's acceptance bar: with drift response disabled, replaying a
/// run through the streaming engine yields predictions *bit-identical*
/// to the offline batch estimator — same imputer evolution, same tiers,
/// same machine-order summation.
#[test]
fn offline_equivalence_is_bit_exact() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let offline = est.estimate_cluster(&test);
    let mut eng = engine(est, &cluster, StreamConfig::offline());
    let outputs = eng.replay(&test).unwrap();
    assert_eq!(outputs.len(), offline.power_w.len());
    for (out, (&p, &tier)) in outputs
        .iter()
        .zip(offline.power_w.iter().zip(&offline.worst_tier))
    {
        assert_eq!(
            out.cluster_power_w.to_bits(),
            p.to_bits(),
            "second {}: stream {} vs offline {p}",
            out.t,
            out.cluster_power_w
        );
        assert_eq!(out.worst_tier, tier, "second {}", out.t);
        assert!(!out.machines.iter().any(|s| s.adapted));
    }
    assert_eq!(eng.seconds_processed(), test.seconds());
    assert!(eng.refit_outcomes().is_empty());
}

/// Feeding seconds one at a time is the same computation as replay.
#[test]
fn push_second_matches_replay() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let mut replayed = engine(est.clone(), &cluster, StreamConfig::fast());
    let outputs = replayed.replay(&test).unwrap();
    let mut pushed = engine(est, &cluster, StreamConfig::fast());
    for t in 0..test.seconds() {
        let out = pushed.push_second(&test, t).unwrap();
        assert_eq!(out, outputs[t], "second {t}");
    }
    assert_eq!(pushed.refit_counts(), replayed.refit_counts());
}

/// A sustained shift in measured power (e.g. a firmware change moving
/// the power curve) must push rolling DRE past its thresholds, trigger
/// refits, and leave the engine tracking the *new* relationship better
/// than the frozen model does.
#[test]
fn drift_triggers_refits_and_adapts() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    // Shift the plant: from t=40 on, every meter reads 30% high.
    let mut shifted = test.clone();
    let start = 40.min(shifted.seconds());
    for m in &mut shifted.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    };
    let mut eng = engine(est, &cluster, config);
    let outputs = eng.replay(&shifted).unwrap();
    assert!(
        !eng.refit_outcomes().is_empty(),
        "a 30% power shift must trigger at least one refit"
    );
    assert!(outputs.iter().flat_map(|o| &o.machines).any(|s| s.adapted));
    // After adaptation, late-run predictions should sit close to the
    // shifted meter, not the original curve.
    let n = outputs.len();
    let late = &outputs[n - n / 4..];
    let measured = shifted.cluster_measured_power();
    let mean_err: f64 = late
        .iter()
        .map(|o| (o.cluster_power_w - measured[o.t]).abs())
        .sum::<f64>()
        / late.len() as f64;
    let frozen_err: f64 = late
        .iter()
        .map(|o| (measured[o.t] - measured[o.t] / 1.3).abs())
        .sum::<f64>()
        / late.len() as f64;
    assert!(
        mean_err < frozen_err,
        "adapted error {mean_err} W should beat the frozen-model gap {frozen_err} W"
    );
}

/// Faulted streams degrade gracefully mid-stream: output stays finite
/// every second and the fallback tiers do the answering, exactly as
/// they do offline.
#[test]
fn faulted_stream_degrades_gracefully() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let faulted = FaultPlan::new(41).with_counter_dropout(0.25).apply(&test);
    let offline = est.estimate_cluster(&faulted);
    let mut eng = engine(est, &cluster, StreamConfig::offline());
    let outputs = eng.replay(&faulted).unwrap();
    for (out, &p) in outputs.iter().zip(&offline.power_w) {
        assert!(out.cluster_power_w.is_finite());
        assert_eq!(
            out.cluster_power_w.to_bits(),
            p.to_bits(),
            "second {}",
            out.t
        );
    }
    // Dropouts force the chain below Full somewhere.
    assert!(outputs
        .iter()
        .any(|o| o.worst_tier > chaos_core::robust::EstimateTier::Full));
}

#[test]
fn usage_errors_are_rejected() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let mut eng = engine(est.clone(), &cluster, StreamConfig::offline());
    // Out-of-order seconds.
    assert!(matches!(
        eng.push_second(&test, 5),
        Err(StreamError::OutOfOrder {
            expected: 0,
            got: 5
        })
    ));
    eng.push_second(&test, 0).unwrap();
    // Replay requires a pristine engine.
    assert!(matches!(
        eng.replay(&test),
        Err(StreamError::NotPristine { consumed: 1 })
    ));
    // Machine-count mismatch.
    let small = Cluster::homogeneous(Platform::Core2, 2, 21);
    let mut wrong = engine(est.clone(), &small, StreamConfig::offline());
    assert!(matches!(
        wrong.replay(&test),
        Err(StreamError::MachineCountMismatch { .. })
    ));
    // Zero machines rejected at construction.
    assert!(StreamEngine::new(est, 0, 250.0, 100.0, 0.05, StreamConfig::offline()).is_err());
}

/// Supervision end-to-end: a machine whose refits cannot succeed
/// (constant counters make every windowed Gram singular) is retried,
/// exhausted, quarantined out of the Eq. 5 composition, and readmitted
/// through the ramp path after the countdown.
#[test]
fn failing_machine_is_quarantined_and_readmitted() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let mut broken = test.clone();
    let n = broken.seconds();
    let onset = 30.min(n / 2);
    {
        let m = &mut broken.machines[0];
        let frozen = m.counters[onset].clone();
        for t in onset..m.counters.len() {
            m.counters[t] = frozen.clone();
            m.measured_power_w[t] *= 1.6;
        }
    }
    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_supervise(SupervisorConfig {
        max_attempts: 2,
        quarantine_after: 2,
        quarantine_s: 10,
    });
    let mut eng = engine(est, &cluster, config);
    let outputs = eng.replay(&broken).unwrap();

    let counts = eng.supervision_counts();
    assert!(
        counts["quarantines"] >= 1,
        "constant-counter machine never quarantined: {counts:?}"
    );
    assert!(counts["retries"] >= 1, "no bounded retry ran: {counts:?}");
    // During quarantine the machine is absent from the composition and
    // its power contributes nothing.
    let quarantined_seconds: Vec<&chaos_stream::StreamOutput> = outputs
        .iter()
        .filter(|o| o.machines.iter().all(|s| s.machine_id != 0))
        .collect();
    assert!(
        !quarantined_seconds.is_empty(),
        "machine 0 never dropped out of the composition"
    );
    for o in &quarantined_seconds {
        assert_eq!(o.active_machines, cluster.machines().len() - 1);
        let sum: f64 = o.machines.iter().map(|s| s.power_w).sum();
        assert_eq!(o.cluster_power_w.to_bits(), sum.to_bits());
    }
    // It re-entered afterwards: some later second includes machine 0
    // again, ramping.
    let last_out = quarantined_seconds.last().unwrap().t;
    if last_out + 1 < n {
        assert!(
            outputs[last_out + 1..]
                .iter()
                .any(|o| o.machines.iter().any(|s| s.machine_id == 0)),
            "machine 0 never readmitted after quarantine"
        );
        assert!(
            outputs
                .iter()
                .flat_map(|o| &o.machines)
                .any(|s| s.machine_id == 0 && s.health == MachineHealth::Ramping),
            "readmitted machine never reported ramping health"
        );
    }
    // Healthy machines keep answering every second.
    assert!(outputs.iter().all(|o| o.cluster_power_w.is_finite()));
}

/// Membership events reshape the composition deterministically: a late
/// join (donor warm-start) and a leave, with machine independence
/// pinned — the never-churned machine's samples stay bit-identical to a
/// static-fleet run, and push_second agrees with segmented replay.
#[test]
fn joins_and_leaves_change_the_composition() {
    let (train, test, cluster, catalog) = setup();
    let est = estimator(&train, &cluster, &catalog);
    let n = test.seconds();
    let (join_t, leave_t) = (n / 3, 2 * n / 3);
    let mut churned = test.clone();
    churned.membership = vec![
        MembershipEvent::join(join_t, 2, Some(0)),
        MembershipEvent::leave(leave_t, 1),
    ];

    let baseline = {
        let mut eng = engine(est.clone(), &cluster, StreamConfig::offline());
        eng.replay(&test).unwrap()
    };
    let mut eng = engine(est.clone(), &cluster, StreamConfig::offline());
    let outputs = eng.replay(&churned).unwrap();

    for o in &outputs {
        let expected: &[usize] = if o.t < join_t {
            &[0, 1]
        } else if o.t < leave_t {
            &[0, 1, 2]
        } else {
            &[0, 2]
        };
        let ids: Vec<usize> = o.machines.iter().map(|s| s.machine_id).collect();
        assert_eq!(ids, expected, "second {}", o.t);
        assert_eq!(o.active_machines, expected.len(), "second {}", o.t);
        // Machine 0 never churns; its stream is independent of the
        // others' membership.
        let mine = o.machines.iter().find(|s| s.machine_id == 0).unwrap();
        let base = baseline[o.t]
            .machines
            .iter()
            .find(|s| s.machine_id == 0)
            .unwrap();
        assert_eq!(
            mine.power_w.to_bits(),
            base.power_w.to_bits(),
            "machine 0 diverged at second {}",
            o.t
        );
    }
    // The joiner warm-started from its donor and ramps.
    let joiner = outputs[join_t]
        .machines
        .iter()
        .find(|s| s.machine_id == 2)
        .unwrap();
    assert_eq!(joiner.health, MachineHealth::Ramping);

    // Segmented parallel replay and one-second-at-a-time pushes apply
    // the same schedule at the same boundaries.
    let mut pushed = engine(est, &cluster, StreamConfig::offline());
    for (t, out) in outputs.iter().enumerate() {
        let one = pushed.push_second(&churned, t).unwrap();
        assert_eq!(&one, out, "push/replay diverged at second {t}");
    }
}
