//! Byte-level codec primitives shared by the writer and reader.
//!
//! Everything here is pure bytes-in/bytes-out: the little-endian
//! encoder/decoder pair, LEB128 varints, bit-packed bool strips, the
//! raw-vs-XOR-delta column strip codec, and the footer index payload.
//! Frame framing (length prefix + checksum envelope) lives with the
//! I/O sides in `writer`/`reader`; this module never touches a file.

use crate::TraceError;

/// Frame kind: trace metadata (workload, machines, membership).
pub(crate) const FRAME_META: u8 = 1;
/// Frame kind: one machine's column strips for one block.
pub(crate) const FRAME_BLOCK: u8 = 2;
/// Frame kind: the footer seek index.
pub(crate) const FRAME_INDEX: u8 = 3;

/// Bytes before the first frame: magic (8) + version (4).
pub(crate) const HEADER_LEN: u64 = 12;
/// Bytes after the last frame: index offset (8) + tail magic (8).
pub(crate) const TRAILER_LEN: u64 = 16;
/// Per-frame envelope: kind (1) + payload length (8) + checksum (8).
pub(crate) const FRAME_OVERHEAD: u64 = 17;

/// One block's row of the seek index: where each machine's strip frame
/// lives. Machines sharing byte-identical payloads share an offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BlockIx {
    /// First second covered by the block.
    pub(crate) start: u64,
    /// Seconds covered (equals the trace block span except for the
    /// final block, which may be shorter).
    pub(crate) rows: u64,
    /// Frame offset per machine, in meta machine order.
    pub(crate) offsets: Vec<u64>,
}

/// Little-endian payload encoder.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian payload decoder with allocation-capped length reads.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    ctx: &'a str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8], ctx: &'a str) -> Self {
        Self { buf, pos: 0, ctx }
    }

    fn malformed(&self, what: &str) -> TraceError {
        TraceError::Malformed {
            context: format!("{}: {what}", self.ctx),
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn finished(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every payload byte was consumed — trailing garbage
    /// in a checksummed frame means the encoder and decoder disagree.
    pub(crate) fn expect_end(&self) -> Result<(), TraceError> {
        if self.finished() {
            Ok(())
        } else {
            Err(self.malformed("trailing bytes after payload"))
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(self.malformed("payload ends early"));
        }
        let out = self.buf.get(self.pos..self.pos + n);
        self.pos += n;
        out.ok_or_else(|| self.malformed("payload ends early"))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceError> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or_else(|| self.malformed("payload ends early"))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, TraceError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a length word and sanity-caps it: each of the `len` items
    /// still to come occupies at least `min_item_bytes`, so a length
    /// exceeding `remaining / min_item_bytes` is corrupt — reject it
    /// *before* allocating, so a flipped length word cannot become an
    /// allocation bomb.
    pub(crate) fn len(&mut self, min_item_bytes: usize) -> Result<usize, TraceError> {
        let v = self.u64()?;
        let cap = self.remaining() / min_item_bytes.max(1);
        if v > cap as u64 {
            return Err(self.malformed("length word exceeds payload"));
        }
        Ok(v as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, TraceError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("invalid utf-8 string"))
    }

    /// LEB128 varint.
    pub(crate) fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift: u32 = 0;
        loop {
            let b = self.u8()?;
            let low = u64::from(b & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(self.malformed("varint overflows u64"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Appends `v` as a LEB128 varint.
pub(crate) fn varint_put(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Byte length of `v` as a LEB128 varint.
pub(crate) fn varint_len(v: u64) -> usize {
    let bits = 64 - v.leading_zeros().max(0);
    ((bits.max(1) + 6) / 7) as usize
}

/// Packs bools LSB-first, 8 per byte.
pub(crate) fn pack_bits(bits: &[bool], enc: &mut Enc) {
    let mut byte = 0u8;
    let mut used = 0u32;
    for &b in bits {
        if b {
            byte |= 1 << used;
        }
        used += 1;
        if used == 8 {
            enc.u8(byte);
            byte = 0;
            used = 0;
        }
    }
    if used > 0 {
        enc.u8(byte);
    }
}

/// Unpacks `n` LSB-first bools.
pub(crate) fn unpack_bits(dec: &mut Dec<'_>, n: usize) -> Result<Vec<bool>, TraceError> {
    let bytes = dec.take(n.div_ceil(8))?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = bytes.get(i / 8).copied().unwrap_or(0);
        out.push(byte & (1 << (i % 8)) != 0);
    }
    Ok(out)
}

/// Strip tag: raw little-endian u64 words.
const STRIP_RAW: u8 = 0;
/// Strip tag: first word raw, then XOR-with-predecessor varints.
/// Compact when successive values differ in their *low* mantissa bits
/// (noisy continuous signals: high bits cancel, the XOR is small).
const STRIP_XOR: u8 = 1;
/// Strip tag: like [`STRIP_XOR`] but each XOR is bit-reversed before
/// the varint. Compact when successive values differ in their *high*
/// bits with zero low mantissas (integer-valued ramps and counts:
/// reversal moves the difference into varint-friendly low positions).
const STRIP_XOR_REV: u8 = 2;

/// Encodes one column strip of `words.len()` bit-pattern words,
/// choosing whichever of the three encodings is smallest. The element
/// count is *not* stored — both sides know the block's row count.
pub(crate) fn encode_strip(words: &[u64], enc: &mut Enc) {
    if let Some((&first, rest)) = words.split_first() {
        let mut xor_bytes = 8usize;
        let mut rev_bytes = 8usize;
        let mut prev = first;
        for &w in rest {
            let x = prev ^ w;
            xor_bytes += varint_len(x);
            rev_bytes += varint_len(x.reverse_bits());
            prev = w;
        }
        let raw_bytes = 8 * words.len();
        if xor_bytes.min(rev_bytes) < raw_bytes {
            let reverse = rev_bytes < xor_bytes;
            enc.u8(if reverse { STRIP_XOR_REV } else { STRIP_XOR });
            enc.u64(first);
            let mut prev = first;
            for &w in rest {
                let x = prev ^ w;
                varint_put(&mut enc.buf, if reverse { x.reverse_bits() } else { x });
                prev = w;
            }
            return;
        }
    }
    enc.u8(STRIP_RAW);
    for &w in words {
        enc.u64(w);
    }
}

/// Decodes one `n`-element column strip into bit-pattern words.
pub(crate) fn decode_strip(dec: &mut Dec<'_>, n: usize) -> Result<Vec<u64>, TraceError> {
    let tag = dec.u8()?;
    let mut out = Vec::with_capacity(n);
    match tag {
        STRIP_RAW => {
            for _ in 0..n {
                out.push(dec.u64()?);
            }
        }
        STRIP_XOR | STRIP_XOR_REV => {
            if n > 0 {
                let mut prev = dec.u64()?;
                out.push(prev);
                for _ in 1..n {
                    let raw = dec.varint()?;
                    prev ^= if tag == STRIP_XOR_REV {
                        raw.reverse_bits()
                    } else {
                        raw
                    };
                    out.push(prev);
                }
            }
        }
        _ => {
            return Err(TraceError::Malformed {
                context: "unknown strip tag".to_string(),
            })
        }
    }
    Ok(out)
}

/// Encodes the footer index payload.
pub(crate) fn encode_index(seconds: u64, blocks: &[BlockIx]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(seconds);
    enc.u64(blocks.len() as u64);
    for b in blocks {
        enc.u64(b.start);
        enc.u64(b.rows);
        enc.u64(b.offsets.len() as u64);
        for &off in &b.offsets {
            enc.u64(off);
        }
    }
    enc.buf
}

/// Decodes the footer index payload. Structural consistency against
/// the meta (machine counts, uniform spans) is the reader's job.
pub(crate) fn decode_index(payload: &[u8]) -> Result<(u64, Vec<BlockIx>), TraceError> {
    let mut dec = Dec::new(payload, "index");
    let seconds = dec.u64()?;
    let n_blocks = dec.len(24)?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let start = dec.u64()?;
        let rows = dec.u64()?;
        let n_machines = dec.len(8)?;
        let mut offsets = Vec::with_capacity(n_machines);
        for _ in 0..n_machines {
            offsets.push(dec.u64()?);
        }
        blocks.push(BlockIx {
            start,
            rows,
            offsets,
        });
    }
    dec.expect_end()?;
    Ok((seconds, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            varint_put(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len mismatch for {v}");
            let mut dec = Dec::new(&buf, "test");
            assert_eq!(dec.varint().unwrap(), v);
            assert!(dec.finished());
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes can never fit in a u64.
        let buf = [0xffu8; 11];
        let mut dec = Dec::new(&buf, "test");
        assert!(matches!(dec.varint(), Err(TraceError::Malformed { .. })));
    }

    #[test]
    fn varint_rejects_truncation() {
        let buf = [0x80u8];
        let mut dec = Dec::new(&buf, "test");
        assert!(matches!(dec.varint(), Err(TraceError::Malformed { .. })));
    }

    #[test]
    fn bitset_round_trips_all_lengths() {
        for n in 0..=19usize {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut enc = Enc::new();
            pack_bits(&bits, &mut enc);
            assert_eq!(enc.buf.len(), n.div_ceil(8));
            let mut dec = Dec::new(&enc.buf, "test");
            assert_eq!(unpack_bits(&mut dec, n).unwrap(), bits);
            assert!(dec.finished());
        }
    }

    #[test]
    fn strip_round_trips_and_compresses_smooth_columns() {
        // A smooth ramp: XOR deltas are small, varints short.
        let words: Vec<u64> = (0..256u64).map(|t| (1000.0 + t as f64).to_bits()).collect();
        let mut enc = Enc::new();
        encode_strip(&words, &mut enc);
        assert!(
            enc.buf.len() < 8 * words.len() / 2,
            "smooth column should compress >2x, got {} of {}",
            enc.buf.len(),
            8 * words.len()
        );
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(decode_strip(&mut dec, words.len()).unwrap(), words);
        assert!(dec.finished());
    }

    #[test]
    fn strip_compresses_noisy_continuous_columns() {
        // Deterministic "noise": low mantissa bits churn, high bits
        // stable — the plain-XOR encoding's home turf.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let words: Vec<u64> = (0..256)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (1000.0 + (state % 1024) as f64 / 1024.0).to_bits()
            })
            .collect();
        let mut enc = Enc::new();
        encode_strip(&words, &mut enc);
        assert!(
            enc.buf.len() < 8 * words.len(),
            "noisy column should still beat raw, got {}",
            enc.buf.len()
        );
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(decode_strip(&mut dec, words.len()).unwrap(), words);
    }

    #[test]
    fn strip_never_expands_past_raw_plus_tag() {
        // Adversarial column: alternating extreme bit patterns.
        let words: Vec<u64> = (0..64u64)
            .map(|t| if t % 2 == 0 { u64::MAX } else { 1 })
            .collect();
        let mut enc = Enc::new();
        encode_strip(&words, &mut enc);
        assert!(enc.buf.len() <= 1 + 8 * words.len());
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(decode_strip(&mut dec, words.len()).unwrap(), words);
    }

    #[test]
    fn strip_handles_empty_and_singleton() {
        for words in [vec![], vec![42u64]] {
            let mut enc = Enc::new();
            encode_strip(&words, &mut enc);
            let mut dec = Dec::new(&enc.buf, "test");
            assert_eq!(decode_strip(&mut dec, words.len()).unwrap(), words);
            assert!(dec.finished());
        }
    }

    #[test]
    fn strip_preserves_nan_payloads_and_signed_zero() {
        let words = vec![
            f64::NAN.to_bits() | 0xdead,
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
        ];
        let mut enc = Enc::new();
        encode_strip(&words, &mut enc);
        let mut dec = Dec::new(&enc.buf, "test");
        assert_eq!(decode_strip(&mut dec, words.len()).unwrap(), words);
    }

    #[test]
    fn index_round_trips() {
        let blocks = vec![
            BlockIx {
                start: 0,
                rows: 64,
                offsets: vec![12, 12, 900],
            },
            BlockIx {
                start: 64,
                rows: 10,
                offsets: vec![2000, 2100, 2100],
            },
        ];
        let payload = encode_index(74, &blocks);
        let (seconds, got) = decode_index(&payload).unwrap();
        assert_eq!(seconds, 74);
        assert_eq!(got, blocks);
    }

    #[test]
    fn length_bomb_is_rejected_before_allocation() {
        // A payload claiming 2^60 blocks must fail fast.
        let mut enc = Enc::new();
        enc.u64(10);
        enc.u64(1 << 60);
        assert!(matches!(
            decode_index(&enc.buf),
            Err(TraceError::Malformed { .. })
        ));
    }
}
