//! CHAOSCOL — the columnar on-disk trace store.
//!
//! Counter traces are naturally parallel per-counter time series (the
//! fxprof counter-sample layout stores them the same way), and fleet
//! traces will never all fit in RAM. This crate defines a compact,
//! append-only binary format for cluster counter/power recordings plus
//! a writer and a streaming reader, with three contracts:
//!
//! 1. **Bit identity.** Every `f64` round-trips through its IEEE-754
//!    bit pattern (`to_bits`, little-endian). A trace written and read
//!    back is bit-identical, including NaN payloads, `-0.0`, and
//!    infinities — so replay-from-disk feeds estimators the exact bytes
//!    replay-from-memory would.
//! 2. **Typed failure.** Truncation, bit rot, version skew, oversized
//!    length prefixes, and structural nonsense each decode to a
//!    [`TraceError`]; no input bytes can panic the reader.
//! 3. **Bounded memory.** Data is chunked into fixed-span blocks of
//!    per-machine, per-counter column strips. The reader streams one
//!    block at a time and hands out per-second *views* borrowed from
//!    the decoded block — one decode per block, zero copies per second
//!    — so replaying a trace never materializes it.
//!
//! # File layout (version 1)
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `CHAOSCOL` |
//! | 8      | 4     | format version (little-endian u32, currently 1) |
//! | 12     | …     | meta frame (kind 1) |
//! | …      | …     | machine-block frames (kind 2), append order |
//! | …      | …     | index frame (kind 3) |
//! | end−16 | 8     | index frame offset (little-endian u64) |
//! | end−8  | 8     | tail magic `CHAOSEOF` |
//!
//! Every frame is length-prefixed and checksummed:
//!
//! | bytes | field |
//! |-------|-------|
//! | 1     | frame kind |
//! | 8     | payload length (little-endian u64) |
//! | n     | payload |
//! | 8     | FNV-1a 64 checksum of the payload (little-endian u64) |
//!
//! # Blocks, strips, and the index
//!
//! The writer buffers `block_s` seconds, then emits one frame per
//! machine holding that machine's column strips for the block: one
//! strip per counter, one for metered power, one for ground-truth
//! power, then bit-packed validity masks (only for machines whose
//! [`MachineMeta`] flags them as present). Counter strips are
//! delta-encoded: the first value's bit pattern is stored raw, then
//! each successive value as the LEB128 varint of the XOR with its
//! predecessor — close samples share sign/exponent/high-mantissa bits,
//! so the XOR is small and the varint short. A bit-reversed variant
//! covers integer-valued ramps (whose XORs land in the high mantissa,
//! which low-bits-first varints cannot shrink), and a raw variant
//! backstops adversarial columns. Each strip carries a one-byte tag;
//! the writer picks whichever of the three is smallest, so no column
//! ever expands past raw.
//!
//! Machine-block frames are content-addressed within a block: a
//! machine whose strip payload is byte-identical to an earlier
//! machine's (tiled fleets replicate a small base cluster thousands of
//! times) is not rewritten — the index simply points both machines at
//! the same frame. The footer index maps `(block, machine)` to a frame
//! offset, and blocks span uniform `block_s` seconds, so seeking to
//! any `(machine, second)` is an O(1) index lookup plus one
//! single-machine frame decode, independent of trace length.
//!
//! # Example
//!
//! ```
//! use chaos_trace::{MachineMeta, SecondRow, TraceMeta, TraceReader, TraceWriter};
//!
//! # fn main() -> Result<(), chaos_trace::TraceError> {
//! let meta = TraceMeta {
//!     workload: "doc".to_string(),
//!     run_seed: 7,
//!     machines: vec![MachineMeta::new(0, "Core2", 2)],
//!     membership: Vec::new(),
//! };
//! let mut w = TraceWriter::new(Vec::new(), &meta, 4)?;
//! for t in 0..10u32 {
//!     let row = [f64::from(t), f64::from(t) * 0.5];
//!     w.push_second(&[SecondRow::clean(&row, 100.0 + f64::from(t), 99.0)])?;
//! }
//! let (bytes, summary) = w.finish()?;
//! assert_eq!(summary.seconds, 10);
//!
//! let mut r = TraceReader::new(std::io::Cursor::new(bytes))?;
//! assert_eq!(r.seconds(), 10);
//! let s = r.machine_second(0, 3)?;
//! assert_eq!(s.counters, vec![3.0, 1.5]);
//! assert_eq!(s.measured_power_w, 103.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod format;
mod meta;
mod reader;
mod writer;

pub use meta::{EventKind, MachineMeta, MemberEvent, SecondRow, TraceMeta};
pub use reader::{
    DecodedBlock, MachineBlock, MachineSecondView, OwnedSecond, SecondView, TraceReader,
    TraceStream,
};
pub use writer::{TraceSummary, TraceWriter};

use std::fmt;

/// Magic bytes opening every CHAOSCOL file.
pub const TRACE_MAGIC: [u8; 8] = *b"CHAOSCOL";

/// Magic bytes closing every CHAOSCOL file.
pub const TRACE_TAIL_MAGIC: [u8; 8] = *b"CHAOSEOF";

/// Current CHAOSCOL format version.
pub const TRACE_VERSION: u32 = 1;

/// Default block span in seconds for convenience constructors.
///
/// The block is the unit of buffering (writer) and decoding (reader):
/// working memory is `machines × block_s × width` values, so wide
/// fleets want modest blocks. 64 keeps a 5000-machine, 20-counter
/// fleet around 50 MB per side while still amortizing frame overhead.
pub const DEFAULT_BLOCK_SECONDS: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash — the frame checksum, also used for the golden
/// whole-file format pins and the writer's strip dedup prefilter.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a CHAOSCOL file could not be written, decoded, or validated.
///
/// Corrupt and truncated inputs are data, not programming errors: every
/// reader path returns one of these instead of panicking, and the
/// corruption-fuzz suite pins that.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Fewer bytes than the fixed header + trailer envelope.
    TooShort {
        /// Bytes present.
        got: u64,
    },
    /// The opening magic is wrong — not a CHAOSCOL file.
    BadMagic,
    /// The tail magic is wrong — truncated or not a CHAOSCOL file.
    BadTailMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        got: u32,
    },
    /// A frame's payload checksum does not match its bytes.
    ChecksumMismatch {
        /// Which frame failed (`"meta"`, `"index"`, or
        /// `"block b machine m"`).
        context: String,
    },
    /// A length prefix points past the end of the file — truncation or
    /// a corrupted (oversized) length word.
    OversizedLength {
        /// What declared the length.
        context: String,
        /// The declared length.
        declared: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The payload decoded but its structure is inconsistent.
    Malformed {
        /// What was wrong.
        context: String,
    },
    /// The caller's request or data does not fit the trace shape
    /// (writer-side ragged rows, out-of-range machine/second seeks,
    /// mask presence disagreeing with the machine's meta flags).
    Shape {
        /// What did not fit.
        context: String,
    },
    /// Filesystem failure while reading or writing.
    Io {
        /// The failed operation and the OS error.
        context: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TooShort { got } => {
                write!(f, "chaoscol: {got} bytes is shorter than the envelope")
            }
            TraceError::BadMagic => write!(f, "chaoscol: bad magic (not a CHAOSCOL file)"),
            TraceError::BadTailMagic => {
                write!(f, "chaoscol: bad tail magic (truncated or not CHAOSCOL)")
            }
            TraceError::UnsupportedVersion { got } => {
                write!(f, "chaoscol: unsupported format version {got}")
            }
            TraceError::ChecksumMismatch { context } => {
                write!(f, "chaoscol: checksum mismatch in {context} frame")
            }
            TraceError::OversizedLength {
                context,
                declared,
                available,
            } => write!(
                f,
                "chaoscol: {context} declares {declared} bytes but only {available} are available"
            ),
            TraceError::Malformed { context } => write!(f, "chaoscol: malformed: {context}"),
            TraceError::Shape { context } => write!(f, "chaoscol: shape: {context}"),
            TraceError::Io { context } => write!(f, "chaoscol: io failure: {context}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn errors_display_their_context() {
        let e = TraceError::OversizedLength {
            context: "block 3 machine 1 payload".to_string(),
            declared: 1 << 40,
            available: 64,
        };
        assert!(e.to_string().contains("block 3 machine 1"));
        assert!(TraceError::BadMagic.to_string().contains("CHAOSCOL"));
    }
}
