//! Trace metadata: what a CHAOSCOL file describes, independent of the
//! column data itself.
//!
//! `chaos-trace` sits below every other crate in the workspace, so the
//! meta model is deliberately self-contained: platforms are carried as
//! strings (mapped to/from `chaos_sim::Platform` by `chaos-counters`),
//! and membership events mirror `chaos_sim::churn::MembershipEvent`
//! field-for-field without depending on it.

use crate::format::{Dec, Enc};
use crate::TraceError;

/// Per-machine metadata: identity, platform, counter width, and which
/// validity masks the machine's blocks materialize.
///
/// The three `has_*_mask` flags preserve the upstream distinction
/// between an *empty* validity mask (all samples valid by convention)
/// and a *materialized* all-true mask — `RunTrace` equality compares
/// the raw vectors, so the round trip must keep them distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineMeta {
    /// Stable machine identity (the upstream `machine_id`).
    pub machine_id: u64,
    /// Platform name (e.g. `"Core2"`); opaque at this layer.
    pub platform: String,
    /// Counters per sample row.
    pub width: usize,
    /// Blocks carry a per-counter validity bitset for this machine.
    pub has_counter_mask: bool,
    /// Blocks carry a meter-validity bitset for this machine.
    pub has_meter_mask: bool,
    /// Blocks carry a liveness bitset for this machine.
    pub has_alive_mask: bool,
}

impl MachineMeta {
    /// Meta for a machine with no materialized validity masks.
    pub fn new(machine_id: u64, platform: &str, width: usize) -> Self {
        Self {
            machine_id,
            platform: platform.to_string(),
            width,
            has_counter_mask: false,
            has_meter_mask: false,
            has_alive_mask: false,
        }
    }

    /// Meta for a machine with an explicit mask-presence profile.
    pub fn with_masks(
        machine_id: u64,
        platform: &str,
        width: usize,
        counter: bool,
        meter: bool,
        alive: bool,
    ) -> Self {
        Self {
            machine_id,
            platform: platform.to_string(),
            width,
            has_counter_mask: counter,
            has_meter_mask: meter,
            has_alive_mask: alive,
        }
    }

    pub(crate) fn flags_byte(&self) -> u8 {
        u8::from(self.has_counter_mask)
            | u8::from(self.has_meter_mask) << 1
            | u8::from(self.has_alive_mask) << 2
    }
}

/// What happened to fleet membership at one second. Mirrors
/// `chaos_sim::churn::MembershipKind`, donors included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The machine joined, optionally warm-started from `donor`'s model.
    Join {
        /// Machine whose fitted model seeded the joiner, if any.
        donor: Option<u64>,
    },
    /// The machine left the fleet.
    Leave,
    /// The machine was replaced in place, optionally re-seeded from
    /// `donor`.
    Replace {
        /// Machine whose fitted model seeded the replacement, if any.
        donor: Option<u64>,
    },
}

/// One membership-churn event, mirroring the upstream schedule entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberEvent {
    /// Second at which the event takes effect.
    pub t: u64,
    /// Machine the event concerns.
    pub machine_id: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Whole-trace metadata, written once as the first frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload label the trace was recorded under.
    pub workload: String,
    /// Seed of the run that produced the trace.
    pub run_seed: u64,
    /// Machines, in column order; index position is the machine's
    /// identity everywhere else in the file.
    pub machines: Vec<MachineMeta>,
    /// Membership-churn schedule, in upstream order.
    pub membership: Vec<MemberEvent>,
}

const EVENT_JOIN: u8 = 0;
const EVENT_LEAVE: u8 = 1;
const EVENT_REPLACE: u8 = 2;

pub(crate) fn encode_meta(meta: &TraceMeta, block_s: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.str(&meta.workload);
    enc.u64(meta.run_seed);
    enc.u64(block_s);
    enc.u64(meta.machines.len() as u64);
    for m in &meta.machines {
        enc.u64(m.machine_id);
        enc.str(&m.platform);
        enc.u64(m.width as u64);
        enc.u8(m.flags_byte());
    }
    enc.u64(meta.membership.len() as u64);
    for e in &meta.membership {
        enc.u64(e.t);
        enc.u64(e.machine_id);
        let (kind_byte, donor) = match &e.kind {
            EventKind::Join { donor } => (EVENT_JOIN, Some(donor)),
            EventKind::Leave => (EVENT_LEAVE, None),
            EventKind::Replace { donor } => (EVENT_REPLACE, Some(donor)),
        };
        enc.u8(kind_byte);
        if let Some(donor) = donor {
            match donor {
                Some(d) => {
                    enc.u8(1);
                    enc.u64(*d);
                }
                None => enc.u8(0),
            }
        }
    }
    enc.buf
}

pub(crate) fn decode_meta(payload: &[u8]) -> Result<(TraceMeta, u64), TraceError> {
    let mut dec = Dec::new(payload, "meta");
    let workload = dec.str()?;
    let run_seed = dec.u64()?;
    let block_s = dec.u64()?;
    let n_machines = dec.len(18)?;
    let mut machines = Vec::with_capacity(n_machines);
    for _ in 0..n_machines {
        let machine_id = dec.u64()?;
        let platform = dec.str()?;
        let width = dec.u64()? as usize;
        let flags = dec.u8()?;
        if flags > 0b111 {
            return Err(TraceError::Malformed {
                context: "meta: unknown machine mask flags".to_string(),
            });
        }
        machines.push(MachineMeta {
            machine_id,
            platform,
            width,
            has_counter_mask: flags & 0b001 != 0,
            has_meter_mask: flags & 0b010 != 0,
            has_alive_mask: flags & 0b100 != 0,
        });
    }
    let n_events = dec.len(17)?;
    let mut membership = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let t = dec.u64()?;
        let machine_id = dec.u64()?;
        let kind_byte = dec.u8()?;
        let kind = match kind_byte {
            EVENT_JOIN | EVENT_REPLACE => {
                let donor = match dec.u8()? {
                    0 => None,
                    1 => Some(dec.u64()?),
                    _ => {
                        return Err(TraceError::Malformed {
                            context: "meta: bad donor presence byte".to_string(),
                        })
                    }
                };
                if kind_byte == EVENT_JOIN {
                    EventKind::Join { donor }
                } else {
                    EventKind::Replace { donor }
                }
            }
            EVENT_LEAVE => EventKind::Leave,
            _ => {
                return Err(TraceError::Malformed {
                    context: "meta: unknown membership event kind".to_string(),
                })
            }
        };
        membership.push(MemberEvent {
            t,
            machine_id,
            kind,
        });
    }
    dec.expect_end()?;
    Ok((
        TraceMeta {
            workload,
            run_seed,
            machines,
            membership,
        },
        block_s,
    ))
}

/// One machine's data for one second, as handed to the writer.
///
/// Borrowed so callers can feed rows straight out of their own storage
/// without staging copies. Mask fields must be `Some` exactly when the
/// machine's [`MachineMeta`] flags the corresponding mask as present —
/// the writer rejects disagreement with [`TraceError::Shape`].
#[derive(Debug, Clone, Copy)]
pub struct SecondRow<'a> {
    /// Counter values for this second, `width` long.
    pub counters: &'a [f64],
    /// Metered power draw (may carry fault NaNs — stored bit-exactly).
    pub measured_power_w: f64,
    /// Ground-truth power draw.
    pub true_power_w: f64,
    /// Per-counter validity, `width` long, when materialized.
    pub counter_ok: Option<&'a [bool]>,
    /// Meter validity, when materialized.
    pub meter_ok: Option<bool>,
    /// Machine liveness, when materialized.
    pub alive: Option<bool>,
}

impl<'a> SecondRow<'a> {
    /// A row for a machine with no materialized validity masks.
    pub fn clean(counters: &'a [f64], measured_power_w: f64, true_power_w: f64) -> Self {
        Self {
            counters,
            measured_power_w,
            true_power_w,
            counter_ok: None,
            meter_ok: None,
            alive: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            workload: "specpower-ish".to_string(),
            run_seed: 0xdead_beef,
            machines: vec![
                MachineMeta::new(3, "Core2", 5),
                MachineMeta::with_masks(9, "XeonSAS", 7, true, true, false),
                MachineMeta::with_masks(11, "Atom", 0, false, false, true),
            ],
            membership: vec![
                MemberEvent {
                    t: 4,
                    machine_id: 9,
                    kind: EventKind::Join { donor: Some(3) },
                },
                MemberEvent {
                    t: 7,
                    machine_id: 11,
                    kind: EventKind::Join { donor: None },
                },
                MemberEvent {
                    t: 9,
                    machine_id: 3,
                    kind: EventKind::Leave,
                },
                MemberEvent {
                    t: 12,
                    machine_id: 11,
                    kind: EventKind::Replace { donor: Some(9) },
                },
                MemberEvent {
                    t: 14,
                    machine_id: 9,
                    kind: EventKind::Replace { donor: None },
                },
            ],
        }
    }

    #[test]
    fn meta_round_trips() {
        let meta = sample_meta();
        let payload = encode_meta(&meta, 64);
        let (got, block_s) = decode_meta(&payload).unwrap();
        assert_eq!(got, meta);
        assert_eq!(block_s, 64);
    }

    #[test]
    fn meta_rejects_unknown_event_kind() {
        let meta = sample_meta();
        let mut payload = encode_meta(&meta, 64);
        // The final event is Replace{donor: None}: [t][id][kind][0],
        // so its kind byte sits 2 bytes from the end.
        let kind_at = payload.len() - 2;
        if let Some(b) = payload.get_mut(kind_at) {
            *b = 7;
        }
        assert!(matches!(
            decode_meta(&payload),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn meta_rejects_bad_donor_presence_byte() {
        let meta = sample_meta();
        let mut payload = encode_meta(&meta, 64);
        // The final event's donor presence byte is the last byte.
        let at = payload.len() - 1;
        if let Some(b) = payload.get_mut(at) {
            *b = 9;
        }
        assert!(matches!(
            decode_meta(&payload),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn meta_rejects_truncation_at_every_length() {
        let payload = encode_meta(&sample_meta(), 64);
        for cut in 0..payload.len() {
            let truncated = payload.get(..cut).unwrap_or(&[]);
            assert!(
                decode_meta(truncated).is_err(),
                "truncation at {cut} of {} decoded",
                payload.len()
            );
        }
    }

    #[test]
    fn flags_byte_round_trips_all_profiles() {
        for bits in 0u8..8 {
            let m =
                MachineMeta::with_masks(1, "Core2", 2, bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            assert_eq!(m.flags_byte(), bits);
        }
    }
}
