//! The CHAOSCOL reader: validated open, O(1) seek, block streaming.

use crate::format::{
    decode_index, decode_strip, unpack_bits, BlockIx, Dec, FRAME_BLOCK, FRAME_INDEX, FRAME_META,
    FRAME_OVERHEAD, HEADER_LEN, TRAILER_LEN,
};
use crate::meta::{decode_meta, MachineMeta, TraceMeta};
use crate::{fnv1a64, TraceError, TRACE_MAGIC, TRACE_TAIL_MAGIC, TRACE_VERSION};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// One machine's decoded columns for one block, transposed to
/// row-major so per-second access is a contiguous borrow.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineBlock {
    /// Stable machine identity (from the meta, not the frame — shared
    /// frames serve several machines).
    pub machine_id: u64,
    /// Counters per row.
    pub width: usize,
    /// Rows decoded.
    pub rows: usize,
    /// Row-major `rows × width` counter values.
    counters: Vec<f64>,
    measured: Vec<f64>,
    truth: Vec<f64>,
    /// Row-major `rows × width`, present iff the meta flags it.
    counter_ok: Option<Vec<bool>>,
    meter_ok: Option<Vec<bool>>,
    alive: Option<Vec<bool>>,
}

impl MachineBlock {
    /// Counter row for block-local second `local`.
    pub fn counters_row(&self, local: usize) -> Option<&[f64]> {
        if local < self.rows {
            self.counters
                .get(local * self.width..(local + 1) * self.width)
        } else {
            None
        }
    }

    /// Metered power at block-local second `local`.
    pub fn measured(&self, local: usize) -> Option<f64> {
        self.measured.get(local).copied()
    }

    /// Ground-truth power at block-local second `local`.
    pub fn truth(&self, local: usize) -> Option<f64> {
        self.truth.get(local).copied()
    }

    /// Counter-validity row, `None` when the machine materializes no
    /// counter mask (upstream convention: absent mask = all valid) or
    /// when `local` is out of range.
    pub fn counter_ok_row(&self, local: usize) -> Option<&[bool]> {
        let mask = self.counter_ok.as_ref()?;
        if local < self.rows {
            mask.get(local * self.width..(local + 1) * self.width)
        } else {
            None
        }
    }

    /// Meter validity, `None` when no meter mask is materialized.
    pub fn meter_ok_at(&self, local: usize) -> Option<bool> {
        self.meter_ok.as_ref().and_then(|m| m.get(local)).copied()
    }

    /// Liveness, `None` when no liveness mask is materialized.
    pub fn alive_at(&self, local: usize) -> Option<bool> {
        self.alive.as_ref().and_then(|m| m.get(local)).copied()
    }
}

/// One block of the trace, fully decoded: every machine's rows for
/// `start..start + rows`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedBlock {
    /// First second covered.
    pub start: u64,
    /// Seconds covered.
    pub rows: usize,
    /// Machines in meta order.
    pub machines: Vec<MachineBlock>,
}

impl DecodedBlock {
    /// View of absolute second `t`, if this block covers it.
    pub fn second(&self, t: u64) -> Option<SecondView<'_>> {
        let local = t.checked_sub(self.start)? as usize;
        if local < self.rows {
            Some(SecondView {
                t,
                local,
                block: self,
            })
        } else {
            None
        }
    }
}

/// A borrowed cluster-wide view of one second.
#[derive(Debug, Clone, Copy)]
pub struct SecondView<'a> {
    /// Absolute second.
    pub t: u64,
    local: usize,
    block: &'a DecodedBlock,
}

impl<'a> SecondView<'a> {
    /// Machines in the cluster.
    pub fn machines(&self) -> usize {
        self.block.machines.len()
    }

    /// Machine `m`'s slice of this second. The counter slice borrows
    /// the decoded block — no per-second copies.
    pub fn machine(&self, m: usize) -> Option<MachineSecondView<'a>> {
        let mb = self.block.machines.get(m)?;
        Some(MachineSecondView {
            machine_id: mb.machine_id,
            counters: mb.counters_row(self.local)?,
            measured_power_w: mb.measured(self.local)?,
            true_power_w: mb.truth(self.local)?,
            counter_ok: mb.counter_ok_row(self.local),
            meter_ok: mb.meter_ok_at(self.local).unwrap_or(true),
            alive: mb.alive_at(self.local).unwrap_or(true),
        })
    }
}

/// One machine's second, borrowed from a decoded block.
#[derive(Debug, Clone, Copy)]
pub struct MachineSecondView<'a> {
    /// Stable machine identity.
    pub machine_id: u64,
    /// Counter values for the second.
    pub counters: &'a [f64],
    /// Metered power (bit-exact, fault NaNs included).
    pub measured_power_w: f64,
    /// Ground-truth power.
    pub true_power_w: f64,
    /// Per-counter validity; `None` means all valid by convention.
    pub counter_ok: Option<&'a [bool]>,
    /// Meter validity (`true` when no mask is materialized).
    pub meter_ok: bool,
    /// Liveness (`true` when no mask is materialized).
    pub alive: bool,
}

/// One machine's second as owned data, for random-access seeks.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSecond {
    /// Absolute second.
    pub t: u64,
    /// Stable machine identity.
    pub machine_id: u64,
    /// Counter values.
    pub counters: Vec<f64>,
    /// Metered power.
    pub measured_power_w: f64,
    /// Ground-truth power.
    pub true_power_w: f64,
    /// Per-counter validity; `None` means no materialized mask.
    pub counter_ok: Option<Vec<bool>>,
    /// Meter validity; `None` means no materialized mask.
    pub meter_ok: Option<bool>,
    /// Liveness; `None` means no materialized mask.
    pub alive: Option<bool>,
}

/// Validated random-access reader over a CHAOSCOL file.
///
/// Opening reads and checks the envelope (magics, version), the meta
/// frame, and the footer index — O(index), not O(data). Column data is
/// only read when asked for, one frame at a time.
pub struct TraceReader<R: Read + Seek> {
    r: R,
    file_len: u64,
    meta: TraceMeta,
    block_s: u64,
    seconds: u64,
    blocks: Vec<BlockIx>,
}

// Manual impl: the inner byte source need not be `Debug`.
impl<R: Read + Seek> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("file_len", &self.file_len)
            .field("machines", &self.meta.machines.len())
            .field("block_s", &self.block_s)
            .field("seconds", &self.seconds)
            .field("blocks", &self.blocks.len())
            .finish_non_exhaustive()
    }
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens and validates the trace at `path`.
    pub fn open_path(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io {
            context: format!("open {}: {e}", path.display()),
        })?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Opens and validates a trace over any seekable byte source.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let file_len = r.seek(SeekFrom::End(0)).map_err(io_err)?;
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(TraceError::TooShort { got: file_len });
        }
        let mut header = [0u8; 12];
        read_exact_at(&mut r, 0, &mut header)?;
        if header.get(..8) != Some(&TRACE_MAGIC[..]) {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(header.get(8..12).unwrap_or(&[0; 4]));
        let version = u32::from_le_bytes(ver);
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion { got: version });
        }
        let mut trailer = [0u8; 16];
        read_exact_at(&mut r, file_len - TRAILER_LEN, &mut trailer)?;
        if trailer.get(8..16) != Some(&TRACE_TAIL_MAGIC[..]) {
            return Err(TraceError::BadTailMagic);
        }
        let mut off = [0u8; 8];
        off.copy_from_slice(trailer.get(..8).unwrap_or(&[0; 8]));
        let index_off = u64::from_le_bytes(off);

        let meta_payload = read_frame_at(&mut r, file_len, HEADER_LEN, FRAME_META, "meta")?;
        let (meta, block_s) = decode_meta(&meta_payload)?;
        if block_s == 0 {
            return Err(TraceError::Malformed {
                context: "meta: zero block span".to_string(),
            });
        }
        let index_payload = read_frame_at(&mut r, file_len, index_off, FRAME_INDEX, "index")?;
        let (seconds, blocks) = decode_index(&index_payload)?;
        validate_index(seconds, &blocks, meta.machines.len(), block_s, index_off)?;
        Ok(Self {
            r,
            file_len,
            meta,
            block_s,
            seconds,
            blocks,
        })
    }

    /// The trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Seconds recorded.
    pub fn seconds(&self) -> u64 {
        self.seconds
    }

    /// Machines per second.
    pub fn machines(&self) -> usize {
        self.meta.machines.len()
    }

    /// Block span in seconds.
    pub fn block_seconds(&self) -> u64 {
        self.block_s
    }

    /// Blocks in the trace.
    pub fn blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Decodes block `b` in full: every machine, `rows` seconds.
    /// Frames shared by several machines are decoded once and cloned.
    pub fn read_block(&mut self, b: usize) -> Result<DecodedBlock, TraceError> {
        let ix = self
            .blocks
            .get(b)
            .ok_or_else(|| TraceError::Shape {
                context: format!("block {b} out of range ({} blocks)", self.blocks.len()),
            })?
            .clone();
        let rows = ix.rows as usize;
        let mut machines: Vec<MachineBlock> = Vec::with_capacity(ix.offsets.len());
        let mut decoded_at: BTreeMap<u64, usize> = BTreeMap::new();
        for (m, &off) in ix.offsets.iter().enumerate() {
            let mm = self
                .meta
                .machines
                .get(m)
                .ok_or_else(|| TraceError::Malformed {
                    context: format!("index names machine {m} beyond meta"),
                })?;
            if let Some(&first) = decoded_at.get(&off) {
                // Shared frame: same bytes, so same columns; only the
                // identity differs.
                let mut mb = machines
                    .get(first)
                    .cloned()
                    .ok_or_else(|| TraceError::Malformed {
                        context: format!("block {b}: dangling dedup reference"),
                    })?;
                mb.machine_id = mm.machine_id;
                machines.push(mb);
                continue;
            }
            let ctx = format!("block {b} machine {m}");
            let payload = read_frame_at(&mut self.r, self.file_len, off, FRAME_BLOCK, &ctx)?;
            let mb = decode_machine_block(&payload, rows, mm, &ctx)?;
            decoded_at.insert(off, machines.len());
            machines.push(mb);
        }
        Ok(DecodedBlock {
            start: ix.start,
            rows,
            machines,
        })
    }

    /// O(1) seek: machine `m` at absolute second `t`, decoding only
    /// that machine's frame in the covering block.
    pub fn machine_second(&mut self, m: usize, t: u64) -> Result<OwnedSecond, TraceError> {
        if t >= self.seconds {
            return Err(TraceError::Shape {
                context: format!("second {t} out of range ({} seconds)", self.seconds),
            });
        }
        let mm = self
            .meta
            .machines
            .get(m)
            .ok_or_else(|| TraceError::Shape {
                context: format!("machine {m} out of range ({} machines)", self.machines()),
            })?
            .clone();
        let b = (t / self.block_s) as usize;
        let ix = self.blocks.get(b).ok_or_else(|| TraceError::Malformed {
            context: format!("second {t} maps to missing block {b}"),
        })?;
        let off = ix
            .offsets
            .get(m)
            .copied()
            .ok_or_else(|| TraceError::Malformed {
                context: format!("block {b} has no offset for machine {m}"),
            })?;
        let (rows, start) = (ix.rows as usize, ix.start);
        let ctx = format!("block {b} machine {m}");
        let payload = read_frame_at(&mut self.r, self.file_len, off, FRAME_BLOCK, &ctx)?;
        let mb = decode_machine_block(&payload, rows, &mm, &ctx)?;
        let local = (t - start) as usize;
        let shape = |what: &str| TraceError::Malformed {
            context: format!("{ctx}: {what} missing at local row {local}"),
        };
        Ok(OwnedSecond {
            t,
            machine_id: mm.machine_id,
            counters: mb
                .counters_row(local)
                .ok_or_else(|| shape("counters"))?
                .to_vec(),
            measured_power_w: mb.measured(local).ok_or_else(|| shape("measured power"))?,
            true_power_w: mb.truth(local).ok_or_else(|| shape("true power"))?,
            counter_ok: mb.counter_ok_row(local).map(<[bool]>::to_vec),
            meter_ok: mb.meter_ok_at(local),
            alive: mb.alive_at(local),
        })
    }

    /// Converts into a sequential block-at-a-time stream from t = 0.
    pub fn stream(self) -> TraceStream<R> {
        TraceStream {
            reader: self,
            block: None,
            next_t: 0,
        }
    }
}

/// Sequential second-by-second replay over a trace.
///
/// Call [`advance`](Self::advance) to step to the next second (decoding
/// each block exactly once, as it is entered), then
/// [`second`](Self::second) for the borrowed cluster view. Working
/// memory is one decoded block regardless of trace length.
pub struct TraceStream<R: Read + Seek> {
    reader: TraceReader<R>,
    block: Option<DecodedBlock>,
    next_t: u64,
}

impl<R: Read + Seek> TraceStream<R> {
    /// Steps to the next second; `Ok(false)` at end of trace.
    pub fn advance(&mut self) -> Result<bool, TraceError> {
        if self.next_t >= self.reader.seconds() {
            return Ok(false);
        }
        let covered = self
            .block
            .as_ref()
            .is_some_and(|blk| blk.second(self.next_t).is_some());
        if !covered {
            let b = (self.next_t / self.reader.block_seconds()) as usize;
            self.block = Some(self.reader.read_block(b)?);
        }
        self.next_t += 1;
        Ok(true)
    }

    /// The current second (the one the last `advance` stepped onto).
    pub fn second(&self) -> Option<SecondView<'_>> {
        let t = self.next_t.checked_sub(1)?;
        self.block.as_ref()?.second(t)
    }

    /// The underlying reader.
    pub fn reader(&self) -> &TraceReader<R> {
        &self.reader
    }

    /// Dissolves the stream back into its reader.
    pub fn into_reader(self) -> TraceReader<R> {
        self.reader
    }
}

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io {
        context: format!("read trace: {e}"),
    }
}

fn read_exact_at<R: Read + Seek>(r: &mut R, off: u64, buf: &mut [u8]) -> Result<(), TraceError> {
    r.seek(SeekFrom::Start(off)).map_err(io_err)?;
    r.read_exact(buf).map_err(io_err)
}

/// Reads and checksums one frame, defending against corrupt offsets
/// and oversized length prefixes *before* allocating.
fn read_frame_at<R: Read + Seek>(
    r: &mut R,
    file_len: u64,
    offset: u64,
    expect_kind: u8,
    ctx: &str,
) -> Result<Vec<u8>, TraceError> {
    let data_end = file_len.saturating_sub(TRAILER_LEN);
    if offset < HEADER_LEN || offset.saturating_add(FRAME_OVERHEAD) > data_end {
        return Err(TraceError::Malformed {
            context: format!("{ctx}: frame offset {offset} out of range"),
        });
    }
    let mut head = [0u8; 9];
    read_exact_at(r, offset, &mut head)?;
    let kind = head.first().copied().unwrap_or(0);
    if kind != expect_kind {
        return Err(TraceError::Malformed {
            context: format!("{ctx}: expected frame kind {expect_kind}, found {kind}"),
        });
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(head.get(1..9).unwrap_or(&[0; 8]));
    let len = u64::from_le_bytes(len_bytes);
    let available = data_end - offset - FRAME_OVERHEAD;
    if len > available {
        return Err(TraceError::OversizedLength {
            context: format!("{ctx} frame"),
            declared: len,
            available,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(io_err)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum).map_err(io_err)?;
    if u64::from_le_bytes(sum) != fnv1a64(&payload) {
        return Err(TraceError::ChecksumMismatch {
            context: ctx.to_string(),
        });
    }
    Ok(payload)
}

/// Structural consistency between the index, the meta, and the file:
/// uniform block spans, complete machine coverage, in-bounds offsets.
fn validate_index(
    seconds: u64,
    blocks: &[BlockIx],
    machines: usize,
    block_s: u64,
    index_off: u64,
) -> Result<(), TraceError> {
    let bad = |what: String| TraceError::Malformed { context: what };
    let mut covered = 0u64;
    for (i, b) in blocks.iter().enumerate() {
        if b.start != (i as u64) * block_s {
            return Err(bad(format!("index: block {i} starts at {}", b.start)));
        }
        if b.rows == 0 || b.rows > block_s {
            return Err(bad(format!("index: block {i} spans {} rows", b.rows)));
        }
        if b.rows != block_s && i + 1 != blocks.len() {
            return Err(bad(format!("index: non-final block {i} is short")));
        }
        if b.offsets.len() != machines {
            return Err(bad(format!(
                "index: block {i} covers {} machines, meta has {machines}",
                b.offsets.len()
            )));
        }
        for (m, &off) in b.offsets.iter().enumerate() {
            if off < HEADER_LEN || off.saturating_add(FRAME_OVERHEAD) > index_off {
                return Err(bad(format!(
                    "index: block {i} machine {m} frame offset {off} out of range"
                )));
            }
        }
        covered += b.rows;
    }
    if covered != seconds {
        return Err(bad(format!(
            "index: blocks cover {covered} seconds, trace claims {seconds}"
        )));
    }
    Ok(())
}

/// Decodes one machine-block payload against the machine's meta shape.
fn decode_machine_block(
    payload: &[u8],
    rows: usize,
    mm: &MachineMeta,
    ctx: &str,
) -> Result<MachineBlock, TraceError> {
    let mut dec = Dec::new(payload, ctx);
    let got_rows = dec.u64()? as usize;
    if got_rows != rows {
        return Err(TraceError::Malformed {
            context: format!("{ctx}: frame has {got_rows} rows, index says {rows}"),
        });
    }
    let got_width = dec.u64()? as usize;
    if got_width != mm.width {
        return Err(TraceError::Malformed {
            context: format!("{ctx}: frame has width {got_width}, meta says {}", mm.width),
        });
    }
    let flags = dec.u8()?;
    if flags != mm.flags_byte() {
        return Err(TraceError::Malformed {
            context: format!("{ctx}: frame mask flags disagree with meta"),
        });
    }
    let width = mm.width;
    let mut counters = vec![0.0f64; rows * width];
    for c in 0..width {
        let col = decode_strip(&mut dec, rows)?;
        for (t, &bits) in col.iter().enumerate() {
            if let Some(slot) = counters.get_mut(t * width + c) {
                *slot = f64::from_bits(bits);
            }
        }
    }
    let measured: Vec<f64> = decode_strip(&mut dec, rows)?
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();
    let truth: Vec<f64> = decode_strip(&mut dec, rows)?
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();
    let counter_ok = if mm.has_counter_mask {
        Some(unpack_bits(&mut dec, rows * width)?)
    } else {
        None
    };
    let meter_ok = if mm.has_meter_mask {
        Some(unpack_bits(&mut dec, rows)?)
    } else {
        None
    };
    let alive = if mm.has_alive_mask {
        Some(unpack_bits(&mut dec, rows)?)
    } else {
        None
    };
    dec.expect_end()?;
    Ok(MachineBlock {
        machine_id: mm.machine_id,
        width,
        rows,
        counters,
        measured,
        truth,
        counter_ok,
        meter_ok,
        alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::SecondRow;
    use crate::writer::TraceWriter;
    use std::io::Cursor;

    /// A deterministic trace with masks, NaNs, and a partial tail
    /// block: 2 distinct machines + 1 tile of machine 0.
    fn build_trace(seconds: u64, block_s: usize) -> (Vec<u8>, TraceMeta) {
        let meta = TraceMeta {
            workload: "reader-test".to_string(),
            run_seed: 99,
            machines: vec![
                MachineMeta::new(0, "Core2", 3),
                MachineMeta::with_masks(1, "Atom", 2, true, true, true),
                MachineMeta::new(2, "Core2", 3),
            ],
            membership: Vec::new(),
        };
        let mut w = TraceWriter::new(Vec::new(), &meta, block_s).unwrap();
        for t in 0..seconds {
            let x = t as f64;
            let a = [x, x * 0.25, 1e6 + x];
            let b = [x * 2.0, if t % 7 == 3 { f64::NAN } else { -x }];
            let b_ok = [t % 7 != 3, true];
            let rows = [
                SecondRow::clean(&a, 100.0 + x, 99.0 + x),
                SecondRow {
                    counters: &b,
                    measured_power_w: if t % 5 == 0 { f64::NAN } else { 50.0 + x },
                    true_power_w: 49.0 + x,
                    counter_ok: Some(&b_ok),
                    meter_ok: Some(t % 5 != 0),
                    alive: Some(t % 11 != 10),
                },
                SecondRow::clean(&a, 100.0 + x, 99.0 + x),
            ];
            w.push_second(&rows).unwrap();
        }
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.seconds, seconds);
        // Machine 2 tiles machine 0 → every block shares its frame.
        assert_eq!(summary.frames_shared as usize, summary.blocks);
        (bytes, meta)
    }

    #[test]
    fn open_validates_and_reports_shape() {
        let (bytes, meta) = build_trace(10, 4);
        let r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.meta(), &meta);
        assert_eq!(r.seconds(), 10);
        assert_eq!(r.machines(), 3);
        assert_eq!(r.block_seconds(), 4);
        assert_eq!(r.blocks(), 3, "4 + 4 + 2");
    }

    #[test]
    fn seek_matches_push_bit_for_bit() {
        let (bytes, _) = build_trace(23, 5);
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        for t in [0u64, 4, 5, 11, 19, 20, 22] {
            let s = r.machine_second(1, t).unwrap();
            assert_eq!(s.t, t);
            assert_eq!(s.machine_id, 1);
            let x = t as f64;
            assert_eq!(
                s.counters.first().copied().map(f64::to_bits),
                Some((x * 2.0).to_bits())
            );
            let want_c1 = if t % 7 == 3 { f64::NAN } else { -x };
            assert_eq!(
                s.counters.last().copied().map(f64::to_bits),
                Some(want_c1.to_bits())
            );
            let want_p = if t % 5 == 0 { f64::NAN } else { 50.0 + x };
            assert_eq!(s.measured_power_w.to_bits(), want_p.to_bits());
            assert_eq!(s.true_power_w.to_bits(), (49.0 + x).to_bits());
            assert_eq!(s.counter_ok, Some(vec![t % 7 != 3, true]));
            assert_eq!(s.meter_ok, Some(t % 5 != 0));
            assert_eq!(s.alive, Some(t % 11 != 10));
        }
        // Maskless machine reports absent masks, not all-true ones.
        let s = r.machine_second(0, 7).unwrap();
        assert_eq!(s.counter_ok, None);
        assert_eq!(s.meter_ok, None);
        assert_eq!(s.alive, None);
    }

    #[test]
    fn seek_out_of_range_is_shape_error() {
        let (bytes, _) = build_trace(6, 4);
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.machine_second(0, 6),
            Err(TraceError::Shape { .. })
        ));
        assert!(matches!(
            r.machine_second(3, 0),
            Err(TraceError::Shape { .. })
        ));
    }

    #[test]
    fn shared_frames_decode_with_their_own_identity() {
        let (bytes, _) = build_trace(8, 4);
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        let blk = r.read_block(1).unwrap();
        let ids: Vec<u64> = blk.machines.iter().map(|m| m.machine_id).collect();
        assert_eq!(ids, [0, 1, 2]);
        let m0 = blk.machines.first().unwrap();
        let m2 = blk.machines.last().unwrap();
        assert_eq!(m0.counters_row(1), m2.counters_row(1));
    }

    #[test]
    fn stream_visits_every_second_once_borrowing_rows() {
        let (bytes, _) = build_trace(23, 5);
        let r = TraceReader::new(Cursor::new(bytes)).unwrap();
        let mut stream = r.stream();
        let mut seen = 0u64;
        while stream.advance().unwrap() {
            let s = stream.second().unwrap();
            assert_eq!(s.t, seen);
            assert_eq!(s.machines(), 3);
            let mv = s.machine(0).unwrap();
            assert_eq!(mv.counters.first().copied(), Some(seen as f64));
            assert!(mv.meter_ok && mv.alive, "maskless defaults");
            seen += 1;
        }
        assert_eq!(seen, 23);
        assert!(stream.second().is_some(), "view persists after the loop");
    }

    #[test]
    fn empty_trace_round_trips() {
        let meta = TraceMeta {
            workload: "empty".to_string(),
            run_seed: 0,
            machines: vec![MachineMeta::new(0, "Core2", 1)],
            membership: Vec::new(),
        };
        let w = TraceWriter::new(Vec::new(), &meta, 8).unwrap();
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.seconds, 0);
        let r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.seconds(), 0);
        assert_eq!(r.blocks(), 0);
        let mut stream = r.stream();
        assert!(!stream.advance().unwrap());
    }

    #[test]
    fn zero_width_machine_round_trips() {
        let meta = TraceMeta {
            workload: "thin".to_string(),
            run_seed: 0,
            machines: vec![MachineMeta::new(7, "Atom", 0)],
            membership: Vec::new(),
        };
        let mut w = TraceWriter::new(Vec::new(), &meta, 2).unwrap();
        for t in 0..3u32 {
            w.push_second(&[SecondRow::clean(&[], f64::from(t), 0.5)])
                .unwrap();
        }
        let (bytes, _) = w.finish().unwrap();
        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        let s = r.machine_second(0, 2).unwrap();
        assert!(s.counters.is_empty());
        assert_eq!(s.measured_power_w, 2.0);
    }
}
