//! The CHAOSCOL writer: block-buffered, columnar, append-only.

use crate::format::{
    encode_index, encode_strip, pack_bits, BlockIx, Enc, FRAME_BLOCK, FRAME_INDEX, FRAME_META,
    FRAME_OVERHEAD,
};
use crate::meta::{encode_meta, SecondRow, TraceMeta};
use crate::{fnv1a64, TraceError, TRACE_MAGIC, TRACE_VERSION};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// What a finished trace looked like, for logs and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Seconds recorded.
    pub seconds: u64,
    /// Machines per second.
    pub machines: usize,
    /// Blocks written.
    pub blocks: usize,
    /// Total file size in bytes, envelope included.
    pub bytes: u64,
    /// Machine-block frames physically written.
    pub frames_written: u64,
    /// Machine-block frames shared via content dedup instead of
    /// rewritten (tiled fleets make this large).
    pub frames_shared: u64,
}

/// Per-machine column accumulator for the block being built.
struct ColBuf {
    /// One bit-pattern column per counter.
    cols: Vec<Vec<u64>>,
    measured: Vec<u64>,
    truth: Vec<u64>,
    /// Row-major `rows × width` when the machine materializes it.
    counter_ok: Vec<bool>,
    meter_ok: Vec<bool>,
    alive: Vec<bool>,
}

impl ColBuf {
    fn new(width: usize) -> Self {
        Self {
            cols: (0..width).map(|_| Vec::new()).collect(),
            measured: Vec::new(),
            truth: Vec::new(),
            counter_ok: Vec::new(),
            meter_ok: Vec::new(),
            alive: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.measured.clear();
        self.truth.clear();
        self.counter_ok.clear();
        self.meter_ok.clear();
        self.alive.clear();
    }
}

/// Streaming CHAOSCOL writer over any [`Write`] sink.
///
/// Rows arrive cluster-wide via [`push_second`](Self::push_second);
/// after `block_s` seconds the buffered columns flush as one frame per
/// machine (deduplicated within the block) and buffering restarts.
/// [`finish`](Self::finish) flushes the final partial block, the
/// footer index, and the trailer — a writer that is dropped without
/// `finish` leaves a file with no tail magic, which the reader rejects,
/// so torn writes cannot masquerade as complete traces.
pub struct TraceWriter<W: Write> {
    w: W,
    /// Bytes emitted so far == offset of the next frame.
    offset: u64,
    block_s: usize,
    /// `(width, flags_byte)` per machine, from the meta.
    shapes: Vec<(usize, u8)>,
    bufs: Vec<ColBuf>,
    /// Rows buffered in the current block.
    rows: usize,
    /// First second of the current block.
    start: u64,
    seconds: u64,
    blocks: Vec<BlockIx>,
    frames_written: u64,
    frames_shared: u64,
    finished: bool,
}

impl TraceWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates `path` (truncating any existing file) and returns a
    /// buffered writer over it.
    pub fn create_path(path: &Path, meta: &TraceMeta, block_s: usize) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path).map_err(|e| TraceError::Io {
            context: format!("create {}: {e}", path.display()),
        })?;
        Self::new(std::io::BufWriter::new(file), meta, block_s)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the header and the meta frame.
    pub fn new(w: W, meta: &TraceMeta, block_s: usize) -> Result<Self, TraceError> {
        if block_s == 0 {
            return Err(TraceError::Shape {
                context: "block span must be at least 1 second".to_string(),
            });
        }
        let shapes: Vec<(usize, u8)> = meta
            .machines
            .iter()
            .map(|m| (m.width, m.flags_byte()))
            .collect();
        let bufs = meta.machines.iter().map(|m| ColBuf::new(m.width)).collect();
        let mut this = Self {
            w,
            offset: 0,
            block_s,
            shapes,
            bufs,
            rows: 0,
            start: 0,
            seconds: 0,
            blocks: Vec::new(),
            frames_written: 0,
            frames_shared: 0,
            finished: false,
        };
        this.write_bytes(&TRACE_MAGIC)?;
        this.write_bytes(&TRACE_VERSION.to_le_bytes())?;
        let payload = encode_meta(meta, block_s as u64);
        this.write_frame(FRAME_META, &payload)?;
        Ok(this)
    }

    /// Appends one second of cluster data: one [`SecondRow`] per
    /// machine, in meta machine order.
    pub fn push_second(&mut self, rows: &[SecondRow<'_>]) -> Result<(), TraceError> {
        if self.finished {
            return Err(TraceError::Shape {
                context: "push_second after finish".to_string(),
            });
        }
        if rows.len() != self.shapes.len() {
            return Err(TraceError::Shape {
                context: format!(
                    "second has {} machines, trace has {}",
                    rows.len(),
                    self.shapes.len()
                ),
            });
        }
        // Validate the whole second before buffering any of it, so a
        // rejected row never leaves machines ragged.
        for (i, (row, &(width, flags))) in rows.iter().zip(&self.shapes).enumerate() {
            if row.counters.len() != width {
                return Err(TraceError::Shape {
                    context: format!(
                        "machine {i}: row has {} counters, meta says {width}",
                        row.counters.len()
                    ),
                });
            }
            let want_counter = flags & 0b001 != 0;
            let want_meter = flags & 0b010 != 0;
            let want_alive = flags & 0b100 != 0;
            if row.counter_ok.is_some() != want_counter
                || row.meter_ok.is_some() != want_meter
                || row.alive.is_some() != want_alive
            {
                return Err(TraceError::Shape {
                    context: format!("machine {i}: mask presence disagrees with meta flags"),
                });
            }
            if let Some(ok) = row.counter_ok {
                if ok.len() != width {
                    return Err(TraceError::Shape {
                        context: format!(
                            "machine {i}: counter mask has {} entries, meta says {width}",
                            ok.len()
                        ),
                    });
                }
            }
        }
        for (row, buf) in rows.iter().zip(&mut self.bufs) {
            for (col, &v) in buf.cols.iter_mut().zip(row.counters) {
                col.push(v.to_bits());
            }
            buf.measured.push(row.measured_power_w.to_bits());
            buf.truth.push(row.true_power_w.to_bits());
            if let Some(ok) = row.counter_ok {
                buf.counter_ok.extend_from_slice(ok);
            }
            if let Some(ok) = row.meter_ok {
                buf.meter_ok.push(ok);
            }
            if let Some(a) = row.alive {
                buf.alive.push(a);
            }
        }
        self.rows += 1;
        self.seconds += 1;
        if self.rows == self.block_s {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Encodes and writes the buffered block: one frame per *distinct*
    /// machine payload, with byte-identical machines sharing a frame
    /// through the index.
    fn flush_block(&mut self) -> Result<(), TraceError> {
        let rows = self.rows as u64;
        let mut offsets = Vec::with_capacity(self.bufs.len());
        // hash → indices into `written` with that hash (hash is a
        // prefilter; byte equality decides).
        let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut written: Vec<(Vec<u8>, u64)> = Vec::new();
        let payloads: Vec<Vec<u8>> = self
            .bufs
            .iter()
            .zip(&self.shapes)
            .map(|(buf, &(width, flags))| encode_machine_block(buf, rows, width, flags))
            .collect();
        for payload in payloads {
            let hash = fnv1a64(&payload);
            let shared = by_hash.get(&hash).and_then(|candidates| {
                candidates
                    .iter()
                    .find_map(|&i| written.get(i).filter(|(p, _)| *p == payload))
                    .map(|&(_, off)| off)
            });
            if let Some(off) = shared {
                self.frames_shared += 1;
                offsets.push(off);
                continue;
            }
            let off = self.write_frame(FRAME_BLOCK, &payload)?;
            self.frames_written += 1;
            by_hash.entry(hash).or_default().push(written.len());
            written.push((payload, off));
            offsets.push(off);
        }
        self.blocks.push(BlockIx {
            start: self.start,
            rows,
            offsets,
        });
        self.start += rows;
        self.rows = 0;
        for buf in &mut self.bufs {
            buf.clear();
        }
        Ok(())
    }

    /// Flushes the final partial block, writes the footer index and
    /// trailer, and returns the sink plus a summary.
    pub fn finish(mut self) -> Result<(W, TraceSummary), TraceError> {
        if self.rows > 0 {
            self.flush_block()?;
        }
        let index_payload = encode_index(self.seconds, &self.blocks);
        let index_off = self.write_frame(FRAME_INDEX, &index_payload)?;
        self.write_bytes(&index_off.to_le_bytes())?;
        self.write_bytes(&crate::TRACE_TAIL_MAGIC)?;
        self.w.flush().map_err(|e| TraceError::Io {
            context: format!("flush trace: {e}"),
        })?;
        self.finished = true;
        let summary = TraceSummary {
            seconds: self.seconds,
            machines: self.shapes.len(),
            blocks: self.blocks.len(),
            bytes: self.offset,
            frames_written: self.frames_written,
            frames_shared: self.frames_shared,
        };
        Ok((self.w, summary))
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.w.write_all(bytes).map_err(|e| TraceError::Io {
            context: format!("write trace: {e}"),
        })?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Writes one `[kind][len][payload][fnv1a64]` frame; returns its
    /// starting offset.
    fn write_frame(&mut self, kind: u8, payload: &[u8]) -> Result<u64, TraceError> {
        let off = self.offset;
        self.write_bytes(&[kind])?;
        self.write_bytes(&(payload.len() as u64).to_le_bytes())?;
        self.write_bytes(payload)?;
        self.write_bytes(&fnv1a64(payload).to_le_bytes())?;
        debug_assert_eq!(self.offset, off + FRAME_OVERHEAD + payload.len() as u64);
        Ok(off)
    }
}

/// Encodes one machine's strips for one block.
///
/// Layout: `rows u64 · width u64 · flags u8 · width counter strips ·
/// measured strip · truth strip · [counter bitset] · [meter bitset] ·
/// [alive bitset]`. Shape fields are part of the payload so that the
/// dedup byte-compare can never conflate machines whose strips agree
/// but whose shapes differ.
fn encode_machine_block(buf: &ColBuf, rows: u64, width: usize, flags: u8) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(rows);
    enc.u64(width as u64);
    enc.u8(flags);
    for col in &buf.cols {
        encode_strip(col, &mut enc);
    }
    encode_strip(&buf.measured, &mut enc);
    encode_strip(&buf.truth, &mut enc);
    if flags & 0b001 != 0 {
        pack_bits(&buf.counter_ok, &mut enc);
    }
    if flags & 0b010 != 0 {
        pack_bits(&buf.meter_ok, &mut enc);
    }
    if flags & 0b100 != 0 {
        pack_bits(&buf.alive, &mut enc);
    }
    enc.buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MachineMeta;

    fn two_machine_meta() -> TraceMeta {
        TraceMeta {
            workload: "t".to_string(),
            run_seed: 1,
            machines: vec![
                MachineMeta::new(0, "Core2", 2),
                MachineMeta::new(1, "Core2", 2),
            ],
            membership: Vec::new(),
        }
    }

    #[test]
    fn writer_rejects_ragged_rows() {
        let meta = two_machine_meta();
        let mut w = TraceWriter::new(Vec::new(), &meta, 4).unwrap();
        let short = [0.0f64; 1];
        let fine = [0.0f64; 2];
        let err = w
            .push_second(&[
                SecondRow::clean(&short, 0.0, 0.0),
                SecondRow::clean(&fine, 0.0, 0.0),
            ])
            .unwrap_err();
        assert!(matches!(err, TraceError::Shape { .. }));
        // The rejected second must not have been partially buffered.
        assert_eq!(w.seconds, 0);
        assert!(w.bufs.iter().all(|b| b.measured.is_empty()));
    }

    #[test]
    fn writer_rejects_wrong_machine_count() {
        let meta = two_machine_meta();
        let mut w = TraceWriter::new(Vec::new(), &meta, 4).unwrap();
        let row = [0.0f64; 2];
        let err = w
            .push_second(&[SecondRow::clean(&row, 0.0, 0.0)])
            .unwrap_err();
        assert!(matches!(err, TraceError::Shape { .. }));
    }

    #[test]
    fn writer_rejects_mask_presence_mismatch() {
        let meta = TraceMeta {
            workload: "t".to_string(),
            run_seed: 1,
            machines: vec![MachineMeta::with_masks(0, "Atom", 1, true, false, false)],
            membership: Vec::new(),
        };
        let mut w = TraceWriter::new(Vec::new(), &meta, 4).unwrap();
        let row = [1.0f64; 1];
        // Meta says counter mask present, row says absent.
        let err = w
            .push_second(&[SecondRow::clean(&row, 0.0, 0.0)])
            .unwrap_err();
        assert!(matches!(err, TraceError::Shape { .. }));
    }

    #[test]
    fn writer_rejects_zero_block_span() {
        let meta = two_machine_meta();
        assert!(matches!(
            TraceWriter::new(Vec::new(), &meta, 0),
            Err(TraceError::Shape { .. })
        ));
    }

    #[test]
    fn identical_machines_share_frames() {
        let meta = two_machine_meta();
        let mut w = TraceWriter::new(Vec::new(), &meta, 4).unwrap();
        for t in 0..8u32 {
            let row = [f64::from(t), 2.0];
            let rows = [
                SecondRow::clean(&row, 10.0, 9.0),
                SecondRow::clean(&row, 10.0, 9.0),
            ];
            w.push_second(&rows).unwrap();
        }
        let (_, summary) = w.finish().unwrap();
        assert_eq!(summary.blocks, 2);
        assert_eq!(summary.frames_written, 2, "one distinct frame per block");
        assert_eq!(summary.frames_shared, 2, "second machine shared per block");
    }

    #[test]
    fn finish_flushes_partial_block() {
        let meta = two_machine_meta();
        let mut w = TraceWriter::new(Vec::new(), &meta, 64).unwrap();
        let row = [1.0f64, 2.0];
        for _ in 0..10 {
            let rows = [
                SecondRow::clean(&row, 10.0, 9.0),
                SecondRow::clean(&row, 11.0, 9.5),
            ];
            w.push_second(&rows).unwrap();
        }
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.seconds, 10);
        assert_eq!(summary.blocks, 1);
        assert_eq!(summary.bytes, bytes.len() as u64);
        // Envelope sanity: header + tail magic in place.
        assert_eq!(bytes.get(..8), Some(&crate::TRACE_MAGIC[..]));
        assert_eq!(
            bytes.get(bytes.len() - 8..),
            Some(&crate::TRACE_TAIL_MAGIC[..])
        );
    }

    #[test]
    fn push_after_finish_is_rejected() {
        // finish() consumes the writer, so this is enforced by types;
        // the internal flag still guards reuse through any future
        // non-consuming paths. Exercised via the Shape error message.
        let meta = two_machine_meta();
        let w = TraceWriter::new(Vec::new(), &meta, 4).unwrap();
        let (bytes, _) = w.finish().unwrap();
        assert!(!bytes.is_empty());
    }
}
