//! Shared test scaffolding: a deterministic PRNG and a random-trace
//! generator.
//!
//! `chaos-trace` is deliberately dependency-free (dev-dependencies
//! included), so the property suite hand-rolls its generator instead of
//! pulling in `proptest`: SplitMix64 seeds enumerate the case space,
//! and a failing case's seed is its reproduction recipe.

use chaos_trace::{EventKind, MachineMeta, MemberEvent, SecondRow, TraceMeta, TraceWriter};

/// SplitMix64 — tiny, seedable, and statistically fine for test-case
/// generation.
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n` must be positive; modulo bias is fine
    /// for test generation).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A trace value drawn from a deliberately nasty distribution:
    /// smooth signals, integer ramps, NaNs with payloads, signed
    /// zeros, infinities, subnormals, and raw bit noise.
    pub fn value(&mut self, t: u64) -> f64 {
        match self.below(12) {
            0 => f64::NAN,
            1 => f64::from_bits(f64::NAN.to_bits() | self.below(0xfffff)),
            2 => -0.0,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::from_bits(self.below(1 << 40)), // subnormal
            6 => f64::from_bits(self.next_u64()),     // raw noise
            7 => (t as f64) * 1000.0,                 // integer ramp
            _ => 40.0 + (t as f64) * 0.25 + self.unit(), // smooth signal
        }
    }
}

/// One machine-second as owned data — the generator's ground truth to
/// compare replays against.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRow {
    pub counters: Vec<f64>,
    pub measured_power_w: f64,
    pub true_power_w: f64,
    pub counter_ok: Option<Vec<bool>>,
    pub meter_ok: Option<bool>,
    pub alive: Option<bool>,
}

impl OwnedRow {
    pub fn as_second_row(&self) -> SecondRow<'_> {
        SecondRow {
            counters: &self.counters,
            measured_power_w: self.measured_power_w,
            true_power_w: self.true_power_w,
            counter_ok: self.counter_ok.as_deref(),
            meter_ok: self.meter_ok,
            alive: self.alive,
        }
    }

    /// Bitwise equality — NaN payloads and signed zeros included.
    /// (Not every suite sharing this module uses it.)
    #[allow(dead_code)]
    pub fn bits_eq(
        &self,
        counters: &[f64],
        measured: f64,
        truth: f64,
        counter_ok: Option<&[bool]>,
        meter_ok: Option<bool>,
        alive: Option<bool>,
    ) -> bool {
        self.counters.len() == counters.len()
            && self
                .counters
                .iter()
                .zip(counters)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.measured_power_w.to_bits() == measured.to_bits()
            && self.true_power_w.to_bits() == truth.to_bits()
            && self.counter_ok.as_deref() == counter_ok
            && self.meter_ok == meter_ok
            && self.alive == alive
    }
}

/// A generated trace: metadata plus `[t][machine]` ground-truth rows.
pub struct GeneratedTrace {
    pub meta: TraceMeta,
    pub rows: Vec<Vec<OwnedRow>>,
    pub block_s: usize,
}

const PLATFORMS: [&str; 6] = ["Atom", "Core2", "Athlon", "Opteron", "XeonSATA", "XeonSAS"];

/// Draws a random trace: machine shapes, mask profiles, membership
/// churn, fault-y values, and a block span chosen to exercise single,
/// partial, and multi-block layouts.
pub fn generate(rng: &mut SplitMix64) -> GeneratedTrace {
    let n_machines = 1 + rng.below(5) as usize;
    let tiles = rng.chance(1, 3); // sometimes clone machine shapes+data
    let machines: Vec<MachineMeta> = (0..n_machines)
        .map(|_| {
            let platform = PLATFORMS[rng.below(PLATFORMS.len() as u64) as usize];
            let width = rng.below(5) as usize;
            MachineMeta::with_masks(
                rng.below(1000),
                platform,
                width,
                rng.chance(1, 2),
                rng.chance(1, 2),
                rng.chance(1, 2),
            )
        })
        .collect();
    let seconds = rng.below(70);
    let membership: Vec<MemberEvent> = (0..rng.below(5))
        .map(|_| {
            let donor = rng.chance(1, 2).then(|| rng.below(n_machines as u64));
            let kind = match rng.below(3) {
                0 => EventKind::Join { donor },
                1 => EventKind::Leave,
                _ => EventKind::Replace { donor },
            };
            MemberEvent {
                t: rng.below(seconds.max(1)),
                machine_id: machines[rng.below(n_machines as u64) as usize].machine_id,
                kind,
            }
        })
        .collect();
    let meta = TraceMeta {
        workload: format!("prop-{}", rng.below(1000)),
        run_seed: rng.next_u64(),
        machines,
        membership,
    };

    let block_s = [1usize, 2, 5, 16, 64][rng.below(5) as usize];
    let mut rows = Vec::with_capacity(seconds as usize);
    for t in 0..seconds {
        let mut second: Vec<OwnedRow> = Vec::with_capacity(n_machines);
        for m in &meta.machines {
            // Tiled mode: machines with identical shape reuse the
            // first such machine's row, exercising the dedup path.
            let clone_of = tiles
                .then(|| {
                    meta.machines.iter().take(second.len()).position(|prev| {
                        prev.width == m.width
                            && prev.flags_byte_for_test() == m.flags_byte_for_test()
                    })
                })
                .flatten();
            if let Some(i) = clone_of {
                let prev: OwnedRow = second[i].clone();
                second.push(prev);
                continue;
            }
            let counters: Vec<f64> = (0..m.width).map(|_| rng.value(t)).collect();
            let counter_ok = m
                .has_counter_mask
                .then(|| (0..m.width).map(|_| rng.chance(9, 10)).collect());
            second.push(OwnedRow {
                counters,
                measured_power_w: rng.value(t),
                true_power_w: rng.value(t),
                counter_ok,
                meter_ok: m.has_meter_mask.then(|| rng.chance(9, 10)),
                alive: m.has_alive_mask.then(|| rng.chance(19, 20)),
            });
        }
        rows.push(second);
    }
    GeneratedTrace {
        meta,
        rows,
        block_s,
    }
}

/// Writes a generated trace to bytes.
pub fn write_trace(gen: &GeneratedTrace) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), &gen.meta, gen.block_s).expect("writer");
    for second in &gen.rows {
        let borrowed: Vec<SecondRow<'_>> = second.iter().map(OwnedRow::as_second_row).collect();
        w.push_second(&borrowed).expect("push");
    }
    let (bytes, _) = w.finish().expect("finish");
    bytes
}

/// Test-only mirror of the private flags byte, for shape matching.
trait FlagsByteForTest {
    fn flags_byte_for_test(&self) -> u8;
}

impl FlagsByteForTest for MachineMeta {
    fn flags_byte_for_test(&self) -> u8 {
        u8::from(self.has_counter_mask)
            | u8::from(self.has_meter_mask) << 1
            | u8::from(self.has_alive_mask) << 2
    }
}
