//! Corruption fuzz: no byte sequence may panic the reader.
//!
//! Mirrors the CHAOSNAP corruption suite. Every failure mode the
//! on-call runbook cares about — torn writes (truncation), bit rot
//! (flips), wrong files (bad magic), version skew, and corrupted
//! length words (allocation bombs) — must surface as a typed
//! [`TraceError`], never a panic and never silently wrong data.

mod common;

use chaos_trace::{
    fnv1a64, MachineMeta, SecondRow, TraceError, TraceMeta, TraceReader, TraceWriter, TRACE_VERSION,
};
use common::{generate, write_trace, SplitMix64};
use std::io::Cursor;

/// A small canonical trace exercising masks, NaNs, dedup, and a
/// partial tail block — every frame kind and strip encoding appears.
fn canonical_bytes() -> Vec<u8> {
    let meta = TraceMeta {
        workload: "fuzz".to_string(),
        run_seed: 5,
        machines: vec![
            MachineMeta::new(0, "Core2", 2),
            MachineMeta::with_masks(1, "Atom", 1, true, true, true),
            MachineMeta::new(2, "Core2", 2),
        ],
        membership: Vec::new(),
    };
    let mut w = TraceWriter::new(Vec::new(), &meta, 4).expect("writer");
    for t in 0..10u64 {
        let x = t as f64;
        let a = [x, 1e9 + x];
        let b = [if t == 3 { f64::NAN } else { -x }];
        let b_ok = [t != 3];
        let rows = [
            SecondRow::clean(&a, 100.0 + x, 99.0),
            SecondRow {
                counters: &b,
                measured_power_w: 50.0 + x,
                true_power_w: 49.0,
                counter_ok: Some(&b_ok),
                meter_ok: Some(true),
                alive: Some(t != 9),
            },
            SecondRow::clean(&a, 100.0 + x, 99.0),
        ];
        w.push_second(&rows).expect("push");
    }
    let (bytes, _) = w.finish().expect("finish");
    bytes
}

/// Opens and fully exercises a candidate byte string: every block,
/// every machine, every second, plus random seeks. Any corruption the
/// open-time validation misses must still surface as `Err` here.
fn exhaust(bytes: &[u8]) -> Result<(), TraceError> {
    let mut r = TraceReader::new(Cursor::new(bytes))?;
    for b in 0..r.blocks() {
        let _ = r.read_block(b)?;
    }
    let seconds = r.seconds();
    let machines = r.machines();
    for t in 0..seconds {
        for m in 0..machines {
            let _ = r.machine_second(m, t)?;
        }
    }
    let mut stream = r.stream();
    while stream.advance()? {
        let _ = stream.second();
    }
    Ok(())
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = canonical_bytes();
    for cut in 0..bytes.len() {
        let err = exhaust(&bytes[..cut]);
        assert!(
            err.is_err(),
            "truncation to {cut} of {} bytes decoded cleanly",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_caught() {
    // Every byte of the format is load-bearing (magics, version,
    // checksummed payloads, frame kinds, length words, the index
    // offset) — so *any* single-bit flip must be detected, either at
    // open or during the full read.
    let bytes = canonical_bytes();
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 1 << bit;
            assert!(
                exhaust(&dirty).is_err(),
                "flip of bit {bit} at byte {pos} went undetected"
            );
        }
    }
}

#[test]
fn bad_magic_and_tail_magic_are_distinguished() {
    let bytes = canonical_bytes();
    let mut bad_head = bytes.clone();
    bad_head[0] = b'X';
    assert!(matches!(
        TraceReader::new(Cursor::new(&bad_head)),
        Err(TraceError::BadMagic)
    ));
    let mut bad_tail = bytes.clone();
    let last = bad_tail.len() - 1;
    bad_tail[last] = b'X';
    assert!(matches!(
        TraceReader::new(Cursor::new(&bad_tail)),
        Err(TraceError::BadTailMagic)
    ));
}

#[test]
fn future_version_is_refused_with_the_version_it_saw() {
    let mut bytes = canonical_bytes();
    bytes[8..12].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
    match TraceReader::new(Cursor::new(&bytes)).map(|_| ()) {
        Err(TraceError::UnsupportedVersion { got }) => assert_eq!(got, TRACE_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // The meta frame starts at offset 12: [kind][len u64]. Declare an
    // absurd payload length; the reader must refuse without trying to
    // allocate it.
    let mut bytes = canonical_bytes();
    bytes[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
    match TraceReader::new(Cursor::new(&bytes)).map(|_| ()) {
        Err(TraceError::OversizedLength { declared, .. }) => assert_eq!(declared, u64::MAX),
        other => panic!("expected OversizedLength, got {other:?}"),
    }
}

#[test]
fn checksum_flip_names_the_frame() {
    // Flip a byte inside the meta payload (offset 21 = first payload
    // byte) and expect the checksum mismatch to identify the frame.
    let mut bytes = canonical_bytes();
    bytes[21] ^= 0xff;
    match TraceReader::new(Cursor::new(&bytes)).map(|_| ()) {
        Err(TraceError::ChecksumMismatch { context }) => {
            assert!(context.contains("meta"), "context was {context:?}")
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn tiny_and_empty_inputs_are_too_short() {
    for n in 0..28usize {
        let bytes = vec![0u8; n];
        assert!(
            matches!(
                TraceReader::new(Cursor::new(&bytes)),
                Err(TraceError::TooShort { .. }) | Err(TraceError::BadMagic)
            ),
            "{n}-byte input not rejected as short/bad-magic"
        );
    }
}

#[test]
fn index_offset_pointing_anywhere_stays_typed() {
    // Rewriting the trailer's index offset to every byte of the file
    // must always produce a typed error (wrong kind, bad checksum,
    // out of range) — never a panic, never a successful open with a
    // bogus index.
    let bytes = canonical_bytes();
    let off_at = bytes.len() - 16;
    for target in 0..bytes.len() as u64 {
        let mut dirty = bytes.clone();
        dirty[off_at..off_at + 8].copy_from_slice(&target.to_le_bytes());
        let r = TraceReader::new(Cursor::new(&dirty));
        match r {
            Ok(_) => {
                // Only the true index offset may open cleanly.
                let genuine = u64::from_le_bytes(bytes[off_at..off_at + 8].try_into().unwrap());
                assert_eq!(target, genuine, "bogus index offset {target} opened");
            }
            Err(_) => {}
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // 200 random byte strings of random lengths: all must fail with a
    // typed error. (A panic would abort the test binary.)
    let mut rng = SplitMix64::new(0xf022);
    for _ in 0..200 {
        let n = rng.below(4096) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        assert!(exhaust(&bytes).is_err());
    }
}

#[test]
fn garbage_with_valid_envelope_never_panics() {
    // Harder: correct magics and version, random interior.
    let mut rng = SplitMix64::new(0xbeef);
    for _ in 0..200 {
        let n = 28 + rng.below(2048) as usize;
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        bytes[..8].copy_from_slice(b"CHAOSCOL");
        bytes[8..12].copy_from_slice(&TRACE_VERSION.to_le_bytes());
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(b"CHAOSEOF");
        assert!(exhaust(&bytes).is_err());
    }
}

#[test]
fn fuzzed_mutations_of_real_traces_never_panic() {
    // Random multi-byte mutations of real generated traces: decode
    // either fails typed or succeeds; both are fine, panics are not.
    let mut rng = SplitMix64::new(42);
    for case in 0..40u64 {
        let mut grng = SplitMix64::new(case);
        let gen = generate(&mut grng);
        let bytes = write_trace(&gen);
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..10 {
            let mut dirty = bytes.clone();
            for _ in 0..1 + rng.below(8) {
                let pos = rng.below(dirty.len() as u64) as usize;
                dirty[pos] = rng.next_u64() as u8;
            }
            let _ = exhaust(&dirty);
        }
    }
}

#[test]
fn frame_checksums_match_a_reference_fnv() {
    // Cross-check the checksum primitive against the canonical file:
    // the meta frame's trailing 8 bytes must equal fnv1a64(payload).
    let bytes = canonical_bytes();
    let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
    let payload = &bytes[21..21 + len];
    let sum = u64::from_le_bytes(bytes[21 + len..29 + len].try_into().unwrap());
    assert_eq!(sum, fnv1a64(payload));
}
