//! Golden-format pin: the CHAOSCOL v1 encoding may not drift.
//!
//! A canonical trace — fixed machines, fixed values, every format
//! feature (masks, NaN payloads, signed zeros, membership churn, strip
//! dedup, a partial tail block) — is rebuilt from source and compared
//! byte-for-byte against the committed
//! `tests/golden/trace_v1.chaoscol`, and its FNV-1a64 whole-file hash
//! against a constant pinned below. Any encoder change that alters the
//! wire bytes fails here first, on purpose: bump [`TRACE_VERSION`] and
//! regenerate with `UPDATE_GOLDEN=1 cargo test -p chaos-trace` instead
//! of silently re-encoding old traces differently.
//!
//! Per the repo's golden convention (`tests/golden/README.md`), a
//! missing golden file is bootstrapped automatically on first run.

use chaos_trace::{
    fnv1a64, EventKind, MachineMeta, MemberEvent, SecondRow, TraceMeta, TraceReader, TraceWriter,
};
use std::io::Cursor;
use std::path::PathBuf;

/// Pinned FNV-1a64 of the canonical v1 file. If an intentional format
/// change lands, bump `TRACE_VERSION`, regenerate with
/// `UPDATE_GOLDEN=1`, and update this constant in the same commit.
const GOLDEN_FNV: u64 = 0xe6f6_10ae_fa2a_705d;
/// Pinned byte length of the canonical v1 file.
const GOLDEN_LEN: usize = 1600;

fn golden_path() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("crates/chaos-trace"));
    base.join("tests/golden/trace_v1.chaoscol")
}

/// Builds the canonical trace. Every literal here is part of the
/// format pin — do not "clean up" values.
fn canonical_trace() -> Vec<u8> {
    let meta = TraceMeta {
        workload: "golden-v1".to_string(),
        run_seed: 0x00c0_ffee,
        machines: vec![
            MachineMeta::new(0, "Core2", 3),
            MachineMeta::with_masks(1, "XeonSAS", 2, true, true, true),
            MachineMeta::new(2, "Core2", 3),
            MachineMeta::with_masks(7, "Atom", 1, true, false, false),
        ],
        membership: vec![
            MemberEvent {
                t: 3,
                machine_id: 7,
                kind: EventKind::Join { donor: Some(0) },
            },
            MemberEvent {
                t: 11,
                machine_id: 1,
                kind: EventKind::Leave,
            },
            MemberEvent {
                t: 13,
                machine_id: 2,
                kind: EventKind::Replace { donor: None },
            },
        ],
    };
    let mut w = TraceWriter::new(Vec::new(), &meta, 6).expect("golden writer");
    for t in 0..17u64 {
        let x = t as f64;
        // Machine 0/2 (tiled): a smooth signal, an integer ramp, and a
        // constant with a signed-zero excursion.
        let a = [40.0 + x * 0.25, x * 1000.0, if t == 5 { -0.0 } else { 1.5 }];
        // Machine 1: NaN payloads and infinities under masks.
        let b = [
            if t == 4 {
                f64::from_bits(f64::NAN.to_bits() | 0xbeef)
            } else {
                -x
            },
            if t == 9 {
                f64::INFINITY
            } else {
                2e-308 * (x + 1.0)
            },
        ];
        let b_ok = [t != 4, t != 9];
        // Machine 7: a subnormal crawl.
        let c = [f64::from_bits(t + 1)];
        let c_ok = [t % 3 != 2];
        let rows = [
            SecondRow::clean(&a, 100.0 + x, 99.5 + x),
            SecondRow {
                counters: &b,
                measured_power_w: if t == 6 { f64::NAN } else { 55.0 + x },
                true_power_w: 54.0 + x,
                counter_ok: Some(&b_ok),
                meter_ok: Some(t != 6),
                alive: Some(t < 11),
            },
            SecondRow::clean(&a, 100.0 + x, 99.5 + x),
            SecondRow {
                counters: &c,
                measured_power_w: 7.25,
                true_power_w: 7.0,
                counter_ok: Some(&c_ok),
                meter_ok: None,
                alive: None,
            },
        ];
        w.push_second(&rows).expect("golden push");
    }
    let (bytes, summary) = w.finish().expect("golden finish");
    // Structural expectations baked into the pin: 3 blocks (6+6+5),
    // machine 2 shares machine 0's frame in every block.
    assert_eq!(summary.blocks, 3);
    assert_eq!(summary.frames_shared, 3);
    bytes
}

#[test]
fn canonical_file_hash_is_pinned() {
    let bytes = canonical_trace();
    assert_eq!(
        bytes.len(),
        GOLDEN_LEN,
        "canonical trace length drifted — the wire format changed"
    );
    assert_eq!(
        fnv1a64(&bytes),
        GOLDEN_FNV,
        "canonical trace hash drifted — the wire format changed; bump \
         TRACE_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn committed_golden_matches_and_decodes() {
    let bytes = canonical_trace();
    let path = golden_path();
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    if update || !path.exists() {
        std::fs::write(&path, &bytes).expect("write golden");
        eprintln!("golden_format: wrote {}", path.display());
    }
    let committed = std::fs::read(&path).expect("read golden");
    assert_eq!(
        committed, bytes,
        "committed golden differs from the canonical encoding; if the \
         format change is intentional, bump TRACE_VERSION and rerun \
         with UPDATE_GOLDEN=1"
    );

    // The pinned file must decode — and bit-exactly.
    let mut r = TraceReader::new(Cursor::new(committed)).expect("golden open");
    assert_eq!(r.seconds(), 17);
    assert_eq!(r.machines(), 4);
    assert_eq!(r.meta().membership.len(), 3);
    let s = r.machine_second(1, 4).expect("golden seek");
    assert_eq!(
        s.counters.first().map(|v| v.to_bits()),
        Some(f64::NAN.to_bits() | 0xbeef),
        "NaN payload lost"
    );
    let s5 = r.machine_second(2, 5).expect("golden seek");
    assert_eq!(
        s5.counters.last().map(|v| v.to_bits()),
        Some((-0.0f64).to_bits()),
        "signed zero lost"
    );
}
