//! Property suite: random traces → write → read → bit-identical.
//!
//! Mirrors the `checkpoint_roundtrip` suite that pins CHAOSNAP: a
//! deterministic seed enumerates the case space (machine shapes, mask
//! profiles, membership churn, fault NaNs, partial blocks, tiled
//! duplicates), and every replay path — full-block decode, streaming,
//! and random seek — must reproduce the generator's rows bit for bit.
//! A failing seed prints itself; rerun with that seed to reproduce.

mod common;

use chaos_trace::{TraceError, TraceReader};
use common::{generate, write_trace, GeneratedTrace, SplitMix64};
use std::io::Cursor;

const CASES: u64 = 60;

fn check_roundtrip(seed: u64, gen: &GeneratedTrace) {
    let bytes = write_trace(gen);
    let mut r = TraceReader::new(Cursor::new(&bytes)).unwrap_or_else(|e| {
        panic!("seed {seed}: open failed: {e}");
    });

    assert_eq!(r.meta(), &gen.meta, "seed {seed}: meta drifted");
    assert_eq!(r.seconds(), gen.rows.len() as u64, "seed {seed}");

    // Path 1: full-block decode, every (second, machine).
    for b in 0..r.blocks() {
        let blk = r.read_block(b).unwrap_or_else(|e| {
            panic!("seed {seed}: block {b} decode failed: {e}");
        });
        for local in 0..blk.rows {
            let t = blk.start + local as u64;
            let want = &gen.rows[t as usize];
            for (m, mb) in blk.machines.iter().enumerate() {
                let w = &want[m];
                assert!(
                    w.bits_eq(
                        mb.counters_row(local).unwrap_or(&[]),
                        mb.measured(local).unwrap_or(0.0),
                        mb.truth(local).unwrap_or(0.0),
                        mb.counter_ok_row(local),
                        mb.meter_ok_at(local),
                        mb.alive_at(local),
                    ),
                    "seed {seed}: block path diverged at t={t} machine={m}"
                );
            }
        }
    }

    // Path 2: random seeks must equal the linear scan.
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let seconds = gen.rows.len() as u64;
    if seconds > 0 {
        for _ in 0..32 {
            let t = rng.below(seconds);
            let m = rng.below(gen.meta.machines.len() as u64) as usize;
            let s = r.machine_second(m, t).unwrap_or_else(|e| {
                panic!("seed {seed}: seek ({m}, {t}) failed: {e}");
            });
            let w = &gen.rows[t as usize][m];
            assert!(
                w.bits_eq(
                    &s.counters,
                    s.measured_power_w,
                    s.true_power_w,
                    s.counter_ok.as_deref(),
                    s.meter_ok,
                    s.alive,
                ),
                "seed {seed}: seek ({m}, {t}) diverged from generator"
            );
            assert_eq!(s.machine_id, gen.meta.machines[m].machine_id);
        }
    }

    // Path 3: streaming replay visits every second exactly once, in
    // order, with borrowed rows equal to the generator's.
    let mut stream = r.stream();
    let mut t = 0u64;
    while stream.advance().unwrap_or_else(|e| {
        panic!("seed {seed}: stream advance at t={t} failed: {e}");
    }) {
        let s = stream.second().unwrap_or_else(|| {
            panic!("seed {seed}: stream lost its view at t={t}");
        });
        assert_eq!(s.t, t, "seed {seed}");
        for m in 0..s.machines() {
            let mv = s.machine(m).unwrap_or_else(|| {
                panic!("seed {seed}: stream missing machine {m} at t={t}");
            });
            let w = &gen.rows[t as usize][m];
            let counter_bits_eq = w.counters.len() == mv.counters.len()
                && w.counters
                    .iter()
                    .zip(mv.counters)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                counter_bits_eq
                    && w.measured_power_w.to_bits() == mv.measured_power_w.to_bits()
                    && w.true_power_w.to_bits() == mv.true_power_w.to_bits()
                    && w.counter_ok.as_deref() == mv.counter_ok
                    && w.meter_ok.unwrap_or(true) == mv.meter_ok
                    && w.alive.unwrap_or(true) == mv.alive,
                "seed {seed}: stream diverged at t={t} machine={m}"
            );
        }
        t += 1;
    }
    assert_eq!(t, seconds, "seed {seed}: stream second count");
}

#[test]
fn random_traces_roundtrip_bit_identically() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let gen = generate(&mut rng);
        check_roundtrip(seed, &gen);
    }
}

#[test]
fn rewriting_a_readback_is_byte_identical() {
    // Write → read → rewrite must converge after one round: the format
    // has a single canonical encoding per input (deterministic strip
    // choice, deterministic dedup order).
    for seed in [3u64, 17, 41] {
        let mut rng = SplitMix64::new(seed);
        let gen = generate(&mut rng);
        let first = write_trace(&gen);
        let second = write_trace(&gen);
        assert_eq!(first, second, "seed {seed}: writer is nondeterministic");
    }
}

#[test]
fn seek_past_end_stays_typed_after_real_traffic() {
    let mut rng = SplitMix64::new(7);
    let gen = generate(&mut rng);
    let bytes = write_trace(&gen);
    let mut r = TraceReader::new(Cursor::new(&bytes)).expect("open");
    let seconds = r.seconds();
    assert!(matches!(
        r.machine_second(0, seconds),
        Err(TraceError::Shape { .. })
    ));
    let machines = r.machines();
    if seconds > 0 {
        assert!(matches!(
            r.machine_second(machines, 0),
            Err(TraceError::Shape { .. })
        ));
    }
}
