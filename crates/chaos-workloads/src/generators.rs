//! The paper's four MapReduce-style workloads, as job generators.
//!
//! Each generator reproduces the characterization in Section III-A:
//!
//! | Workload  | Paper characterization                                      |
//! |-----------|-------------------------------------------------------------|
//! | Sort      | 4 GB/machine, 100-byte records; high disk & network         |
//! | PageRank  | ClueWeb09-scale ranking; network-heavy, 800+ tasks, longest |
//! | Prime     | ~1 M primality checks per partition; CPU-bound, little net  |
//! | WordCount | 500 MB text per partition; little network or disk           |

use crate::job::{Job, Stage};
use crate::task::{TaskPhase, TaskProfile, TaskTemplate};
use chaos_sim::ResourceDemand;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Distributed sort: disk- and network-heavy.
    Sort,
    /// Iterative PageRank: network-heavy, 800+ tasks, longest runtime.
    PageRank,
    /// Primality testing: CPU-bound, negligible I/O.
    Prime,
    /// Word counting: CPU-moderate, little disk or network.
    WordCount,
}

impl Workload {
    /// All four workloads, in the paper's order.
    pub const ALL: [Workload; 4] = [
        Workload::Sort,
        Workload::PageRank,
        Workload::Prime,
        Workload::WordCount,
    ];

    /// Stable lowercase name for file paths and tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Sort => "sort",
            Workload::PageRank => "pagerank",
            Workload::Prime => "prime",
            Workload::WordCount => "wordcount",
        }
    }

    /// Builds the job for a cluster of `cluster_size` machines. Task
    /// counts scale with the cluster so per-machine work stays constant,
    /// matching the paper's heterogeneous-cluster methodology ("we scaled
    /// up the test data sets to maintain constant amounts of data and work
    /// per machine").
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn job(self, cluster_size: usize) -> Job {
        assert!(cluster_size > 0, "cluster_size must be positive");
        let n = cluster_size;
        match self {
            Workload::Sort => sort_job(n),
            Workload::PageRank => pagerank_job(n),
            Workload::Prime => prime_job(n),
            Workload::WordCount => wordcount_job(n),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn demand(
    cpu: f64,
    disk_read: f64,
    disk_write: f64,
    net_rx: f64,
    net_tx: f64,
    mem_bw: f64,
) -> ResourceDemand {
    ResourceDemand {
        cpu_cores: cpu,
        disk_read_bytes: disk_read,
        disk_write_bytes: disk_write,
        net_rx_bytes: net_rx,
        net_tx_bytes: net_tx,
        mem_bandwidth_frac: mem_bw,
        mem_committed_frac: 0.12,
        runnable_tasks: 1.0,
    }
}

/// Sort: read partitions from disk, range-shuffle over the network, merge
/// back to disk. 4 GB per machine at 100-byte records.
fn sort_job(n: usize) -> Job {
    // Map: read + partition. CPU modest, disk-read heavy.
    let map = TaskTemplate::new(
        TaskProfile::new(vec![
            TaskPhase {
                fraction: 0.7,
                demand: demand(0.55, 45e6, 2e6, 0.0, 0.0, 0.30),
            },
            TaskPhase {
                fraction: 0.3,
                demand: demand(0.40, 20e6, 12e6, 3e6, 3e6, 0.20),
            },
        ]),
        45.0,
    );
    // Shuffle: all-to-all exchange.
    let shuffle = TaskTemplate::new(
        TaskProfile::constant(demand(0.35, 4e6, 15e6, 32e6, 32e6, 0.18)),
        40.0,
    );
    // Merge: sorted runs back to disk.
    let merge = TaskTemplate::new(
        TaskProfile::new(vec![
            TaskPhase {
                fraction: 0.5,
                demand: demand(0.55, 25e6, 40e6, 0.0, 0.0, 0.30),
            },
            TaskPhase {
                fraction: 0.5,
                demand: demand(0.45, 10e6, 55e6, 0.0, 0.0, 0.22),
            },
        ]),
        50.0,
    );
    Job::new(
        "sort",
        vec![
            Stage::new("map", vec![map; 4 * n]),
            Stage::new("shuffle", vec![shuffle; 4 * n]),
            Stage::new("merge", vec![merge; 2 * n]),
        ],
    )
}

/// PageRank: iterative rank propagation over a web graph; each iteration
/// is a compute stage plus a network-heavy exchange stage. Over 800 tasks
/// on a 5-machine cluster; the longest workload with the most power
/// variation.
fn pagerank_job(n: usize) -> Job {
    let compute = TaskTemplate::new(
        TaskProfile::new(vec![
            TaskPhase {
                fraction: 0.25,
                demand: demand(0.50, 8e6, 0.0, 10e6, 2e6, 0.30),
            },
            TaskPhase {
                fraction: 0.75,
                demand: demand(0.85, 1e6, 0.0, 6e6, 6e6, 0.40),
            },
        ]),
        10.0,
    );
    let exchange = TaskTemplate::new(
        TaskProfile::constant(demand(0.30, 0.0, 3e6, 30e6, 30e6, 0.15)),
        7.0,
    );
    let iterations = 10;
    let mut stages = Vec::with_capacity(2 * iterations);
    for i in 0..iterations {
        stages.push(Stage::new(
            format!("rank-{i}"),
            vec![compute.clone(); 11 * n],
        ));
        stages.push(Stage::new(
            format!("exchange-{i}"),
            vec![exchange.clone(); 6 * n],
        ));
    }
    Job::new("pagerank", stages)
}

/// Prime: primality checks over ~1 M numbers per partition. Pure CPU with
/// a short result-emission tail.
fn prime_job(n: usize) -> Job {
    let check = TaskTemplate::new(
        TaskProfile::new(vec![
            TaskPhase {
                fraction: 0.95,
                demand: demand(0.97, 0.0, 0.0, 0.0, 0.0, 0.12),
            },
            TaskPhase {
                fraction: 0.05,
                demand: demand(0.30, 0.0, 2e6, 0.5e6, 0.5e6, 0.05),
            },
        ]),
        55.0,
    );
    Job::new("prime", vec![Stage::new("check", vec![check; 6 * n])])
}

/// WordCount: stream 500 MB of text per partition and tally words. Light
/// disk, nearly no network.
fn wordcount_job(n: usize) -> Job {
    let map = TaskTemplate::new(
        TaskProfile::constant(demand(0.80, 14e6, 0.5e6, 0.0, 0.0, 0.35)),
        35.0,
    );
    let reduce = TaskTemplate::new(
        TaskProfile::constant(demand(0.50, 1e6, 4e6, 2e6, 2e6, 0.15)),
        20.0,
    );
    Job::new(
        "wordcount",
        vec![
            Stage::new("map", vec![map; 4 * n]),
            Stage::new("reduce", vec![reduce; n]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(Workload::Sort.name(), "sort");
        assert_eq!(Workload::PageRank.to_string(), "pagerank");
        assert_eq!(Workload::ALL.len(), 4);
    }

    #[test]
    fn pagerank_has_over_800_tasks_on_5_machines() {
        let job = Workload::PageRank.job(5);
        assert!(job.total_tasks() > 800, "tasks = {}", job.total_tasks());
    }

    #[test]
    fn pagerank_has_most_serial_work() {
        for w in [Workload::Sort, Workload::Prime, Workload::WordCount] {
            assert!(
                Workload::PageRank.job(5).serial_work_s() > w.job(5).serial_work_s(),
                "{w}"
            );
        }
    }

    #[test]
    fn prime_is_cpu_dominated() {
        let job = Workload::Prime.job(5);
        for stage in &job.stages {
            for task in &stage.tasks {
                let main = &task.profile.phases()[0].demand;
                assert!(main.cpu_cores > 0.9);
                assert!(main.net_rx_bytes + main.net_tx_bytes < 1e6);
                assert!(main.disk_read_bytes + main.disk_write_bytes < 1e6);
            }
        }
    }

    #[test]
    fn sort_is_io_dominated() {
        let job = Workload::Sort.job(5);
        let mut disk_bytes = 0.0;
        let mut net_bytes = 0.0;
        for stage in &job.stages {
            for task in &stage.tasks {
                for phase in task.profile.phases() {
                    let d = &phase.demand;
                    let secs = task.duration_s * phase.fraction;
                    disk_bytes += (d.disk_read_bytes + d.disk_write_bytes) * secs;
                    net_bytes += (d.net_rx_bytes + d.net_tx_bytes) * secs;
                }
            }
        }
        assert!(disk_bytes > 50e9, "sort should move tens of GB on disk");
        assert!(net_bytes > 10e9, "sort should shuffle GBs over the net");
    }

    #[test]
    fn wordcount_has_little_network() {
        let job = Workload::WordCount.job(5);
        let map = &job.stages[0].tasks[0];
        let d = &map.profile.phases()[0].demand;
        assert_eq!(d.net_rx_bytes + d.net_tx_bytes, 0.0);
        assert!(d.cpu_cores > 0.5);
    }

    #[test]
    fn tasks_scale_with_cluster_size() {
        for w in Workload::ALL {
            let t5 = w.job(5).total_tasks();
            let t10 = w.job(10).total_tasks();
            assert_eq!(t10, 2 * t5, "{w}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cluster_rejected() {
        Workload::Sort.job(0);
    }
}
