//! Jobs and stages: the Dryad-style dataflow skeleton.

use crate::task::TaskTemplate;
use serde::{Deserialize, Serialize};

/// A stage is a set of tasks separated from the next stage by a barrier:
/// every task of stage *k* must finish before stage *k+1* may start (the
/// shuffle boundary of a MapReduce round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Human-readable stage label ("map", "shuffle", "reduce", …).
    pub name: String,
    /// Tasks of the stage, in submission order.
    pub tasks: Vec<TaskTemplate>,
}

impl Stage {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskTemplate>) -> Self {
        assert!(!tasks.is_empty(), "stage needs at least one task");
        Stage {
            name: name.into(),
            tasks,
        }
    }

    /// Number of tasks in the stage.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

/// A job is an ordered list of stages (a linear DAG, which covers the four
/// paper workloads; Dryad generality beyond that is not needed here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Workload name, for labeling traces.
    pub name: String,
    /// Stages in barrier order.
    pub stages: Vec<Stage>,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "job needs at least one stage");
        Job {
            name: name.into(),
            stages,
        }
    }

    /// Total task count across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(Stage::task_count).sum()
    }

    /// Sum of nominal task durations (serial work, seconds) — an upper
    /// bound proxy for job length used in tests.
    pub fn serial_work_s(&self) -> f64 {
        self.stages
            .iter()
            .flat_map(|s| &s.tasks)
            .map(|t| t.duration_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskProfile;
    use chaos_sim::ResourceDemand;

    fn template(d: f64) -> TaskTemplate {
        TaskTemplate::new(TaskProfile::constant(ResourceDemand::cpu_only(1.0)), d)
    }

    #[test]
    fn job_counts_tasks() {
        let job = Job::new(
            "test",
            vec![
                Stage::new("map", vec![template(10.0), template(12.0)]),
                Stage::new("reduce", vec![template(5.0)]),
            ],
        );
        assert_eq!(job.total_tasks(), 3);
        assert_eq!(job.serial_work_s(), 27.0);
        assert_eq!(job.stages[0].task_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_stage_rejected() {
        Stage::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_job_rejected() {
        Job::new("empty", vec![]);
    }
}
