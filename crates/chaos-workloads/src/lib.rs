//! MapReduce-style workload generation: the Dryad/DryadLINQ substitute.
//!
//! The CHAOS paper drives its clusters with four distributed
//! MapReduce-style workloads on Dryad — Sort, PageRank, Prime, and
//! WordCount — whose "power signatures differ greatly due to differing
//! application characteristics" (Figure 1). The models never see the
//! applications themselves, only the per-second resource activity they
//! induce on each machine, so this crate reproduces exactly that:
//!
//! * [`Job`]s are DAGs of stages with barrier dependencies; each stage
//!   holds tasks with phase-structured resource profiles ([`TaskProfile`]).
//! * A slot-based [`scheduler`] places tasks nondeterministically (seeded)
//!   across machines — the paper notes "different machines may operate on
//!   different data partitions depending on the non-deterministic task
//!   scheduler", which is why CHAOS trains and tests on separate runs.
//! * The four [`Workload`] generators match the paper's characterization:
//!   **Sort** (4 GB/machine, disk- and network-heavy), **PageRank**
//!   (800+ tasks, network-heavy, longest run, most power variation),
//!   **Prime** (CPU-bound, little traffic), **WordCount** (CPU-moderate,
//!   little disk or network traffic).
//!
//! The output is a [`DemandTrace`]: one [`chaos_sim::ResourceDemand`] per
//! machine per second, ready to feed through the machine simulator and
//! counter synthesizer.
//!
//! # Example
//!
//! ```
//! use chaos_sim::{Cluster, Platform};
//! use chaos_workloads::{simulate, SimConfig, Workload};
//!
//! let cluster = Cluster::homogeneous(Platform::Core2, 5, 1);
//! let trace = simulate(&cluster, Workload::Prime, &SimConfig::quick(), 99);
//! assert_eq!(trace.machines(), 5);
//! assert!(trace.seconds() > 30);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod generators;
pub mod job;
pub mod scheduler;
pub mod task;

pub use generators::Workload;
pub use job::{Job, Stage};
pub use scheduler::{simulate, DemandTrace, SimConfig};
pub use task::{TaskPhase, TaskProfile, TaskTemplate};
