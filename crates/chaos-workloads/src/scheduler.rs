//! Slot-based, nondeterministic task scheduler and the 1 Hz demand trace
//! it produces.
//!
//! Mirrors the behaviour the paper attributes to Dryad's scheduler: task
//! placement differs run to run ("even for the same data set, different
//! machines may operate on different data partitions depending on the
//! non-deterministic task scheduler"), task durations vary, and a stage
//! cannot start until the previous stage's barrier clears.

use crate::job::Job;
use chaos_sim::{Cluster, ResourceDemand};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Scheduler and trace-shape configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Task slots per machine, as a multiple of core count (Dryad default
    /// is ~1 vertex per core).
    pub slots_per_core: f64,
    /// Idle seconds recorded before the job starts.
    pub lead_in_s: usize,
    /// Idle seconds recorded after the job completes.
    pub lead_out_s: usize,
    /// Std-dev of task duration jitter as a fraction of nominal duration.
    pub duration_jitter: f64,
    /// Probability that a task is a straggler (runs ~2× nominal).
    pub straggler_prob: f64,
    /// Fraction of placements that ignore load and pick a random machine.
    pub random_placement_prob: f64,
    /// Hard cap on simulated seconds (safety against runaway jobs).
    pub max_seconds: usize,
}

impl SimConfig {
    /// Paper-shaped default: modest idle bookends, 15% duration jitter,
    /// occasional stragglers.
    pub fn paper() -> Self {
        SimConfig {
            slots_per_core: 1.0,
            lead_in_s: 15,
            lead_out_s: 15,
            duration_jitter: 0.15,
            straggler_prob: 0.04,
            random_placement_prob: 0.15,
            max_seconds: 100_000,
        }
    }

    /// Shorter bookends for fast tests.
    pub fn quick() -> Self {
        SimConfig {
            lead_in_s: 5,
            lead_out_s: 5,
            ..SimConfig::paper()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

/// A 1 Hz per-machine resource-demand trace for one job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandTrace {
    /// Workload name the trace came from.
    pub workload: String,
    /// `per_machine[m][t]` is machine `m`'s demand in second `t`.
    per_machine: Vec<Vec<ResourceDemand>>,
}

impl DemandTrace {
    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.per_machine.len()
    }

    /// Trace length in seconds (equal for every machine).
    pub fn seconds(&self) -> usize {
        self.per_machine.first().map_or(0, Vec::len)
    }

    /// The demand series for machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn machine(&self, m: usize) -> &[ResourceDemand] {
        &self.per_machine[m]
    }

    /// Iterates over `(machine_index, demands)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[ResourceDemand])> {
        self.per_machine
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.as_slice()))
    }
}

/// A task in flight on some machine.
struct RunningTask {
    template_idx: (usize, usize),
    elapsed_s: f64,
    duration_s: f64,
}

/// Simulates one run of `job` on `cluster`, returning the per-machine
/// 1 Hz demand trace. `seed` controls placement, duration jitter, and
/// stragglers: two runs with different seeds partition work differently,
/// exactly the property the paper's train/test split relies on.
///
/// # Panics
///
/// Panics if the cluster is empty (checked at cluster construction) or the
/// job exceeds `config.max_seconds`.
pub fn simulate(
    cluster: &Cluster,
    job: impl Into<JobSource>,
    config: &SimConfig,
    seed: u64,
) -> DemandTrace {
    let job = job.into().build(cluster.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_machines = cluster.len();
    let slots: Vec<usize> = cluster
        .machines()
        .iter()
        .map(|m| ((m.spec().cores as f64 * config.slots_per_core).round() as usize).max(1))
        .collect();

    let mut trace: Vec<Vec<ResourceDemand>> = vec![Vec::new(); n_machines];
    let mut running: Vec<Vec<RunningTask>> = (0..n_machines).map(|_| Vec::new()).collect();

    // Idle lead-in.
    for _ in 0..config.lead_in_s {
        for m in trace.iter_mut() {
            m.push(background_demand(&mut rng));
        }
    }

    for (stage_idx, stage) in job.stages.iter().enumerate() {
        // Pending queue for this stage, shuffled for placement variety.
        let mut pending: Vec<usize> = (0..stage.tasks.len()).collect();
        pending.shuffle(&mut rng);
        let mut pending = std::collections::VecDeque::from(pending);

        loop {
            // Fill free slots.
            while let Some(&task_idx) = pending.front() {
                let Some(machine) = pick_machine(&running, &slots, config, &mut rng) else {
                    break;
                };
                pending.pop_front();
                let t = &stage.tasks[task_idx];
                let jitter = 1.0 + config.duration_jitter * gauss(&mut rng);
                let straggle = if rng.gen_bool(config.straggler_prob) {
                    2.0
                } else {
                    1.0
                };
                running[machine].push(RunningTask {
                    template_idx: (stage_idx, task_idx),
                    elapsed_s: 0.0,
                    duration_s: (t.duration_s * jitter.max(0.3) * straggle).max(1.0),
                });
            }

            let any_running = running.iter().any(|r| !r.is_empty());
            if !any_running && pending.is_empty() {
                break; // barrier cleared
            }

            // Record this second's demand and advance tasks.
            for (mi, tasks) in running.iter_mut().enumerate() {
                let mut demand = background_demand(&mut rng);
                for t in tasks.iter() {
                    let progress = t.elapsed_s / t.duration_s;
                    let (si, ti) = t.template_idx;
                    let d = job.stages[si].tasks[ti].profile.demand_at(progress);
                    // Partial seconds at the end of a task scale its rates.
                    let remaining = (t.duration_s - t.elapsed_s).min(1.0);
                    demand = demand.combined(&d.scaled(remaining));
                }
                trace[mi].push(demand);
                for t in tasks.iter_mut() {
                    t.elapsed_s += 1.0;
                }
                tasks.retain(|t| t.elapsed_s < t.duration_s);
            }

            // chaos-lint: allow(R4) — trace has one entry per machine
            // and Cluster construction asserts at least one machine.
            assert!(
                trace[0].len() <= config.max_seconds,
                "job '{}' exceeded max_seconds = {}",
                job.name,
                config.max_seconds
            );
        }
    }

    // Idle lead-out.
    for _ in 0..config.lead_out_s {
        for m in trace.iter_mut() {
            m.push(background_demand(&mut rng));
        }
    }

    DemandTrace {
        workload: job.name.clone(),
        per_machine: trace,
    }
}

/// Something that can produce a [`Job`] for a cluster of a given size:
/// either a prebuilt job or a [`crate::Workload`] generator.
pub enum JobSource {
    /// An explicit job.
    Job(Job),
    /// A named workload generator.
    Workload(crate::Workload),
}

impl JobSource {
    fn build(self, cluster_size: usize) -> Job {
        match self {
            JobSource::Job(j) => j,
            JobSource::Workload(w) => w.job(cluster_size),
        }
    }
}

impl From<Job> for JobSource {
    fn from(j: Job) -> Self {
        JobSource::Job(j)
    }
}

impl From<crate::Workload> for JobSource {
    fn from(w: crate::Workload) -> Self {
        JobSource::Workload(w)
    }
}

/// Background OS activity: a trickle of CPU and occasional cache flush.
fn background_demand<R: Rng + ?Sized>(rng: &mut R) -> ResourceDemand {
    ResourceDemand {
        cpu_cores: rng.gen_range(0.005..0.04),
        disk_write_bytes: if rng.gen_bool(0.08) {
            rng.gen_range(50e3..500e3)
        } else {
            0.0
        },
        mem_committed_frac: 0.08,
        runnable_tasks: 0.0,
        ..ResourceDemand::idle()
    }
}

/// Chooses the machine for the next task: usually the least-loaded (by
/// free slots), sometimes uniformly random — Dryad-ish nondeterminism.
/// Returns `None` when every slot is busy.
fn pick_machine<R: Rng + ?Sized>(
    running: &[Vec<RunningTask>],
    slots: &[usize],
    config: &SimConfig,
    rng: &mut R,
) -> Option<usize> {
    let free: Vec<usize> = (0..running.len())
        .filter(|&m| running[m].len() < slots[m])
        .collect();
    if free.is_empty() {
        return None;
    }
    if rng.gen_bool(config.random_placement_prob) {
        return free.as_slice().choose(rng).copied();
    }
    free.iter()
        .copied()
        .min_by_key(|&m| (running[m].len() * 1000) / slots[m].max(1))
}

/// Approximate standard normal from the sum of uniforms.
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (0..6).map(|_| rng.gen_range(-1.0..1.0_f64)).sum::<f64>() / 2.0_f64.sqrt() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Stage;
    use crate::task::{TaskProfile, TaskTemplate};
    use chaos_sim::Platform;

    fn tiny_job(tasks: usize, dur: f64) -> Job {
        let t = TaskTemplate::new(TaskProfile::constant(ResourceDemand::cpu_only(1.0)), dur);
        Job::new("tiny", vec![Stage::new("only", vec![t; tasks])])
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(Platform::Core2, 4, 3)
    }

    #[test]
    fn trace_has_equal_length_rows_and_bookends() {
        let cfg = SimConfig::quick();
        let trace = simulate(&cluster(), tiny_job(8, 20.0), &cfg, 1);
        assert_eq!(trace.machines(), 4);
        let len = trace.seconds();
        for (_, row) in trace.iter() {
            assert_eq!(row.len(), len);
        }
        assert!(len >= cfg.lead_in_s + cfg.lead_out_s + 20);
        // Lead-in is idle-ish.
        assert!(trace.machine(0)[0].cpu_cores < 0.05);
    }

    #[test]
    fn different_seeds_place_differently() {
        let cfg = SimConfig::quick();
        let a = simulate(&cluster(), tiny_job(6, 30.0), &cfg, 1);
        let b = simulate(&cluster(), tiny_job(6, 30.0), &cfg, 2);
        // Busy-second signatures should differ for at least one machine.
        let busy =
            |t: &DemandTrace, m: usize| t.machine(m).iter().filter(|d| d.cpu_cores > 0.5).count();
        let diff = (0..4).any(|m| busy(&a, m) != busy(&b, m));
        assert!(diff, "seeds produced identical placements");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let cfg = SimConfig::quick();
        let a = simulate(&cluster(), tiny_job(6, 25.0), &cfg, 7);
        let b = simulate(&cluster(), tiny_job(6, 25.0), &cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn slots_bound_parallelism() {
        // 4 machines × 2 cores = 8 slots; 16 one-core tasks of 30 s must
        // take at least ~60 s of busy time.
        let cfg = SimConfig {
            duration_jitter: 0.0,
            straggler_prob: 0.0,
            ..SimConfig::quick()
        };
        let trace = simulate(&cluster(), tiny_job(16, 30.0), &cfg, 5);
        let busy_len = trace.seconds() - cfg.lead_in_s - cfg.lead_out_s;
        assert!(busy_len >= 58, "busy_len = {busy_len}");
        // And no machine ever demands more than its slots.
        for (_, row) in trace.iter() {
            for d in row {
                assert!(d.cpu_cores <= 2.1, "demand {d:?}");
            }
        }
    }

    #[test]
    fn stages_respect_barriers() {
        // Stage 1: pure CPU; stage 2: pure network. A second with both
        // high CPU and high net would indicate a barrier violation.
        let cpu = TaskTemplate::new(TaskProfile::constant(ResourceDemand::cpu_only(1.0)), 20.0);
        let net = TaskTemplate::new(
            TaskProfile::constant(ResourceDemand {
                net_rx_bytes: 50e6,
                ..ResourceDemand::idle()
            }),
            20.0,
        );
        let job = Job::new(
            "barrier",
            vec![
                Stage::new("cpu", vec![cpu; 4]),
                Stage::new("net", vec![net; 4]),
            ],
        );
        let cfg = SimConfig {
            straggler_prob: 0.0,
            ..SimConfig::quick()
        };
        let trace = simulate(&cluster(), job, &cfg, 11);
        for (_, row) in trace.iter() {
            for d in row {
                assert!(
                    !(d.cpu_cores > 0.5 && d.net_rx_bytes > 1e6),
                    "cpu and net stages overlapped: {d:?}"
                );
            }
        }
    }

    #[test]
    fn stragglers_extend_runtime() {
        let base = SimConfig {
            duration_jitter: 0.0,
            straggler_prob: 0.0,
            ..SimConfig::quick()
        };
        let with_stragglers = SimConfig {
            straggler_prob: 1.0,
            ..base
        };
        let a = simulate(&cluster(), tiny_job(8, 20.0), &base, 3);
        let b = simulate(&cluster(), tiny_job(8, 20.0), &with_stragglers, 3);
        assert!(b.seconds() > a.seconds());
    }

    #[test]
    #[should_panic(expected = "exceeded max_seconds")]
    fn runaway_jobs_are_capped() {
        let cfg = SimConfig {
            max_seconds: 10,
            ..SimConfig::quick()
        };
        simulate(&cluster(), tiny_job(4, 100.0), &cfg, 1);
    }
}
