//! Task templates and phase-structured resource profiles.

use chaos_sim::ResourceDemand;
use serde::{Deserialize, Serialize};

/// One phase of a task's life: a fraction of its duration with a constant
/// per-second resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskPhase {
    /// Fraction of the task duration this phase occupies (phases must sum
    /// to 1).
    pub fraction: f64,
    /// Resource demand per second while in this phase.
    pub demand: ResourceDemand,
}

/// A task's resource behaviour over its lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    phases: Vec<TaskPhase>,
}

impl TaskProfile {
    /// Builds a profile from phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the fractions do not sum to ≈1.
    pub fn new(phases: Vec<TaskPhase>) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        let total: f64 = phases.iter().map(|p| p.fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "phase fractions sum to {total}, expected 1"
        );
        TaskProfile { phases }
    }

    /// A single-phase profile with constant demand.
    pub fn constant(demand: ResourceDemand) -> Self {
        TaskProfile {
            phases: vec![TaskPhase {
                fraction: 1.0,
                demand,
            }],
        }
    }

    /// The phases.
    pub fn phases(&self) -> &[TaskPhase] {
        &self.phases
    }

    /// Demand at a progress point `p ∈ [0, 1)` through the task.
    pub fn demand_at(&self, progress: f64) -> ResourceDemand {
        let p = progress.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for phase in &self.phases {
            acc += phase.fraction;
            if p < acc {
                return phase.demand;
            }
        }
        // chaos-lint: allow(R4) — profiles are built from non-empty
        // phase literals; TaskProfile::new asserts this.
        self.phases.last().expect("non-empty phases").demand
    }
}

/// A schedulable task: profile plus nominal duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTemplate {
    /// The task's resource profile.
    pub profile: TaskProfile,
    /// Nominal duration in seconds (the scheduler adds run-to-run jitter
    /// and stragglers).
    pub duration_s: f64,
}

impl TaskTemplate {
    /// Creates a template.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn new(profile: TaskProfile, duration_s: f64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        TaskTemplate {
            profile,
            duration_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: f64) -> ResourceDemand {
        ResourceDemand::cpu_only(cpu)
    }

    #[test]
    fn constant_profile_is_uniform() {
        let p = TaskProfile::constant(demand(0.9));
        assert_eq!(p.demand_at(0.0).cpu_cores, 0.9);
        assert_eq!(p.demand_at(0.5).cpu_cores, 0.9);
        assert_eq!(p.demand_at(1.0).cpu_cores, 0.9);
    }

    #[test]
    fn phased_profile_switches_at_boundaries() {
        let p = TaskProfile::new(vec![
            TaskPhase {
                fraction: 0.25,
                demand: demand(0.2),
            },
            TaskPhase {
                fraction: 0.75,
                demand: demand(1.0),
            },
        ]);
        assert_eq!(p.demand_at(0.1).cpu_cores, 0.2);
        assert_eq!(p.demand_at(0.3).cpu_cores, 1.0);
        assert_eq!(p.demand_at(0.99).cpu_cores, 1.0);
    }

    #[test]
    fn demand_clamps_out_of_range_progress() {
        let p = TaskProfile::constant(demand(0.5));
        assert_eq!(p.demand_at(-1.0).cpu_cores, 0.5);
        assert_eq!(p.demand_at(2.0).cpu_cores, 0.5);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_fractions_rejected() {
        TaskProfile::new(vec![TaskPhase {
            fraction: 0.5,
            demand: demand(1.0),
        }]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        TaskProfile::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        TaskTemplate::new(TaskProfile::constant(demand(1.0)), 0.0);
    }
}
