//! Property-based tests for the workload scheduler.

use chaos_sim::{Cluster, Platform};
use chaos_workloads::{simulate, SimConfig, Workload};
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Sort),
        Just(Workload::Prime),
        Just(Workload::WordCount),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Demand traces are rectangular, bounded by machine capacity, and
    /// bookended with idle.
    #[test]
    fn trace_shape_invariants(w in any_workload(), seed in 0u64..50, n in 2usize..5) {
        let cluster = Cluster::homogeneous(Platform::Core2, n, 3);
        let cfg = SimConfig::quick();
        let trace = simulate(&cluster, w, &cfg, seed);
        prop_assert_eq!(trace.machines(), n);
        let len = trace.seconds();
        prop_assert!(len >= cfg.lead_in_s + cfg.lead_out_s);
        let slots = cluster.machines()[0].spec().cores as f64;
        for (_, row) in trace.iter() {
            prop_assert_eq!(row.len(), len);
            for d in row {
                prop_assert!(d.cpu_cores >= 0.0);
                // Slot cap + background trickle.
                prop_assert!(d.cpu_cores <= slots + 0.1, "cpu {}", d.cpu_cores);
                prop_assert!(d.disk_read_bytes >= 0.0 && d.net_rx_bytes >= 0.0);
            }
        }
        // Lead-in seconds are idle-ish on every machine.
        for (_, row) in trace.iter() {
            for d in &row[..cfg.lead_in_s.min(row.len())] {
                prop_assert!(d.cpu_cores < 0.1);
            }
        }
    }

    /// Reproducibility: the same seed yields the same trace; different
    /// seeds yield different schedules for multi-task jobs.
    #[test]
    fn determinism_by_seed(w in any_workload(), seed in 0u64..50) {
        let cluster = Cluster::homogeneous(Platform::Atom, 3, 1);
        let cfg = SimConfig::quick();
        let a = simulate(&cluster, w, &cfg, seed);
        let b = simulate(&cluster, w, &cfg, seed);
        prop_assert_eq!(a, b);
    }

    /// All serial work is eventually scheduled: total busy core-seconds
    /// across the cluster approximate the job's serial work.
    #[test]
    fn work_conservation(seed in 0u64..30) {
        let cluster = Cluster::homogeneous(Platform::Core2, 4, 2);
        let cfg = SimConfig {
            duration_jitter: 0.0,
            straggler_prob: 0.0,
            ..SimConfig::quick()
        };
        let job = Workload::Prime.job(cluster.len());
        let serial = job.serial_work_s();
        let trace = simulate(&cluster, job, &cfg, seed);
        let busy: f64 = trace
            .iter()
            .flat_map(|(_, row)| row.iter().map(|d| d.cpu_cores))
            .sum();
        // Prime tasks demand ~0.97 cores for 95% of their life and ~0.30
        // for the tail; allow a generous envelope around that.
        prop_assert!(busy > 0.5 * serial, "busy {busy} vs serial {serial}");
        prop_assert!(busy < 1.5 * serial, "busy {busy} vs serial {serial}");
    }
}
