//! Fault-tolerant online estimation: streaming a *faulted* live run
//! through the robust fallback chain, one second at a time.
//!
//! ```text
//! cargo run --release --example fault_tolerant_estimator
//! ```
//!
//! A deployed agent's counter stream is not clean: counters drop out,
//! some freeze, the meter blinks, and mid-run the machine's collector
//! dies outright. This example trains the usual quadratic model, wraps
//! it in the Full → Reduced → Strawman → Constant chain, and streams a
//! heavily faulted run through it. The chain answers every second with
//! a finite wattage and reports which tier produced each answer.

use chaos_core::features::FeatureSpec;
use chaos_core::robust::{strawman_position, EstimateTier, RobustConfig, RobustEstimator};
use chaos_counters::{collect_run, CounterCatalog, DropoutMode, FaultPlan};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::Opteron;
    let cluster = Cluster::homogeneous(platform, 4, 11);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let sim = SimConfig::paper();

    // Train the chain offline on clean runs.
    let train: Vec<_> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Sort, &sim, 400 + r))
        .collect::<Result<_, _>>()?;
    let spec = FeatureSpec::general(&catalog);
    let config = RobustConfig {
        fit: RobustConfig::paper()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::paper()
    };
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let estimator = RobustEstimator::fit(
        &train,
        &spec,
        strawman_position(&spec, &catalog),
        idle,
        config,
    )?;
    println!(
        "trained fallback chain: {} features, idle floor {:.1} W",
        estimator.spec().width(),
        estimator.idle_power_w()
    );

    // A rough day in production: dropout with stale repeats, a stuck
    // counter here and there, meter outages, glitches, and one machine's
    // collector guaranteed to die mid-run.
    let live = collect_run(&cluster, &catalog, Workload::Sort, &sim, 909)?;
    let plan = FaultPlan::new(42)
        .with_counter_dropout(0.15)
        .with_dropout_mode(DropoutMode::Stale)
        .with_stuck_counters(0.1)
        .with_meter_outages(0.005, 15)
        .with_glitches(0.02, 0.5)
        .with_crashes(0.25);
    let faulted = plan.apply(&live);

    // Stream machine 0's agent view second by second.
    let agent = &faulted.machines[0];
    let clean = &live.machines[0];
    let mut imputer = estimator.new_imputer();
    let mut tier_counts: BTreeMap<EstimateTier, usize> = BTreeMap::new();
    let mut sum_err = 0.0;
    let mut answered = 0usize;
    for t in 0..agent.seconds() {
        let e = estimator.estimate_second(agent, t, &mut imputer);
        assert!(e.power_w.is_finite(), "the chain never emits NaN");
        *tier_counts.entry(e.tier).or_insert(0) += 1;
        // Score against the clean meter — the stream's own meter may be
        // down or glitched.
        let truth = clean.measured_power_w[t];
        if e.tier != EstimateTier::Constant {
            sum_err += (e.power_w - truth).abs();
            answered += 1;
        }
        if t % 60 == 0 {
            println!(
                "t={t:>4}s  {:>6.1} W  (truth {truth:>6.1} W)  tier={:<8} imputed={}",
                e.power_w,
                e.tier.label(),
                e.imputed
            );
        }
    }

    let total = agent.seconds();
    println!("\n{total} samples streamed through the chain; per-tier coverage:");
    for tier in [
        EstimateTier::Full,
        EstimateTier::Reduced,
        EstimateTier::Strawman,
        EstimateTier::Constant,
    ] {
        let n = tier_counts.get(&tier).copied().unwrap_or(0);
        println!(
            "  {:<8} {:>5} samples ({:.1}%)",
            tier.label(),
            n,
            100.0 * n as f64 / total as f64
        );
    }
    println!(
        "reduced models refit on demand: {}",
        estimator.reduced_models_fitted()
    );
    if answered > 0 {
        println!(
            "mean |err| above the floor: {:.2} W",
            sum_err / answered as f64
        );
    }

    // The whole cluster, with one collector dead partway through.
    let ce = estimator.estimate_cluster(&faulted);
    let coverage = ce.coverage();
    let finite = ce.power_w.iter().all(|p| p.is_finite());
    println!(
        "\ncluster estimate: {} seconds, all finite: {finite}, coverage {:.1}%",
        ce.power_w.len(),
        100.0 * coverage
    );
    assert!(finite, "cluster estimates must always be finite");
    assert!(
        coverage > 0.3,
        "chain should answer above the floor for a sizable share: {coverage}"
    );
    Ok(())
}
