//! Heterogeneous fleet composition: per-platform models, summed (Eq. 5).
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```
//!
//! The paper composes cluster models for a 10-machine Core2 + Opteron
//! cluster "essentially for free": train one machine model per platform,
//! apply each machine's own platform model, and sum. This example builds
//! that fleet, runs Sort across it, and prints per-platform and fleet
//! power attribution — the kind of breakdown a capacity planner wants.

use chaos_core::compose::ClusterPowerModel;
use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, collect_run_mixed, CounterCatalog};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = SimConfig::paper();
    let platforms = [Platform::Core2, Platform::Opteron];

    // Train one machine model per platform on its homogeneous cluster.
    let mut fleet_model = ClusterPowerModel::new();
    for platform in platforms {
        println!("training {platform} machine model...");
        let homogeneous = Cluster::homogeneous(platform, 5, 7);
        let catalog = CounterCatalog::for_platform(&platform.spec());
        // Train across workloads, as the paper does — a single-workload
        // model generalizes worse to machines it has never seen.
        let mut train = Vec::new();
        for (wi, w) in [Workload::Sort, Workload::Prime, Workload::WordCount]
            .iter()
            .enumerate()
        {
            for r in 0..2 {
                train.push(collect_run(
                    &homogeneous,
                    &catalog,
                    *w,
                    &sim,
                    (10 + wi * 7 + r) as u64,
                )?);
            }
        }
        let spec = FeatureSpec::general(&catalog);
        let ds = pooled_dataset(&train, &spec)?.thinned(3_000);
        let opts = FitOptions::paper().with_freq_column(spec.freq_column(&catalog));
        let model = FittedModel::fit(ModelTechnique::Quadratic, &ds.x, &ds.y, &opts)?;
        fleet_model.insert(platform, spec, model);
    }

    // Deploy on the mixed fleet.
    let fleet = Cluster::heterogeneous(&[(Platform::Core2, 5), (Platform::Opteron, 5)], 99);
    println!(
        "\nfleet: {} machines ({:?}), idle {:.0} W, max {:.0} W",
        fleet.len(),
        fleet.platforms(),
        fleet.idle_power(),
        fleet.max_power()
    );
    let run = collect_run_mixed(&fleet, Workload::Sort, &sim, 555);
    let actual = run.cluster_measured_power();
    let predicted = fleet_model.predict_cluster(&run)?;

    // Attribution: predicted energy per platform over the run.
    for platform in platforms {
        let mut joules = 0.0;
        for m in run.machines.iter().filter(|m| m.platform == platform) {
            joules += fleet_model.predict_machine(m)?.iter().sum::<f64>();
        }
        println!(
            "  {platform:8} predicted energy: {:.1} kJ over {} s",
            joules / 1e3,
            run.seconds()
        );
    }

    let rmse = chaos_stats::metrics::rmse(&predicted, &actual)?;
    let dre = rmse / (fleet.max_power() - fleet.idle_power());
    println!("\nfleet-level accuracy on an unseen run:");
    println!(
        "  rMSE {rmse:.1} W, DRE {:.1}% (paper worst case: 12%)",
        100.0 * dre
    );
    Ok(())
}
