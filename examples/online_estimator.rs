//! Online power estimation: streaming counter samples through a trained
//! model one second at a time, as a deployed CHAOS agent would.
//!
//! ```text
//! cargo run --release --example online_estimator
//! ```
//!
//! The paper's framework targets online use with "less than 1% CPU
//! utilization" overhead. This example simulates the deployment loop —
//! read counters, predict, compare to the meter — and measures the time
//! the prediction path takes per sample.

use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::XeonSas;
    let cluster = Cluster::homogeneous(platform, 5, 3);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let sim = SimConfig::paper();

    // Train offline.
    let train: Vec<_> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::WordCount, &sim, 50 + r))
        .collect::<Result<_, _>>()?;
    let spec = FeatureSpec::general(&catalog);
    let ds = pooled_dataset(&train, &spec)?.thinned(2_000);
    let opts = FitOptions::paper().with_freq_column(spec.freq_column(&catalog));
    let model = FittedModel::fit(ModelTechnique::Quadratic, &ds.x, &ds.y, &opts)?;
    println!(
        "trained quadratic model: {} features, {} basis terms",
        model.width(),
        model.n_parameters()
    );

    // Stream a live run, one second at a time, machine 0's agent view.
    let live = collect_run(&cluster, &catalog, Workload::WordCount, &sim, 777)?;
    let agent = &live.machines[0];
    let mut worst_err = 0.0_f64;
    let mut sum_err = 0.0;
    // chaos-lint: allow(R2) — demo-only throughput display; the clock
    // never touches the estimates themselves.
    let t0 = Instant::now();
    let mut row = vec![0.0; spec.width()];
    for t in 0..agent.seconds() {
        for (k, &c) in spec.counters.iter().enumerate() {
            row[k] = agent.counters[t][c];
        }
        let predicted = model.predict_row(&row)?;
        let metered = agent.measured_power_w[t];
        let err = (predicted - metered).abs();
        worst_err = worst_err.max(err);
        sum_err += err;
        if t % 60 == 0 {
            println!(
                "t={t:>4}s  predicted {predicted:>6.1} W   metered {metered:>6.1} W   |err| {err:>5.2} W"
            );
        }
    }
    let elapsed = t0.elapsed();
    let per_sample = elapsed.as_secs_f64() / agent.seconds() as f64;

    println!("\n{} samples streamed", agent.seconds());
    println!("mean |err|  {:.2} W", sum_err / agent.seconds() as f64);
    println!("worst |err| {worst_err:.2} W");
    println!(
        "prediction cost: {:.1} µs/sample = {:.6}% of a 1 Hz budget (paper: <1% CPU)",
        per_sample * 1e6,
        100.0 * per_sample
    );
    assert!(
        per_sample < 0.01,
        "online prediction must stay under 1% of the sampling budget"
    );
    Ok(())
}
