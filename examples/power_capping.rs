//! Model-based power capping: the paper's motivating online use case.
//!
//! ```text
//! cargo run --release --example power_capping
//! ```
//!
//! A data-center operator wants to keep a 5-machine Opteron cluster under
//! a power budget without per-machine meters. We train a CHAOS model
//! offline, then monitor a live workload through OS counters only,
//! raising a capping signal whenever *predicted* power crosses the
//! budget. The example reports how well the model-based cap agrees with
//! what a real meter would have done — including the guard band the
//! paper says inaccurate models force you to widen.

use chaos_core::compose::ClusterPowerModel;
use chaos_core::dataset::pooled_dataset;
use chaos_core::features::FeatureSpec;
use chaos_core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos_counters::{collect_run, CounterCatalog};
use chaos_sim::{Cluster, Platform};
use chaos_workloads::{SimConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::Opteron;
    let cluster = Cluster::homogeneous(platform, 5, 42);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let sim = SimConfig::paper();

    // Offline: train on two instrumented runs (the paper notes training
    // can be done on a small collection of machines, then meters removed).
    println!("training CHAOS model on 2 instrumented PageRank runs...");
    let train: Vec<_> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::PageRank, &sim, 100 + r))
        .collect::<Result<_, _>>()?;
    let spec = FeatureSpec::general(&catalog);
    let ds = pooled_dataset(&train, &spec)?.thinned(2_500);
    let opts = FitOptions::paper().with_freq_column(spec.freq_column(&catalog));
    let model = FittedModel::fit(ModelTechnique::Quadratic, &ds.x, &ds.y, &opts)?;
    let chaos = ClusterPowerModel::homogeneous(platform, spec, model);

    // Online: a new run, meters now hypothetical. Budget at 92% of max.
    let budget = 0.92 * cluster.max_power();
    println!(
        "monitoring a new run against a {:.0} W budget (cluster max {:.0} W)...\n",
        budget,
        cluster.max_power()
    );
    let live = collect_run(&cluster, &catalog, Workload::PageRank, &sim, 999)?;
    let predicted = chaos.predict_cluster(&live)?;
    let actual = live.cluster_measured_power();

    let mut agree = 0usize;
    let mut false_caps = 0usize;
    let mut missed_caps = 0usize;
    for (p, a) in predicted.iter().zip(&actual) {
        match (p > &budget, a > &budget) {
            (true, true) | (false, false) => agree += 1,
            (true, false) => false_caps += 1,
            (false, true) => missed_caps += 1,
        }
    }
    let n = predicted.len();
    println!("seconds observed:        {n}");
    println!(
        "cap decisions agree:     {agree} ({:.1}%)",
        100.0 * agree as f64 / n as f64
    );
    println!("false caps (lost perf):  {false_caps}");
    println!("missed caps (risk):      {missed_caps}");

    // Guard band: how far must the budget be lowered so the model never
    // misses a real overage? That margin is the cost of model error.
    let mut guard = 0.0_f64;
    for (p, a) in predicted.iter().zip(&actual) {
        if *a > budget {
            guard = guard.max(budget - p.min(budget));
        }
    }
    println!(
        "\nrequired guard band: {guard:.1} W ({:.1}% of the dynamic range)",
        100.0 * guard / (cluster.max_power() - cluster.idle_power())
    );
    println!("the paper: \"inaccurate models would result in more conservative power caps\"");
    Ok(())
}
