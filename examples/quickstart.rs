//! Quickstart: build a CHAOS power model for one cluster, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a 5-machine Core 2 Duo cluster running the Prime workload,
//! runs Algorithm 1 feature selection, fits the paper's quadratic model,
//! and reports cross-validated accuracy in the paper's metrics.

use chaos_core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos_core::models::ModelTechnique;
use chaos_sim::Platform;
use chaos_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate the cluster and collect counters + power at 1 Hz.
    //    `quick()` keeps the example fast; `paper()` reproduces the
    //    full-scale evaluation.
    let mut config = ExperimentConfig::quick();
    config.machines = 5;
    config.workloads = vec![Workload::Prime];
    config.runs_per_workload = 3;
    println!("collecting traces for a 5-machine Core2 cluster...");
    let experiment = ClusterExperiment::collect(Platform::Core2, &config);
    println!(
        "  {} runs, {} seconds total",
        experiment.traces().len(),
        experiment
            .traces()
            .iter()
            .map(|t| t.seconds())
            .sum::<usize>()
    );

    // 2. Algorithm 1: reduce ~250 candidate counters to a cluster set.
    let selection = experiment.select_features()?;
    println!(
        "\nselected {} of {} counters (threshold {:.0}):",
        selection.selected.len(),
        experiment.catalog.len(),
        selection.threshold
    );
    for &j in &selection.selected {
        println!("  - {}", experiment.catalog.def(j).name);
    }

    // 3. Fit and evaluate the paper's strongest model family: quadratic
    //    (MARS degree 2) on the cluster feature set, cross-validated over
    //    separate application runs.
    let spec = selection.feature_spec();
    let outcome = experiment.evaluate(Workload::Prime, &spec, ModelTechnique::Quadratic)?;
    println!(
        "\nquadratic model, {}-fold run-level cross-validation:",
        outcome.folds.len()
    );
    println!("  DRE                   {:.1}%", 100.0 * outcome.avg_dre());
    println!("  rMSE                  {:.2} W", outcome.avg_rmse());
    println!(
        "  % error               {:.1}%",
        100.0 * outcome.avg_percent_error()
    );
    println!(
        "  median relative error {:.1}%",
        100.0 * outcome.avg_median_relative_error()
    );

    // 4. Compare against the baseline the paper starts from.
    let linear = experiment.evaluate(Workload::Prime, &spec, ModelTechnique::Linear)?;
    println!(
        "\nlinear baseline DRE: {:.1}%  (paper: nonlinear models win once DVFS is in play)",
        100.0 * linear.avg_dre()
    );
    Ok(())
}
