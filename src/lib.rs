//! Umbrella crate re-exporting the CHAOS workspace public API.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use chaos_core as core;
pub use chaos_counters as counters;
pub use chaos_mars as mars;
pub use chaos_obs as obs;
pub use chaos_serve as serve;
pub use chaos_sim as sim;
pub use chaos_stats as stats;
pub use chaos_stream as stream;
pub use chaos_trace as trace;
pub use chaos_workloads as workloads;
