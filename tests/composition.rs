//! Cluster-model composition tests (Eq. 5), including the heterogeneous
//! cluster of Section V-B, at integration scale.

use chaos::core::compose::ClusterPowerModel;
use chaos::core::dataset::pooled_dataset;
use chaos::core::features::FeatureSpec;
use chaos::core::models::{FitOptions, FittedModel, ModelTechnique};
use chaos::counters::{collect_run, collect_run_mixed, CounterCatalog, RunTrace};
use chaos::sim::{Cluster, Platform};
use chaos::workloads::{SimConfig, Workload};

fn train_platform_model(
    platform: Platform,
    workloads: &[Workload],
    seed: u64,
) -> (FeatureSpec, FittedModel) {
    let cluster = Cluster::homogeneous(platform, 3, seed);
    let catalog = CounterCatalog::for_platform(&platform.spec());
    let mut train: Vec<RunTrace> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        for r in 0..2 {
            train.push(
                collect_run(
                    &cluster,
                    &catalog,
                    *w,
                    &SimConfig::quick(),
                    seed * 100 + (wi * 10 + r) as u64,
                )
                .unwrap(),
            );
        }
    }
    let spec = FeatureSpec::general(&catalog);
    let ds = pooled_dataset(&train, &spec).unwrap().thinned(2_000);
    let opts = FitOptions::fast().with_freq_column(spec.freq_column(&catalog));
    let model = FittedModel::fit(ModelTechnique::Quadratic, &ds.x, &ds.y, &opts).unwrap();
    (spec, model)
}

#[test]
fn heterogeneous_cluster_stays_within_paper_bound() {
    let workloads = [Workload::Prime, Workload::WordCount];
    let mut composed = ClusterPowerModel::new();
    for platform in [Platform::Core2, Platform::Opteron] {
        let (spec, model) = train_platform_model(platform, &workloads, 11);
        composed.insert(platform, spec, model);
    }

    let hetero = Cluster::heterogeneous(&[(Platform::Core2, 3), (Platform::Opteron, 3)], 55);
    let range = hetero.max_power() - hetero.idle_power();
    for (i, w) in workloads.iter().enumerate() {
        let run = collect_run_mixed(&hetero, *w, &SimConfig::quick(), 900 + i as u64);
        let actual = run.cluster_measured_power();
        let pred = composed.predict_cluster(&run).unwrap();
        let rmse = chaos::stats::metrics::rmse(&pred, &actual).unwrap();
        let dre = rmse / range;
        assert!(dre <= 0.12, "{w}: heterogeneous DRE {dre} over paper bound");
    }
}

#[test]
fn composition_is_exactly_additive() {
    let (spec, model) = train_platform_model(Platform::Atom, &[Workload::Prime], 3);
    let composed = ClusterPowerModel::homogeneous(Platform::Atom, spec, model);
    let cluster = Cluster::homogeneous(Platform::Atom, 4, 8);
    let catalog = CounterCatalog::for_platform(&Platform::Atom.spec());
    let run = collect_run(&cluster, &catalog, Workload::Prime, &SimConfig::quick(), 77).unwrap();

    let total = composed.predict_cluster(&run).unwrap();
    let mut manual = vec![0.0; run.seconds()];
    for m in &run.machines {
        for (o, v) in manual.iter_mut().zip(composed.predict_machine(m).unwrap()) {
            *o += v;
        }
    }
    for (a, b) in total.iter().zip(&manual) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn model_trained_on_one_cluster_transfers_to_unseen_machines() {
    // Pooling across machines is what makes the "abstract machine" model
    // deployable on machines outside the training set.
    let (spec, model) =
        train_platform_model(Platform::Core2, &[Workload::Prime, Workload::WordCount], 21);
    let composed = ClusterPowerModel::homogeneous(Platform::Core2, spec, model);

    // A different cluster seed → different machine variations and meters.
    let unseen = Cluster::homogeneous(Platform::Core2, 4, 9999);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let run = collect_run(&unseen, &catalog, Workload::Prime, &SimConfig::quick(), 31).unwrap();
    let pred = composed.predict_cluster(&run).unwrap();
    let actual = run.cluster_measured_power();
    let rmse = chaos::stats::metrics::rmse(&pred, &actual).unwrap();
    let dre = rmse / (unseen.max_power() - unseen.idle_power());
    assert!(dre < 0.15, "transfer DRE {dre}");
}
