//! End-to-end pipeline tests: simulate → collect → select → fit →
//! evaluate, across platforms, through the umbrella `chaos` crate.

use chaos::core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos::core::features::FeatureSpec;
use chaos::core::models::ModelTechnique;
use chaos::sim::Platform;
use chaos::workloads::Workload;

fn quick_experiment(platform: Platform) -> ClusterExperiment {
    ClusterExperiment::collect(platform, &ExperimentConfig::quick())
}

#[test]
fn full_pipeline_on_a_dvfs_platform() {
    let exp = quick_experiment(Platform::Core2);
    let selection = exp.select_features().expect("selection succeeds");
    assert!(
        (2..=30).contains(&selection.selected.len()),
        "selected {} features",
        selection.selected.len()
    );
    let spec = selection.feature_spec();
    let outcome = exp
        .evaluate(Workload::Prime, &spec, ModelTechnique::Quadratic)
        .expect("evaluation succeeds");
    assert!(
        outcome.avg_dre() < 0.15,
        "quadratic DRE {} too high even at quick scale",
        outcome.avg_dre()
    );
    assert!(outcome.avg_rmse() > 0.0);
}

#[test]
fn full_pipeline_on_the_non_dvfs_atom() {
    let exp = quick_experiment(Platform::Atom);
    let selection = exp.select_features().expect("selection succeeds");
    // The Atom has a fixed frequency: the frequency counters are
    // constants and must never be selected.
    for &j in &selection.selected {
        let name = &exp.catalog.def(j).name;
        assert!(
            !name.contains("Processor Frequency"),
            "fixed-frequency counter selected on Atom: {name}"
        );
    }
    let outcome = exp
        .evaluate(
            Workload::WordCount,
            &selection.feature_spec(),
            ModelTechnique::Linear,
        )
        .expect("evaluation succeeds");
    assert!(outcome.avg_dre() < 0.20, "Atom DRE {}", outcome.avg_dre());
}

#[test]
fn general_feature_set_works_across_platforms() {
    // The general set must exist in every catalog and support every
    // technique on every platform.
    for platform in [Platform::Core2, Platform::Opteron] {
        let exp = quick_experiment(platform);
        let spec = FeatureSpec::general(&exp.catalog);
        assert_eq!(spec.width(), 8);
        let outcome = exp
            .evaluate(Workload::Prime, &spec, ModelTechnique::Switching)
            .expect("switching on general set");
        assert!(
            outcome.avg_dre() < 0.2,
            "{platform}: general-set DRE {}",
            outcome.avg_dre()
        );
    }
}

#[test]
fn dre_is_stricter_than_percent_error_on_small_ranges() {
    // Table III's argument, end to end: on the Atom, DRE is several times
    // the rMSE/mean-power metric because the dynamic range is tiny.
    let exp = quick_experiment(Platform::Atom);
    let spec = FeatureSpec::general(&exp.catalog);
    let outcome = exp
        .evaluate(Workload::Prime, &spec, ModelTechnique::Linear)
        .expect("evaluation succeeds");
    assert!(
        outcome.avg_dre() > 2.0 * outcome.avg_percent_error(),
        "DRE {} should dwarf %err {} on the Atom",
        outcome.avg_dre(),
        outcome.avg_percent_error()
    );
}

#[test]
fn selection_is_deterministic() {
    let a = quick_experiment(Platform::Atom)
        .select_features()
        .expect("selection succeeds");
    let b = quick_experiment(Platform::Atom)
        .select_features()
        .expect("selection succeeds");
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.threshold, b.threshold);
}
