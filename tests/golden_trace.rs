//! Golden-trace regression harness.
//!
//! Each test runs a fixed-seed pipeline (the quick-scale equivalents of
//! the paper's Table II feature selection and Table IV sweep), reduces
//! the result to a JSON fingerprint, and compares it against the golden
//! copy committed under `tests/golden/`. Numeric leaves must match
//! within `TOLERANCE`; every other leaf must match exactly.
//!
//! Maintenance protocol (also in `tests/golden/README.md`):
//!
//! - A missing golden file is bootstrapped from the current run and the
//!   test passes — commit the generated file.
//! - After an *intentional* numeric change, regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test golden_trace` and commit the
//!   diff. A golden diff in review is the signal that model output
//!   changed; never regenerate to silence an unexplained mismatch.
//!
//! Each fingerprint is also computed twice in-process and compared for
//! exact equality, so a nondeterministic pipeline fails even on a
//! bootstrap run.

use chaos::core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos::core::models::ModelTechnique;
use chaos::core::robust::{strawman_position, RobustConfig, RobustEstimator};
use chaos::core::sweep::sweep_grid;
use chaos::core::FeatureSpec;
use chaos::counters::{collect_run, ChurnPlan, CounterCatalog, FaultPlan, RunTrace};
use chaos::sim::{Cluster, Platform};
use chaos::stats::exec::ExecPolicy;
use chaos::stream::{DriftConfig, StreamConfig, StreamEngine, SupervisorConfig};
use chaos::workloads::{SimConfig, Workload};
use serde_json::{json, Value};
use std::path::PathBuf;

/// Relative tolerance for numeric leaves. The pipelines are bit-level
/// deterministic on one build; the slack only absorbs libm differences
/// across platforms and toolchains.
const TOLERANCE: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn relative_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Recursively compares a fingerprint against its golden copy,
/// collecting every mismatching path.
fn diff_values(path: &str, golden: &Value, actual: &Value, out: &mut Vec<String>) {
    match (golden, actual) {
        (Value::Number(g), Value::Number(a)) => {
            let (g, a) = (g.as_f64().unwrap(), a.as_f64().unwrap());
            if relative_gap(g, a) > TOLERANCE {
                out.push(format!("{path}: golden {g} vs actual {a}"));
            }
        }
        (Value::Array(g), Value::Array(a)) => {
            if g.len() != a.len() {
                out.push(format!("{path}: length {} vs {}", g.len(), a.len()));
                return;
            }
            for (i, (gv, av)) in g.iter().zip(a).enumerate() {
                diff_values(&format!("{path}[{i}]"), gv, av, out);
            }
        }
        (Value::Object(g), Value::Object(a)) => {
            for key in g.keys().chain(a.keys().filter(|k| !g.contains_key(*k))) {
                match (g.get(key), a.get(key)) {
                    (Some(gv), Some(av)) => {
                        diff_values(&format!("{path}.{key}"), gv, av, out);
                    }
                    (gv, _) => out.push(format!(
                        "{path}.{key}: {} in golden only",
                        if gv.is_some() { "present" } else { "missing" }
                    )),
                }
            }
        }
        (g, a) => {
            if g != a {
                out.push(format!("{path}: golden {g} vs actual {a}"));
            }
        }
    }
}

/// Compares `fingerprint` to `tests/golden/<name>.json`, bootstrapping
/// or regenerating the golden file when asked to.
fn check_golden(name: &str, fingerprint: &Value) {
    let path = golden_dir().join(format!("{name}.json"));
    let update = std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1");
    if update || !path.exists() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        let mut body = serde_json::to_string_pretty(fingerprint).expect("serialize fingerprint");
        body.push('\n');
        std::fs::write(&path, body).expect("write golden file");
        eprintln!(
            "{} golden trace {}; commit the file",
            if update { "updated" } else { "bootstrapped" },
            path.display()
        );
        return;
    }
    let body = std::fs::read_to_string(&path).expect("read golden file");
    let golden: Value = serde_json::from_str(&body).expect("golden file is valid JSON");
    let mut mismatches = Vec::new();
    diff_values(name, &golden, fingerprint, &mut mismatches);
    assert!(
        mismatches.is_empty(),
        "golden trace {name} diverged ({} mismatches):\n  {}\n\
         If the change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_trace` and commit the diff.",
        mismatches.len(),
        mismatches.join("\n  ")
    );
}

/// Table II equivalent: Algorithm 1 feature selection on a fixed-seed
/// quick-scale Opteron cluster.
fn selection_fingerprint() -> Value {
    let exp = ClusterExperiment::collect(Platform::Opteron, &ExperimentConfig::quick());
    let selection = exp.select_features().expect("selection succeeds");
    let names: Vec<&str> = selection
        .selected
        .iter()
        .map(|&j| exp.catalog.def(j).name.as_str())
        .collect();
    json!({
        "schema": "chaos-golden-selection/1",
        "platform": "Opteron",
        "selected": names,
        "threshold": selection.threshold,
        "survivors_step1": selection.survivors_step1,
        "survivors_step2": selection.survivors_step2,
        "models_built": selection.models_built,
        "histogram_head": selection.histogram.iter().take(8).map(|(j, w)| {
            json!({"counter": exp.catalog.def(*j).name, "weight": w})
        }).collect::<Vec<_>>(),
    })
}

/// Table IV equivalent: the technique × feature-set sweep on one
/// workload of a fixed-seed quick-scale Core2 cluster, fanned out in
/// parallel so the golden trace also pins policy invariance.
fn sweep_fingerprint() -> Value {
    let cfg = ExperimentConfig::quick().with_exec(ExecPolicy::Parallel { threads: 4 });
    let exp = ClusterExperiment::collect(Platform::Core2, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let cells = sweep_grid(
        exp.traces_for(Workload::Prime),
        &exp.cluster,
        &sets,
        &ModelTechnique::ALL,
        &cfg.eval,
    )
    .expect("sweep succeeds");
    json!({
        "schema": "chaos-golden-sweep/1",
        "platform": "Core2",
        "workload": "prime",
        "cells": cells.iter().map(|c| json!({
            "label": c.label(),
            "avg_dre": c.outcome.avg_dre(),
            "avg_rmse": c.outcome.avg_rmse(),
            "folds": c.outcome.folds.len(),
            "models_built": c.outcome.models_built,
        })).collect::<Vec<_>>(),
    })
}

/// Streaming engine equivalent of the offline golden traces: a
/// fixed-seed replay — with a mid-run meter shift so drift-triggered
/// refits fire — reduced to an FNV-1a hash over the exact bit pattern
/// of every per-second cluster prediction. The hash leaf is a string,
/// so it is compared *exactly*: any change to the streaming numerics,
/// refit scheduling, or composition order shows up here.
fn streaming_fingerprint() -> Value {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 96);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let sim = SimConfig::quick();
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &sim, 900 + r).unwrap())
        .collect();
    let mut test = collect_run(&cluster, &catalog, Workload::Prime, &sim, 990).unwrap();
    let start = 40.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }

    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).expect("offline fit");

    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_exec(ExecPolicy::Parallel { threads: 4 });
    let n = cluster.machines().len() as f64;
    let mut eng = StreamEngine::new(
        est,
        cluster.machines().len(),
        cluster.max_power() / n,
        cluster.idle_power() / n,
        0.05,
        config,
    )
    .expect("engine");
    let outputs = eng.replay(&test).expect("replay");

    // FNV-1a over the little-endian bit pattern of every per-second
    // cluster prediction: a bit-exact sequence digest.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for out in &outputs {
        for byte in out.cluster_power_w.to_bits().to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mean_power = outputs.iter().map(|o| o.cluster_power_w).sum::<f64>() / outputs.len() as f64;
    json!({
        "schema": "chaos-golden-streaming/1",
        "platform": "Core2",
        "workload": "prime",
        "seconds": outputs.len(),
        "prediction_hash": format!("{h:016x}"),
        "mean_cluster_power_w": mean_power,
        "refit_counts": eng.refit_counts(),
        "adapted_samples": outputs
            .iter()
            .flat_map(|o| &o.machines)
            .filter(|s| s.adapted)
            .count(),
    })
}

#[test]
fn selection_matches_golden_trace() {
    let first = selection_fingerprint();
    let second = selection_fingerprint();
    assert_eq!(first, second, "selection fingerprint is nondeterministic");
    check_golden("selection_opteron_quick", &first);
}

#[test]
fn sweep_matches_golden_trace() {
    let first = sweep_fingerprint();
    let second = sweep_fingerprint();
    assert_eq!(first, second, "sweep fingerprint is nondeterministic");
    check_golden("sweep_core2_prime_quick", &first);
}

#[test]
fn streaming_matches_golden_trace() {
    let first = streaming_fingerprint();
    let second = streaming_fingerprint();
    assert_eq!(first, second, "streaming fingerprint is nondeterministic");
    check_golden("streaming_core2_quick", &first);
}

/// ISSUE 6: kill-and-resume recovery under faults and fleet churn. The
/// engine is killed mid-run, restored from its snapshot, and resumed;
/// the fingerprint hashes the *stitched* prediction stream, and the test
/// additionally proves it equals the uninterrupted stream bit-for-bit
/// before hashing — so the golden file pins the recovery path itself.
fn recovery_fingerprint() -> Value {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 96);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let sim = SimConfig::quick();
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &sim, 900 + r).unwrap())
        .collect();
    let mut test = collect_run(&cluster, &catalog, Workload::Prime, &sim, 991).unwrap();
    let start = 40.min(test.seconds());
    for m in &mut test.machines {
        for t in start..m.measured_power_w.len() {
            m.measured_power_w[t] *= 1.3;
        }
    }
    let test = FaultPlan::new(17)
        .with_counter_dropout(0.1)
        .with_churn(
            ChurnPlan::new(5)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&test);

    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        ..RobustConfig::fast()
    };
    let est = RobustEstimator::fit(&train, &spec, cpu, idle, cfg).expect("offline fit");

    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_supervise(SupervisorConfig::fast())
    .with_exec(ExecPolicy::Parallel { threads: 4 });
    let n = cluster.machines().len() as f64;
    let engine = || {
        StreamEngine::new(
            est.clone(),
            cluster.machines().len(),
            cluster.max_power() / n,
            cluster.idle_power() / n,
            0.05,
            config.clone(),
        )
        .expect("engine")
    };

    let mut uninterrupted = engine();
    let full = uninterrupted.replay(&test).expect("uninterrupted replay");

    let kill_t = test.seconds() / 2;
    let mut first = engine();
    let mut outputs = Vec::with_capacity(test.seconds());
    for t in 0..kill_t {
        outputs.push(first.push_second(&test, t).expect("pre-kill second"));
    }
    let snapshot = first.snapshot();
    drop(first);
    let mut restored = StreamEngine::restore(est.clone(), &snapshot).expect("snapshot restores");
    outputs.extend(restored.resume(&test).expect("resumed replay"));

    assert_eq!(full.len(), outputs.len(), "stitched stream length");
    for (a, b) in full.iter().zip(&outputs) {
        assert_eq!(
            a.cluster_power_w.to_bits(),
            b.cluster_power_w.to_bits(),
            "kill/restore diverged from uninterrupted run at second {}",
            a.t
        );
    }

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for out in &outputs {
        for byte in out.cluster_power_w.to_bits().to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mean_power = outputs.iter().map(|o| o.cluster_power_w).sum::<f64>() / outputs.len() as f64;
    json!({
        "schema": "chaos-golden-streaming-recovery/1",
        "platform": "Core2",
        "workload": "prime",
        "seconds": outputs.len(),
        "kill_t": kill_t,
        "snapshot_bytes": snapshot.len(),
        "prediction_hash": format!("{h:016x}"),
        "mean_cluster_power_w": mean_power,
        "membership_events": test.membership.len(),
        "refit_counts": restored.refit_counts(),
        "supervision_counts": restored.supervision_counts(),
        "min_active_machines": outputs.iter().map(|o| o.active_machines).min(),
    })
}

#[test]
fn streaming_recovery_matches_golden_trace() {
    let first = recovery_fingerprint();
    let second = recovery_fingerprint();
    assert_eq!(first, second, "recovery fingerprint is nondeterministic");
    check_golden("streaming_recovery_core2_quick", &first);
}

/// ISSUE 7: the serving path. A small fleet server ingests a
/// fixed-seed sample stream through the full wire pipeline (JSON in,
/// JSON out) and the fingerprint hashes every response body — serial
/// and 4-way-sharded servers must hash identically (the wire-level
/// determinism contract), and the hash itself pins the protocol's byte
/// output across builds.
fn serve_fingerprint() -> Value {
    use chaos::serve::{Request, Server, WireSample, WireTick};
    use chaos::sim::FleetSpec;

    let spec = FleetSpec::new(Platform::Core2, 3, 42);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let run = collect_run(
        &spec.cluster(),
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        777,
    )
    .expect("collect serving trace");
    let seconds = 40.min(run.seconds());
    let ticks: Vec<WireTick> = (0..seconds)
        .map(|t| WireTick {
            t: t as u64,
            machines: run
                .machines
                .iter()
                .map(|m| WireSample {
                    machine_id: m.machine_id,
                    counters: m.counters[t].clone(),
                    power_w: Some(m.measured_power_w[t]),
                    counter_ok: None,
                    meter_ok: true,
                    alive: true,
                })
                .collect(),
        })
        .collect();

    let drive = |exec: ExecPolicy| -> (u64, f64, u64) {
        let opts = chaos::serve::bootstrap::ServeOptions::quick(spec);
        let mut server = Server::new(opts, exec, None, 0).expect("boot server");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut hash_body = |body: &[u8]| {
            for &byte in body {
                h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let mut last_power = 0.0;
        for tick in &ticks {
            let body = serde_json::to_vec(&json!({
                "ticks": [{
                    "t": tick.t,
                    "machines": tick.machines.iter().map(|s| json!({
                        "machine_id": s.machine_id,
                        "counters": s.counters,
                        "power_w": s.power_w,
                    })).collect::<Vec<_>>(),
                }],
            }))
            .expect("encode tick");
            let resp = server.handle(&Request {
                method: "POST".to_string(),
                path: "/v1/ingest".to_string(),
                body,
                close: false,
            });
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            let v: Value = serde_json::from_slice(&resp.body).expect("ingest JSON");
            last_power = v
                .get("results")
                .and_then(Value::as_array)
                .and_then(|r| r.first())
                .and_then(|r| r.get("cluster_power_w"))
                .and_then(Value::as_f64)
                .expect("cluster power");
            hash_body(&resp.body);
        }
        for path in ["/v1/power", "/v1/machines", "/v1/stats", "/v1/healthz"] {
            let resp = server.handle(&Request {
                method: "GET".to_string(),
                path: path.to_string(),
                body: Vec::new(),
                close: false,
            });
            assert_eq!(resp.status, 200);
            hash_body(&resp.body);
        }
        (h, last_power, server.t_next())
    };

    let (serial_hash, serial_power, t_next) = drive(ExecPolicy::Serial);
    let (sharded_hash, _, _) = drive(ExecPolicy::Parallel { threads: 4 });
    assert_eq!(
        serial_hash, sharded_hash,
        "serve responses diverged between serial and 4-thread sharding"
    );

    json!({
        "schema": "chaos-golden-serve/1",
        "platform": "Core2",
        "machines": 3,
        "seconds": seconds,
        "t_next": t_next,
        "response_hash": format!("{serial_hash:016x}"),
        "last_cluster_power_w": serial_power,
    })
}

#[test]
fn serve_matches_golden_trace() {
    let first = serve_fingerprint();
    let second = serve_fingerprint();
    assert_eq!(first, second, "serve fingerprint is nondeterministic");
    check_golden("serve_core2_quick", &first);
}
