//! Golden pin for the CHAOSCOL on-disk trace format (ISSUE 8).
//!
//! The other golden traces pin pipeline *outputs*; this one pins the
//! *byte layout* of the trace store itself. A fixed-seed faulted run —
//! counter dropout, meter outages, glitches, crashes, and fleet churn,
//! so every optional column and the membership log are exercised — is
//! encoded to CHAOSCOL and compared byte-for-byte against the committed
//! copy at `tests/golden/trace_core2_quick.chaoscol`.
//!
//! If this test fails, the file format changed. That is only legal
//! alongside a version bump in `chaos_trace::TRACE_VERSION` and
//! decode support for the old version; regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test golden_trace_store` and commit
//! the diff as the review artifact. Never regenerate to silence a
//! mismatch you cannot explain — readers in the field hold files with
//! the old bytes.

use chaos::counters::{
    collect_run, export_trace, import_trace, ChurnPlan, CounterCatalog, FaultPlan, RunTrace,
};
use chaos::sim::{Cluster, Platform};
use chaos::workloads::{SimConfig, Workload};
use std::io::Cursor;
use std::path::PathBuf;

/// Block length chosen below the run length so the golden file contains
/// several blocks and a multi-entry footer index.
const BLOCK_SECONDS: usize = 16;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_core2_quick.chaoscol")
}

/// The canonical run: quick-scale Core2 cluster under the full fault
/// vocabulary plus churn, so masks, non-finite values, and membership
/// events (with and without donors) all reach the encoder.
fn canonical_run() -> RunTrace {
    let cluster = Cluster::homogeneous(Platform::Core2, 3, 96);
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let run = collect_run(
        &cluster,
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        2600,
    )
    .expect("collect canonical run");
    FaultPlan::new(17)
        .with_counter_dropout(0.1)
        .with_meter_outages(0.05, 3)
        .with_glitches(0.02, 4.0)
        .with_crashes(0.02)
        .with_churn(
            ChurnPlan::new(5)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&run)
}

fn encode(run: &RunTrace) -> Vec<u8> {
    let (bytes, _) = export_trace(run, Vec::new(), BLOCK_SECONDS).expect("encode canonical run");
    bytes
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn canonical_trace_file_is_pinned_and_decodes() {
    let run = canonical_run();
    let first = encode(&run);
    let second = encode(&run);
    assert_eq!(first, second, "trace encoding is nondeterministic");

    let path = golden_path();
    let update = std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1");
    let golden = if update || !path.exists() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("golden dir");
        std::fs::write(&path, &first).expect("write golden trace file");
        eprintln!(
            "{} golden trace file {}; commit the file",
            if update { "updated" } else { "bootstrapped" },
            path.display()
        );
        first.clone()
    } else {
        std::fs::read(&path).expect("read golden trace file")
    };

    assert_eq!(
        (golden.len(), fnv1a64(&golden)),
        (first.len(), fnv1a64(&first)),
        "CHAOSCOL byte layout diverged from tests/golden/trace_core2_quick.chaoscol \
         (len/fnv shown). A format change requires a TRACE_VERSION bump and decode \
         support for the old version; if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_trace_store` and commit the diff."
    );
    assert_eq!(golden, first, "same length and hash but bytes differ");

    // The committed bytes must decode to the exact canonical run —
    // every f64 bit, every mask, every membership event and donor.
    let back = import_trace(Cursor::new(golden)).expect("golden file decodes");
    assert_eq!(
        back, run,
        "golden file does not decode to the canonical run"
    );
    assert!(
        !run.membership.is_empty(),
        "canonical run exercises no membership events; the pin lost coverage"
    );
}
