//! Kernel-identity harness: the raw-speed kernels must be *bit-identical*
//! to their scalar references, not merely close.
//!
//! Two families are pinned here:
//!
//! * **SoA batch prediction** — [`chaos_stats::batch::CoefBlock`] scoring a
//!   whole fleet with one column-major dot-product loop must reproduce the
//!   per-machine scalar zip-dot bit for bit, including NaN and subnormal
//!   coefficients, and for every thread count the engine might run under.
//! * **Blocked Gram accumulation** — the cache-tiled
//!   [`chaos_stats::gram::GramCache`] must reproduce the naive row-at-a-time
//!   reference at *every* tile size, because tiling is only legal here when
//!   it preserves the exact left-to-right reduction order.
//!
//! Everything is deterministic (no `rand`): fleets come from a fixed
//! sine-hash sequence, so a failure is a reproducible counterexample.

use chaos_stats::batch::CoefBlock;
use chaos_stats::gram::GramCache;
use chaos_stats::{ExecPolicy, Matrix};

/// Deterministic pseudo-random double in [-0.5, 0.5).
fn det(i: usize) -> f64 {
    ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
}

/// The scalar reference the engine's per-machine path computes: start at
/// 0.0, add `c[f] * x[f]` in feature order.
fn scalar_dot(coefs: &[f64], row: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (c, x) in coefs.iter().zip(row) {
        acc += c * x;
    }
    acc
}

/// Builds a (coefs, rows) fleet of `m` machines with `k` features from the
/// deterministic stream, with an optional per-value mutator for injecting
/// special values.
fn build_fleet(
    m: usize,
    k: usize,
    salt: usize,
    mutate: impl Fn(usize, f64) -> f64,
) -> (CoefBlock, CoefBlock, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut coefs = CoefBlock::new(k);
    let mut rows = CoefBlock::new(k);
    let mut coef_vecs = Vec::with_capacity(m);
    let mut row_vecs = Vec::with_capacity(m);
    for j in 0..m {
        let c: Vec<f64> = (0..k)
            .map(|f| mutate(j * k + f, 10.0 * det(salt + j * k + f)))
            .collect();
        let r: Vec<f64> = (0..k)
            .map(|f| mutate(j * k + f + 1, 4.0 * det(salt + 7919 + j * k + f)))
            .collect();
        coefs.push(&c).unwrap();
        rows.push(&r).unwrap();
        coef_vecs.push(c);
        row_vecs.push(r);
    }
    coefs.seal();
    rows.seal();
    (coefs, rows, coef_vecs, row_vecs)
}

fn assert_bitwise_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: machine {j}: batch {g:?} != scalar {w:?}"
        );
    }
}

#[test]
fn batch_predict_matches_scalar_across_fleet_shapes() {
    // Shapes cover degenerate (1 machine, 1 feature), odd, and
    // larger-than-typical fleets.
    for &(m, k) in &[(1usize, 1usize), (3, 5), (17, 4), (64, 9), (257, 13)] {
        let (coefs, rows, coef_vecs, row_vecs) = build_fleet(m, k, m * 31 + k, |_, v| v);
        let want: Vec<f64> = coef_vecs
            .iter()
            .zip(&row_vecs)
            .map(|(c, r)| scalar_dot(c, r))
            .collect();
        let mut out = vec![f64::NAN; m];
        coefs.predict_into(&rows, &mut out).unwrap();
        assert_bitwise_eq(&out, &want, &format!("fleet {m}x{k}"));
    }
}

#[test]
fn batch_predict_matches_scalar_with_nan_and_subnormal_coefficients() {
    // Sprinkle NaN, subnormals, infinities, and signed zeros through the
    // coefficient stream; the batch kernel must propagate every one of
    // them exactly as the scalar loop does (including NaN payload bits
    // produced by the same operations in the same order).
    let specials = [
        f64::NAN,
        f64::MIN_POSITIVE / 2.0, // subnormal
        -f64::MIN_POSITIVE / 4.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        0.0,
    ];
    let mutate = |i: usize, v: f64| {
        if i % 11 == 3 {
            specials[i % specials.len()]
        } else {
            v
        }
    };
    let (coefs, rows, coef_vecs, row_vecs) = build_fleet(41, 7, 1234, mutate);
    let want: Vec<f64> = coef_vecs
        .iter()
        .zip(&row_vecs)
        .map(|(c, r)| scalar_dot(c, r))
        .collect();
    let mut out = vec![0.0; 41];
    coefs.predict_into(&rows, &mut out).unwrap();
    assert_bitwise_eq(&out, &want, "special-value fleet");
    // Sanity: the case actually exercised non-finite arithmetic.
    assert!(
        want.iter().any(|v| v.is_nan()),
        "test data never produced a NaN — mutator broken"
    );
}

#[test]
fn batch_predict_is_bit_identical_across_thread_counts() {
    let (coefs, rows, _, _) = build_fleet(129, 6, 777, |i, v| {
        if i % 29 == 5 {
            f64::NAN
        } else if i % 23 == 7 {
            f64::MIN_POSITIVE / 8.0
        } else {
            v
        }
    });
    let mut serial = vec![0.0; 129];
    coefs.predict_into(&rows, &mut serial).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let policy = ExecPolicy::Parallel { threads };
        let mut out = vec![f64::NAN; 129];
        coefs.predict_into_exec(&rows, &mut out, &policy).unwrap();
        assert_bitwise_eq(&out, &serial, &format!("threads={threads}"));
    }
}

/// Deterministic design matrix + response for the Gram tests.
fn gram_inputs(n: usize, p: usize, salt: usize) -> (Matrix, Vec<f64>) {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..p).map(|j| 6.0 * det(salt + i * p + j)).collect())
        .collect();
    let y: Vec<f64> = (0..n).map(|i| 100.0 * det(salt + 31337 + i)).collect();
    (Matrix::from_rows(&rows).unwrap(), y)
}

#[test]
fn blocked_gram_matches_reference_at_every_tile_size() {
    for &(n, p) in &[(5usize, 2usize), (63, 7), (200, 11)] {
        let (x, y) = gram_inputs(n, p, n * 13 + p);
        let reference = GramCache::new_reference(&x, &y).unwrap();
        let (rg, rxty, ryty) = reference.products();
        // Tile sizes: degenerate (1), odd, prime, the default, and one
        // larger than any input (a single tile).
        for &tile in &[1usize, 2, 3, 7, 64, 1000] {
            let blocked = GramCache::new_with_tile(&x, &y, tile).unwrap();
            let (bg, bxty, byty) = blocked.products();
            let ctx = format!("n={n} p={p} tile={tile}");
            assert_bitwise_eq(bg, rg, &format!("{ctx}: gram"));
            assert_bitwise_eq(bxty, rxty, &format!("{ctx}: xty"));
            assert_eq!(byty.to_bits(), ryty.to_bits(), "{ctx}: yty");
        }
    }
}

#[test]
fn default_gram_constructor_is_the_blocked_kernel() {
    let (x, y) = gram_inputs(97, 5, 4242);
    let default = GramCache::new(&x, &y).unwrap();
    let reference = GramCache::new_reference(&x, &y).unwrap();
    let (dg, dxty, dyty) = default.products();
    let (rg, rxty, ryty) = reference.products();
    assert_bitwise_eq(dg, rg, "default vs reference: gram");
    assert_bitwise_eq(dxty, rxty, "default vs reference: xty");
    assert_eq!(dyty.to_bits(), ryty.to_bits(), "default vs reference: yty");
}
