//! Integration-scale checks of the paper's qualitative claims — the
//! full-scale versions live in the experiment binaries
//! (`cargo run -p chaos-bench --bin ...`).

use chaos::core::experiment::{ClusterExperiment, ExperimentConfig};
use chaos::core::models::ModelTechnique;
use chaos::core::sweep::best_cell;
use chaos::sim::{Machine, Platform};
use chaos::workloads::Workload;

#[test]
fn simulated_platforms_hit_table_i_power_ranges() {
    for platform in Platform::ALL {
        let m = Machine::nominal(platform, 0);
        let (lo, hi) = platform.spec().power_range_w;
        assert!((m.idle_power() - lo).abs() < 1e-6, "{platform} idle");
        assert!((m.max_power() - hi).abs() < 1e-6, "{platform} max");
    }
}

#[test]
fn best_models_beat_the_twelve_percent_bound_at_quick_scale() {
    let cfg = ExperimentConfig::quick();
    let exp = ClusterExperiment::collect(Platform::Core2, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    for workload in [Workload::Prime, Workload::WordCount] {
        let cells = exp.sweep(workload, &sets).expect("sweep succeeds");
        let best = best_cell(&cells).expect("cells nonempty");
        assert!(
            best.outcome.avg_dre() < 0.12,
            "{workload}: best DRE {}",
            best.outcome.avg_dre()
        );
    }
}

#[test]
fn feature_sets_beat_cpu_only_for_io_workloads() {
    // Figure 3's direction at integration scale: richer feature sets beat
    // the CPU-only strawman for a non-trivial workload, fixed technique.
    let mut cfg = ExperimentConfig::quick();
    cfg.workloads = vec![Workload::Sort, Workload::Prime];
    let exp = ClusterExperiment::collect(Platform::Opteron, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let cells = exp.sweep(Workload::Sort, &sets).expect("sweep succeeds");
    let dre = |t: ModelTechnique, f: &str| {
        cells
            .iter()
            .find(|c| c.technique == t && c.feature_label == f)
            .map(|c| c.outcome.avg_dre())
    };
    let (Some(lu), Some(lc)) = (
        dre(ModelTechnique::Linear, "U"),
        dre(ModelTechnique::Linear, "C"),
    ) else {
        panic!("expected LU and LC cells");
    };
    assert!(
        lc < lu,
        "cluster features ({lc}) should beat CPU-only ({lu}) on Sort"
    );
}

#[test]
fn sweep_grid_skips_single_feature_quadratic_and_switching() {
    let cfg = ExperimentConfig::quick();
    let exp = ClusterExperiment::collect(Platform::Atom, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let cells = exp.sweep(Workload::Prime, &sets).expect("sweep succeeds");
    for c in &cells {
        if c.feature_label == "U" {
            assert!(
                !c.technique.requires_multiple_features(),
                "{} must not run on CPU-only features",
                c.technique
            );
        }
    }
}

#[test]
fn model_count_accounting_reaches_paper_scale() {
    // ">1200 models per cluster" at paper scale; at quick scale the same
    // accounting must still count every lasso, stepwise round, and CV fit.
    let cfg = ExperimentConfig::quick();
    let exp = ClusterExperiment::collect(Platform::Core2, &cfg);
    let selection = exp.select_features().expect("selection succeeds");
    let sets = exp.standard_feature_sets(&selection);
    let mut models = selection.models_built;
    for workload in [Workload::Prime, Workload::WordCount] {
        let cells = exp.sweep(workload, &sets).expect("sweep succeeds");
        models += chaos::core::sweep::models_built(&cells);
    }
    assert!(models > 50, "counted only {models} models at quick scale");
}
