//! ISSUE 8 end-to-end bit-identity: estimating or streaming from a
//! CHAOSCOL trace file must be indistinguishable — to the bit — from
//! working over the same run in memory.
//!
//! One fixed-seed faulted + churned run is exported to disk, then
//! replayed through every consumption path:
//!
//! - `RobustEstimator::estimate_cluster` (in-memory baseline) versus
//!   `estimate_source` over a [`MemorySource`] (default and deliberately
//!   misaligned chunk sizes) and a [`DiskSource`];
//! - the disk path under serial and 2/4/8-thread execution policies;
//! - the disk path with observability off, at summary, and at full;
//! - `StreamEngine::replay` versus `StreamEngine::replay_source` from
//!   disk, refits and membership churn included.
//!
//! Every comparison is on `f64::to_bits`, not tolerances: the trace
//! store's contract is that it stores *the* bits, and the estimator's
//! contract is that chunking, threading, and observability never touch
//! arithmetic order.

use chaos::core::robust::{strawman_position, ClusterEstimate, RobustConfig, RobustEstimator};
use chaos::core::FeatureSpec;
use chaos::counters::{
    collect_run, export_trace_path, ChurnPlan, CounterCatalog, DiskSource, FaultPlan, MemorySource,
    RunTrace,
};
use chaos::obs::{set_level, ObsLevel};
use chaos::sim::{Cluster, Platform};
use chaos::stats::exec::ExecPolicy;
use chaos::stream::{DriftConfig, StreamConfig, StreamEngine};
use chaos::workloads::{SimConfig, Workload};
use std::path::PathBuf;

const BLOCK_SECONDS: usize = 16;

fn cluster() -> Cluster {
    Cluster::homogeneous(Platform::Core2, 3, 96)
}

/// The replayed run: full fault vocabulary plus churn, so imputation,
/// tier demotion, and membership handling are all live in the replay.
fn test_run() -> RunTrace {
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let run = collect_run(
        &cluster(),
        &catalog,
        Workload::Prime,
        &SimConfig::quick(),
        995,
    )
    .expect("collect test run");
    FaultPlan::new(23)
        .with_counter_dropout(0.1)
        .with_meter_outages(0.05, 3)
        .with_glitches(0.02, 4.0)
        .with_crashes(0.02)
        .with_churn(
            ChurnPlan::new(9)
                .with_leave_rejoin(1)
                .with_late_joins(1)
                .with_replaces(1),
        )
        .apply(&run)
}

fn fit_estimator(exec: ExecPolicy) -> RobustEstimator {
    let cluster = cluster();
    let catalog = CounterCatalog::for_platform(&Platform::Core2.spec());
    let sim = SimConfig::quick();
    let train: Vec<RunTrace> = (0..2)
        .map(|r| collect_run(&cluster, &catalog, Workload::Prime, &sim, 930 + r).unwrap())
        .collect();
    let spec = FeatureSpec::general(&catalog);
    let cpu = strawman_position(&spec, &catalog);
    let idle = cluster.idle_power() / cluster.machines().len() as f64;
    let cfg = RobustConfig {
        fit: RobustConfig::fast()
            .fit
            .with_freq_column(spec.freq_column(&catalog)),
        exec,
        ..RobustConfig::fast()
    };
    RobustEstimator::fit(&train, &spec, cpu, idle, cfg).expect("offline fit")
}

/// Writes the run to a scratch CHAOSCOL file unique to `tag`.
fn export_scratch(run: &RunTrace, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chaos_replay_identity_{}_{tag}.chaoscol",
        std::process::id()
    ));
    export_trace_path(run, &path, BLOCK_SECONDS).expect("export scratch trace");
    path
}

/// Bit-level equality over every field of a [`ClusterEstimate`].
fn assert_estimates_identical(label: &str, a: &ClusterEstimate, b: &ClusterEstimate) {
    assert_eq!(a.power_w.len(), b.power_w.len(), "{label}: length");
    for (t, (x, y)) in a.power_w.iter().zip(&b.power_w).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: power diverged at second {t} ({x} vs {y})"
        );
    }
    assert_eq!(a.worst_tier, b.worst_tier, "{label}: worst tier");
    assert_eq!(a.tier_counts, b.tier_counts, "{label}: tier counts");
}

#[test]
fn memory_and_disk_sources_match_the_in_memory_estimate() {
    let run = test_run();
    let est = fit_estimator(ExecPolicy::Serial);
    let base = est.estimate_cluster(&run);

    let mem = est
        .estimate_source(&mut MemorySource::new(&run))
        .expect("memory source estimate");
    assert_estimates_identical("memory source (default chunks)", &base, &mem);

    // A chunk size that divides neither the run length nor the disk
    // block length, so every boundary case of the lag-row contract runs.
    let mem7 = est
        .estimate_source(&mut MemorySource::with_chunk_seconds(&run, 7))
        .expect("memory source estimate (7s chunks)");
    assert_estimates_identical("memory source (7s chunks)", &base, &mem7);

    let path = export_scratch(&run, "sources");
    let disk = est
        .estimate_source(&mut DiskSource::open_path(&path).expect("open trace"))
        .expect("disk source estimate");
    std::fs::remove_file(&path).expect("remove scratch trace");
    assert_estimates_identical("disk source", &base, &disk);
}

#[test]
fn thread_count_never_changes_the_disk_replay() {
    let run = test_run();
    let path = export_scratch(&run, "threads");
    let estimate = |exec: ExecPolicy| {
        fit_estimator(exec)
            .estimate_source(&mut DiskSource::open_path(&path).expect("open trace"))
            .expect("disk source estimate")
    };
    let serial = estimate(ExecPolicy::Serial);
    for threads in [2, 4, 8] {
        let parallel = estimate(ExecPolicy::Parallel { threads });
        assert_estimates_identical(&format!("{threads} threads vs serial"), &serial, &parallel);
    }
    std::fs::remove_file(&path).expect("remove scratch trace");
}

#[test]
fn observability_level_never_changes_the_disk_replay() {
    let run = test_run();
    let est = fit_estimator(ExecPolicy::Serial);
    let path = export_scratch(&run, "obs");
    let mut estimates = Vec::new();
    // Levels are compared pairwise below; other tests in this binary may
    // run concurrently, but their assertions are level-independent (that
    // is exactly the property under test).
    for level in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Full] {
        set_level(level);
        estimates.push(
            est.estimate_source(&mut DiskSource::open_path(&path).expect("open trace"))
                .expect("disk source estimate"),
        );
    }
    set_level(ObsLevel::Off);
    std::fs::remove_file(&path).expect("remove scratch trace");
    assert_estimates_identical("summary vs off", &estimates[0], &estimates[1]);
    assert_estimates_identical("full vs off", &estimates[0], &estimates[2]);
}

#[test]
fn stream_engine_replays_identically_from_disk() {
    let run = test_run();
    let cluster = cluster();
    let est = fit_estimator(ExecPolicy::Serial);
    let config = StreamConfig {
        window_s: 40,
        drift: DriftConfig {
            window_s: 15,
            cooldown_s: 5,
            ..DriftConfig::fast()
        },
        min_refit_samples: 12,
        ..StreamConfig::fast()
    }
    .with_exec(ExecPolicy::Parallel { threads: 4 });
    let n = cluster.machines().len() as f64;
    let engine = || {
        StreamEngine::new(
            est.clone(),
            cluster.machines().len(),
            cluster.max_power() / n,
            cluster.idle_power() / n,
            0.05,
            config.clone(),
        )
        .expect("engine")
    };

    let memory = engine().replay(&run).expect("in-memory replay");
    let path = export_scratch(&run, "stream");
    let disk = engine()
        .replay_source(&mut DiskSource::open_path(&path).expect("open trace"))
        .expect("disk replay");
    std::fs::remove_file(&path).expect("remove scratch trace");

    assert_eq!(memory.len(), disk.len(), "replay length");
    for (a, b) in memory.iter().zip(&disk) {
        assert_eq!(
            a.cluster_power_w.to_bits(),
            b.cluster_power_w.to_bits(),
            "disk replay diverged from memory at second {} ({} vs {})",
            a.t,
            a.cluster_power_w,
            b.cluster_power_w
        );
        assert_eq!(a.worst_tier, b.worst_tier, "worst tier at second {}", a.t);
        assert_eq!(
            a.active_machines, b.active_machines,
            "active machines at second {}",
            a.t
        );
    }
}
